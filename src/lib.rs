//! # lacnet — a country-level Internet measurement analysis toolkit
//!
//! This umbrella crate re-exports the full workspace that reproduces
//! *"Ten years of the Venezuelan crisis — An Internet perspective"*
//! (ACM SIGCOMM 2024):
//!
//! * [`types`] — dates, prefixes, countries, geo, stats, RNG;
//! * [`bgp`] — AS relationships, valley-free propagation, pfx2as;
//! * [`registry`] — LACNIC delegation files and exhaustion phases;
//! * [`peeringdb`] — facilities, IXPs, memberships;
//! * [`telegeo`] — the submarine cable map;
//! * [`atlas`] — probes, CHAOS TXT decoding, anycast, GPDNS RTT;
//! * [`mlab`] — NDT records and streaming month-country medians;
//! * [`offnets`] — hypergiant off-net detection, as2org+, populations;
//! * [`webmeas`] — third-party DNS/CA/CDN/HTTPS adoption;
//! * [`crisis`] — the generative world model standing in for the gated
//!   real datasets;
//! * [`core`] — one experiment per paper figure/table, plus rendering.
//!
//! ## Quickstart
//!
//! ```no_run
//! use lacnet::core::{experiments, render, DataSource};
//! use lacnet::crisis::{World, WorldConfig};
//!
//! let world = World::generate(WorldConfig::default());
//! let source = DataSource::in_memory(&world);
//! for result in experiments::all(&source) {
//!     print!("{}", render::render_result(&result));
//! }
//! ```

#![forbid(unsafe_code)]

pub use lacnet_atlas as atlas;
pub use lacnet_bgp as bgp;
pub use lacnet_core as core;
pub use lacnet_crisis as crisis;
pub use lacnet_mlab as mlab;
pub use lacnet_offnets as offnets;
pub use lacnet_peeringdb as peeringdb;
pub use lacnet_registry as registry;
pub use lacnet_telegeo as telegeo;
pub use lacnet_types as types;
pub use lacnet_webmeas as webmeas;
