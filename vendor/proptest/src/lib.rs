//! A small, dependency-free property-testing harness exposing the subset
//! of the `proptest` crate API this workspace uses.
//!
//! The workspace builds fully offline, so the real `proptest` (with its
//! tree of transitive dependencies) is replaced by this vendored shim:
//! same macro grammar (`proptest! { fn f(x in strategy) { .. } }`), same
//! strategy combinators (`any`, ranges, `collection::vec`,
//! `collection::btree_map`, tuples, `prop_map`), same assertion macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message (all strategies used here produce `Debug`
//!   values via plain binding patterns).
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   own name, so runs are reproducible without a persistence file.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-case configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 — deterministic, seedable, and plenty for test-case
    /// generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary label (the property's name) via FNV-1a,
        /// so every property gets a distinct, stable stream.
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[lo, hi)` (as i128 to cover every primitive
        /// integer range used in strategies).
        pub fn below_i128(&mut self, lo: i128, hi: i128) -> i128 {
            let span = (hi - lo) as u128;
            if span == 0 {
                return lo;
            }
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            lo + (wide % span) as i128
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }
}

pub use strategy::Strategy;

/// Marker strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The "any value of `T`" strategy.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! impl_any_uint {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.below_i128(self.start as i128, self.end as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    rng.below_i128(lo as i128, hi as i128 + 1) as $ty
                }
            }
        )*
    };
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Include the upper bound by rounding the top of the unit interval.
        let t = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + t * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// The result of [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Values from `inner` wrapped in `Some`, mixed with `None`s
    /// (roughly a quarter of generations), mirroring
    /// `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// A collection size range, convertible from the usual range forms.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.below_i128(self.lo as i128, self.hi_exclusive.max(self.lo + 1) as i128) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            SizeRange {
                lo: r.start as usize,
                hi_exclusive: r.end as usize,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s. Duplicate keys collapse, so generated
    /// maps may be smaller than the drawn size — same as real proptest.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// The result of [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

/// Always-the-same-value strategy (rarely needed; parity with proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: Strategy> Strategy for &T {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (*self).generate(rng)
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just};
}

/// Assert a condition inside a property; panics with the condition text.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests. Accepts the standard grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, ref_vec in collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::test_runner::Config as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    let ($($pat,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u8..=20), &mut rng);
            assert!((10..=20).contains(&v));
            let v = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&v));
            let f = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn collections_and_maps_generate() {
        let mut rng = crate::test_runner::TestRng::deterministic("coll");
        let v = Strategy::generate(&collection::vec(any::<u32>(), 3..7), &mut rng);
        assert!((3..7).contains(&v.len()));
        let m = Strategy::generate(
            &collection::btree_map(0i32..100, any::<u64>(), 0..20),
            &mut rng,
        );
        assert!(m.len() < 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn the_macro_itself_works(x in 1u32..50, mut v in collection::vec(0i32..10, 0..5)) {
            v.push(x as i32);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v[v.len() - 1], x as i32, "pushed value {}", x);
        }
    }
}
