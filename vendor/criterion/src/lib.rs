//! A small, dependency-free benchmark harness exposing the subset of the
//! `criterion` crate API this workspace uses.
//!
//! The workspace builds fully offline, so the real `criterion` is replaced
//! by this vendored shim: same macro grammar (`criterion_group!` /
//! `criterion_main!`), same `Criterion` / group / `Bencher` call surface,
//! with wall-clock timing via `std::time::Instant` and plain-text output.
//!
//! CLI flags (passed after `--` with `cargo bench`):
//!
//! * `--quick` — run every target with `sample_size = 10`
//! * `--sample-size N` — override the sample count everywhere
//! * any bare argument — substring filter on benchmark ids
//! * `--bench` / `--test` (emitted by cargo) — ignored
//!
//! When the `BENCH_JSON` environment variable names a file, every
//! benchmark's median is additionally recorded there as a flat JSON
//! object `{"bench id": median_ns, …}` — machine-readable output for
//! regression tracking. Re-runs merge into the existing file, so several
//! bench binaries (or filtered runs) accumulate into one report.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Medians recorded this process, flushed by [`flush_json_report`].
static JSON_REPORT: Mutex<BTreeMap<String, u128>> = Mutex::new(BTreeMap::new());

/// How a group scales its reported per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterised benchmark id, printed as `label/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Build an id from a label and a displayable parameter.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{label}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything accepted as a benchmark id.
pub trait IntoBenchmarkId {
    /// The id's display string.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.label
    }
}

/// Runtime options parsed from the command line.
#[derive(Debug, Clone, Default)]
struct CliOptions {
    quick: bool,
    sample_size: Option<usize>,
    filter: Option<String>,
}

fn cli_options() -> CliOptions {
    let mut opts = CliOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--sample-size" => {
                opts.sample_size = args.next().and_then(|v| v.parse().ok());
            }
            "--bench" | "--test" | "--noplot" => {}
            other if other.starts_with("--") => {
                // Unknown criterion flag — ignored for compatibility.
            }
            other => opts.filter = Some(other.to_owned()),
        }
    }
    opts
}

/// The benchmark manager. Mirrors `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    options: CliOptions,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            options: cli_options(),
        }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn effective_samples(&self, group_override: Option<usize>) -> usize {
        if let Some(n) = self.options.sample_size {
            return n.max(1);
        }
        if self.options.quick {
            return 10;
        }
        group_override.unwrap_or(self.sample_size).max(1)
    }

    fn matches_filter(&self, id: &str) -> bool {
        match &self.options.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id_string();
        if self.matches_filter(&id) {
            run_benchmark(&id, self.effective_samples(None), None, &mut f);
        }
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// A group of related benchmarks. Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the throughput used to scale reported times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id_string());
        if self.criterion.matches_filter(&id) {
            run_benchmark(
                &id,
                self.criterion.effective_samples(self.sample_size),
                self.throughput,
                &mut f,
            );
        }
        self
    }

    /// Finish the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    requested: usize,
}

impl Bencher {
    /// Measure `routine` once per sample, `black_box`-ing its output.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up iteration outside the measurements.
        std::hint::black_box(routine());
        for _ in 0..self.requested {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(id: &str, samples: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
        requested: samples,
    };
    f(&mut bencher);
    let mut times = bencher.samples;
    if times.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let max = times[times.len() - 1];
    if let Ok(mut report) = JSON_REPORT.lock() {
        report.insert(id.to_owned(), median.as_nanos());
    }
    let mut line = format!(
        "{id:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max)
    );
    if let Some(t) = throughput {
        let per_sec = |unit: u64| unit as f64 / median.as_secs_f64();
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    " thrpt: {:.1} MiB/s",
                    per_sec(n) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!(" thrpt: {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Parse a flat `{"id": nanos, …}` object written by a previous run.
/// Anything unparsable is ignored — the merge then starts fresh.
fn parse_flat_json(text: &str) -> BTreeMap<String, u128> {
    let mut map = BTreeMap::new();
    let Some(body) = text
        .trim()
        .strip_prefix('{')
        .and_then(|t| t.strip_suffix('}'))
    else {
        return map;
    };
    for entry in body.split(',') {
        let Some((key, value)) = entry.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if let Ok(nanos) = value.trim().parse::<u128>() {
            map.insert(key.to_owned(), nanos);
        }
    }
    map
}

/// Write the medians recorded so far to the file named by `BENCH_JSON`
/// (no-op when the variable is unset), merging with any report already
/// there. Called by `criterion_main!` after every group has run.
pub fn flush_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let recorded = match JSON_REPORT.lock() {
        Ok(report) => report.clone(),
        Err(_) => return,
    };
    let mut merged = parse_flat_json(&std::fs::read_to_string(&path).unwrap_or_default());
    merged.extend(recorded);
    let mut out = String::from("{\n");
    for (i, (id, nanos)) in merged.iter().enumerate() {
        let sep = if i + 1 < merged.len() { "," } else { "" };
        out.push_str(&format!("  \"{id}\": {nanos}{sep}\n"));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write BENCH_JSON report {path}: {e}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Define a benchmark group. Supports both the plain and struct-style
/// forms of the real macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("smoke/add", |b| b.iter(|| 2u64 + 2));
        let mut group = c.benchmark_group("smoke_group");
        group.sample_size(5);
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("sum", 4), |b| {
            b.iter(|| (0u64..4).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_everything() {
        let mut c = Criterion {
            sample_size: 3,
            options: CliOptions::default(),
        };
        target(&mut c);
    }

    #[test]
    fn json_report_records_medians_and_merges() {
        let mut c = Criterion {
            sample_size: 3,
            options: CliOptions::default(),
        };
        c.bench_function("json/probe", |b| b.iter(|| 1u64 + 1));
        let report = JSON_REPORT.lock().unwrap();
        assert!(report.contains_key("json/probe"));
        drop(report);
        let parsed = parse_flat_json("{\n  \"a/b\": 120,\n  \"c\": 7\n}\n");
        assert_eq!(parsed.get("a/b"), Some(&120));
        assert_eq!(parsed.get("c"), Some(&7));
        assert!(parse_flat_json("not json").is_empty());
        assert!(parse_flat_json("").is_empty());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
