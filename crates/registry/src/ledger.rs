//! An allocation ledger: who holds which block since when.
//!
//! The delegation-file format records *country-level* delegations; the
//! holder (which operator received the block) lives in registry-internal
//! records. The generator needs both views — delegation files for the
//! pipeline to parse, holder attribution to decide which origin announces
//! each block — so the ledger keeps them together.

use crate::delegation::{DelegationFile, DelegationRecord, DelegationStatus, NumberResource};
use lacnet_types::{Asn, CountryCode, Date, Error, Ipv4Net, Result};
use std::collections::BTreeSet;

/// One allocation event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Allocation {
    /// Country of registration.
    pub country: CountryCode,
    /// Operator that received the block.
    pub holder: Asn,
    /// The delegated block.
    pub prefix: Ipv4Net,
    /// Delegation date.
    pub date: Date,
}

/// The registry's full allocation history.
#[derive(Debug, Clone, Default)]
pub struct AllocationLedger {
    entries: Vec<Allocation>,
}

impl AllocationLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an allocation. Rejects blocks overlapping an existing entry
    /// (the registry never double-delegates space).
    pub fn allocate(&mut self, alloc: Allocation) -> Result<()> {
        if self.entries.iter().any(|e| e.prefix.overlaps(alloc.prefix)) {
            return Err(Error::invalid("allocation overlaps existing delegation"));
        }
        self.entries.push(alloc);
        Ok(())
    }

    /// All allocation events, in insertion order.
    pub fn entries(&self) -> &[Allocation] {
        &self.entries
    }

    /// Blocks held by `holder` as of `cutoff`.
    pub fn holdings(&self, holder: Asn, cutoff: Date) -> Vec<Ipv4Net> {
        self.entries
            .iter()
            .filter(|e| e.holder == holder && e.date <= cutoff)
            .map(|e| e.prefix)
            .collect()
    }

    /// Total addresses held by `holder` as of `cutoff`.
    pub fn space_of_holder(&self, holder: Asn, cutoff: Date) -> u64 {
        self.holdings(holder, cutoff).iter().map(|p| p.size()).sum()
    }

    /// Total addresses registered to `country` as of `cutoff`.
    pub fn space_of_country(&self, country: CountryCode, cutoff: Date) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.country == country && e.date <= cutoff)
            .map(|e| e.prefix.size())
            .sum()
    }

    /// Every holder that appears in the ledger.
    pub fn holders(&self) -> BTreeSet<Asn> {
        self.entries.iter().map(|e| e.holder).collect()
    }

    /// Date of `holder`'s most recent allocation at or before `cutoff`.
    pub fn last_allocation_date(&self, holder: Asn, cutoff: Date) -> Option<Date> {
        self.entries
            .iter()
            .filter(|e| e.holder == holder && e.date <= cutoff)
            .map(|e| e.date)
            .max()
    }

    /// Render the delegation file as the registry would publish it on
    /// `cutoff` (records dated after the cutoff omitted).
    pub fn to_delegation_file(&self, cutoff: Date) -> DelegationFile {
        let mut f = DelegationFile::new("lacnic");
        let mut records: Vec<&Allocation> =
            self.entries.iter().filter(|e| e.date <= cutoff).collect();
        records.sort_by_key(|e| (e.country, e.prefix));
        for e in records {
            f.records.push(DelegationRecord {
                country: e.country,
                resource: NumberResource::Ipv4 {
                    start: e.prefix.network(),
                    count: e.prefix.size(),
                },
                date: e.date,
                status: DelegationStatus::Allocated,
                holder: Some(e.holder),
            });
        }
        f
    }

    /// Rebuild a ledger from a delegation file whose records carry holder
    /// attribution in the opaque-id column (as [`to_delegation_file`]
    /// emits). IPv4 records without a holder are skipped — they cannot be
    /// attributed. Query results are insensitive to entry order, so a
    /// ledger round-tripped through its full-history file answers every
    /// query identically to the original.
    ///
    /// [`to_delegation_file`]: AllocationLedger::to_delegation_file
    pub fn from_delegation_file(file: &DelegationFile) -> Result<Self> {
        let mut ledger = AllocationLedger::new();
        for r in &file.records {
            let (NumberResource::Ipv4 { .. }, Some(holder)) = (r.resource, r.holder) else {
                continue;
            };
            let prefixes = r.ipv4_prefixes();
            if prefixes.len() != 1 {
                return Err(Error::invalid(
                    "ledger delegation records must be single CIDR blocks",
                ));
            }
            ledger.allocate(Allocation {
                country: r.country,
                holder,
                prefix: prefixes[0],
                date: r.date,
            })?;
        }
        Ok(ledger)
    }
}

/// Carves successive CIDR blocks out of a base pool — how the generator
/// hands registry space to operators without overlaps.
#[derive(Debug, Clone)]
pub struct PoolCarver {
    base: Ipv4Net,
    /// Offset (in addresses) of the next unassigned address.
    next: u64,
}

impl PoolCarver {
    /// Create a carver over `base`.
    pub fn new(base: Ipv4Net) -> Self {
        PoolCarver { base, next: 0 }
    }

    /// Addresses remaining in the pool.
    pub fn remaining(&self) -> u64 {
        self.base.size() - self.next
    }

    /// Carve the next aligned block of prefix length `len`. The cursor is
    /// advanced past any alignment padding.
    pub fn carve(&mut self, len: u8) -> Result<Ipv4Net> {
        if len < self.base.len() || len > 32 {
            return Err(Error::invalid("carve length must be within the pool"));
        }
        let block = 1u64 << (32 - len);
        // Align the cursor up to the block size.
        let aligned = self.next.div_ceil(block) * block;
        if aligned + block > self.base.size() {
            return Err(Error::invalid("pool exhausted"));
        }
        self.next = aligned + block;
        let addr = self.base.network_u32() as u64 + aligned;
        Ok(Ipv4Net::truncating(
            std::net::Ipv4Addr::from(addr as u32),
            len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;
    use lacnet_types::net::net;

    fn alloc(holder: u32, prefix: &str, y: i32, m: u8) -> Allocation {
        Allocation {
            country: country::VE,
            holder: Asn(holder),
            prefix: net(prefix),
            date: Date::ymd(y, m, 1),
        }
    }

    #[test]
    fn allocate_and_query() {
        let mut ledger = AllocationLedger::new();
        ledger
            .allocate(alloc(8048, "186.24.0.0/16", 2008, 3))
            .unwrap();
        ledger
            .allocate(alloc(6306, "200.35.64.0/18", 2005, 1))
            .unwrap();
        ledger
            .allocate(alloc(8048, "190.0.0.0/17", 2012, 6))
            .unwrap();

        assert_eq!(
            ledger.space_of_holder(Asn(8048), Date::ymd(2024, 1, 1)),
            65536 + 32768
        );
        assert_eq!(
            ledger.space_of_holder(Asn(8048), Date::ymd(2010, 1, 1)),
            65536
        );
        assert_eq!(
            ledger.space_of_country(country::VE, Date::ymd(2024, 1, 1)),
            65536 + 32768 + 16384
        );
        assert_eq!(
            ledger.holdings(Asn(6306), Date::ymd(2024, 1, 1)),
            vec![net("200.35.64.0/18")]
        );
        assert_eq!(ledger.holders(), BTreeSet::from([Asn(6306), Asn(8048)]));
        assert_eq!(
            ledger.last_allocation_date(Asn(8048), Date::ymd(2024, 1, 1)),
            Some(Date::ymd(2012, 6, 1))
        );
        assert_eq!(
            ledger.last_allocation_date(Asn(701), Date::ymd(2024, 1, 1)),
            None
        );
    }

    #[test]
    fn rejects_overlap() {
        let mut ledger = AllocationLedger::new();
        ledger
            .allocate(alloc(8048, "186.24.0.0/16", 2008, 3))
            .unwrap();
        assert!(ledger
            .allocate(alloc(6306, "186.24.128.0/17", 2009, 1))
            .is_err());
        assert!(ledger
            .allocate(alloc(6306, "186.0.0.0/8", 2009, 1))
            .is_err());
        assert_eq!(ledger.entries().len(), 1);
    }

    #[test]
    fn delegation_file_snapshot() {
        let mut ledger = AllocationLedger::new();
        ledger
            .allocate(alloc(8048, "186.24.0.0/16", 2008, 3))
            .unwrap();
        ledger
            .allocate(alloc(8048, "190.0.0.0/17", 2012, 6))
            .unwrap();
        let f = ledger.to_delegation_file(Date::ymd(2010, 1, 1));
        assert_eq!(f.records.len(), 1, "2012 record excluded at 2010 cutoff");
        assert_eq!(f.ipv4_space(country::VE, Date::ymd(2010, 1, 1)), 65536);
        // Full snapshot round-trips through text.
        let f = ledger.to_delegation_file(Date::ymd(2024, 1, 1));
        let text = f.to_text(Date::ymd(2024, 1, 1));
        let back = DelegationFile::parse(&text).unwrap();
        assert_eq!(
            back.ipv4_space(country::VE, Date::ymd(2024, 1, 1)),
            65536 + 32768
        );
    }

    #[test]
    fn ledger_rebuilds_from_its_own_delegation_file() {
        let mut ledger = AllocationLedger::new();
        ledger
            .allocate(alloc(8048, "186.24.0.0/16", 2008, 3))
            .unwrap();
        ledger
            .allocate(alloc(6306, "200.35.64.0/18", 2005, 1))
            .unwrap();
        ledger
            .allocate(alloc(8048, "190.0.0.0/17", 2012, 6))
            .unwrap();
        let cutoff = Date::ymd(2024, 1, 1);
        let text = ledger.to_delegation_file(cutoff).to_text(cutoff);
        let back =
            AllocationLedger::from_delegation_file(&DelegationFile::parse(&text).unwrap()).unwrap();
        let mut want = ledger.entries().to_vec();
        let mut got = back.entries().to_vec();
        want.sort_by_key(|e| e.prefix);
        got.sort_by_key(|e| e.prefix);
        assert_eq!(got, want, "entries survive modulo publication order");
        assert_eq!(
            back.space_of_holder(Asn(8048), cutoff),
            ledger.space_of_holder(Asn(8048), cutoff)
        );
        assert_eq!(back.holders(), ledger.holders());
    }

    #[test]
    fn carver_hands_out_disjoint_aligned_blocks() {
        let mut carver = PoolCarver::new(net("190.0.0.0/12"));
        let a = carver.carve(16).unwrap();
        let b = carver.carve(18).unwrap();
        let c = carver.carve(16).unwrap();
        assert_eq!(a, net("190.0.0.0/16"));
        assert_eq!(b, net("190.1.0.0/18"));
        // /16 must realign past the /18.
        assert_eq!(c, net("190.2.0.0/16"));
        assert!(!a.overlaps(b) && !b.overlaps(c) && !a.overlaps(c));
    }

    #[test]
    fn carver_exhausts() {
        let mut carver = PoolCarver::new(net("10.0.0.0/24"));
        assert_eq!(carver.remaining(), 256);
        carver.carve(25).unwrap();
        carver.carve(25).unwrap();
        assert!(carver.carve(25).is_err());
        assert_eq!(carver.remaining(), 0);
        assert!(carver.carve(8).is_err(), "larger than pool");
        assert!(carver.carve(33).is_err());
    }

    #[test]
    fn ledger_with_carver_never_overlaps() {
        let mut carver = PoolCarver::new(net("186.0.0.0/8"));
        let mut ledger = AllocationLedger::new();
        for i in 0..50u32 {
            let p = carver.carve(18).unwrap();
            ledger
                .allocate(Allocation {
                    country: country::VE,
                    holder: Asn(8048 + i),
                    prefix: p,
                    date: Date::ymd(2010, 1, 1),
                })
                .unwrap();
        }
        assert_eq!(ledger.entries().len(), 50);
    }
}
