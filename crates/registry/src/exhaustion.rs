//! LACNIC's IPv4 exhaustion-phase policy machine.
//!
//! §4 notes that the 2014–2017 stall in CANTV's and Telefónica's address
//! space "aligns temporally with the implementation of phases 1 and 2 of
//! LACNIC IPv4 exhaustion policies". The published timeline:
//!
//! * **Phase 0** — ordinary allocations until the free pool hit a /9
//!   equivalent (2014-06-10);
//! * **Phase 1** — gradual exhaustion: allocations capped between a /24
//!   and a /22, at most one every 6 months (2014-06-10 → 2017-02-15);
//! * **Phase 2** — reserved /11 for gradual exhaustion: caps between /24
//!   and /22, one every 6 months (2017-02-15 → 2020-08-19);
//! * **Phase 3** — reserved /11 for *new members only*: a single /24–/22
//!   block per member (2020-08-19 onward).
//!
//! The generator consults [`ExhaustionPhase::max_allocation`] when growing
//! each country's address space, which is what produces the visible
//! flattening of Fig. 2 after 2014 without hand-drawing it.

use lacnet_types::Date;

/// The registry's allocation-policy phase at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustionPhase {
    /// Pre-exhaustion: needs-based allocations.
    Phase0,
    /// Gradual exhaustion of the remaining free pool.
    Phase1,
    /// Allocations from the first reserved /11.
    Phase2,
    /// New-entrant-only allocations from the final reserve.
    Phase3,
}

/// Phase-1 start: the free pool reached its final /9 equivalent.
pub fn phase1_start() -> Date {
    Date::ymd(2014, 6, 10)
}

/// Phase-2 start.
pub fn phase2_start() -> Date {
    Date::ymd(2017, 2, 15)
}

/// Phase-3 start: final exhaustion announced by LACNIC.
pub fn phase3_start() -> Date {
    Date::ymd(2020, 8, 19)
}

impl ExhaustionPhase {
    /// The phase in force on `date`.
    pub fn at(date: Date) -> Self {
        if date < phase1_start() {
            ExhaustionPhase::Phase0
        } else if date < phase2_start() {
            ExhaustionPhase::Phase1
        } else if date < phase3_start() {
            ExhaustionPhase::Phase2
        } else {
            ExhaustionPhase::Phase3
        }
    }

    /// Maximum addresses one allocation may convey under this phase.
    /// `None` means needs-based (no fixed cap).
    pub fn max_allocation(self) -> Option<u64> {
        match self {
            ExhaustionPhase::Phase0 => None,
            // Phases 1–3 cap at a /22.
            _ => Some(1 << 10),
        }
    }

    /// Minimum months a member must wait between allocations.
    pub fn min_interval_months(self) -> u32 {
        match self {
            ExhaustionPhase::Phase0 => 0,
            ExhaustionPhase::Phase1 | ExhaustionPhase::Phase2 => 6,
            // Phase 3: one block ever; modelled as an effectively
            // unbounded interval.
            ExhaustionPhase::Phase3 => u32::MAX,
        }
    }

    /// Whether established members (as opposed to new entrants) may still
    /// receive space.
    pub fn open_to_existing_members(self) -> bool {
        !matches!(self, ExhaustionPhase::Phase3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_boundaries() {
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2010, 1, 1)),
            ExhaustionPhase::Phase0
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2014, 6, 9)),
            ExhaustionPhase::Phase0
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2014, 6, 10)),
            ExhaustionPhase::Phase1
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2017, 2, 14)),
            ExhaustionPhase::Phase1
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2017, 2, 15)),
            ExhaustionPhase::Phase2
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2020, 8, 18)),
            ExhaustionPhase::Phase2
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2020, 8, 19)),
            ExhaustionPhase::Phase3
        );
        assert_eq!(
            ExhaustionPhase::at(Date::ymd(2024, 1, 1)),
            ExhaustionPhase::Phase3
        );
    }

    #[test]
    fn caps() {
        assert_eq!(ExhaustionPhase::Phase0.max_allocation(), None);
        assert_eq!(ExhaustionPhase::Phase1.max_allocation(), Some(1024));
        assert_eq!(ExhaustionPhase::Phase3.max_allocation(), Some(1024));
    }

    #[test]
    fn intervals_and_membership() {
        assert_eq!(ExhaustionPhase::Phase0.min_interval_months(), 0);
        assert_eq!(ExhaustionPhase::Phase1.min_interval_months(), 6);
        assert!(ExhaustionPhase::Phase2.open_to_existing_members());
        assert!(!ExhaustionPhase::Phase3.open_to_existing_members());
    }
}
