//! # lacnet-registry
//!
//! The Internet-number-registry substrate: LACNIC delegation files and the
//! IPv4 exhaustion-phase policy machine.
//!
//! §4 of the study joins monthly LACNIC delegation files against
//! prefix-to-AS snapshots to split Venezuela's address space between
//! *allocated* and *announced*, and notes that the 2014–2017 growth stall
//! of both CANTV and Telefónica "aligns temporally with the implementation
//! of phases 1 and 2 of LACNIC IPv4 exhaustion policies". This crate
//! implements the NRO extended delegation-file format ([`delegation`]) and
//! the published phase timeline ([`exhaustion`]) so the generator can make
//! allocation decisions the same way the registry did.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delegation;
pub mod exhaustion;
pub mod ledger;

pub use delegation::{DelegationFile, DelegationRecord, DelegationStatus, NumberResource};
pub use exhaustion::ExhaustionPhase;
pub use ledger::AllocationLedger;
