//! The NRO extended delegation-file format, as published at
//! `ftp.lacnic.net/pub/stats/lacnic/`.
//!
//! Pipe-separated records:
//!
//! ```text
//! 2|lacnic|20240101|1234|19890101|20240101|-0300          ← version line
//! lacnic|*|ipv4|*|842|summary                             ← summary lines
//! lacnic|VE|ipv4|186.24.0.0|65536|20080305|allocated
//! lacnic|VE|asn|8048|1|19960101|allocated
//! ```
//!
//! Data records are `registry|cc|type|start|value|date|status[|opaque-id]`
//! where, for `ipv4`, `value` is the *number of addresses* (not a prefix
//! length — historic delegations are not always CIDR-aligned, though the
//! generator only emits aligned blocks).

use lacnet_types::{Asn, CountryCode, Date, Error, Ipv4Net, Result};
use std::net::Ipv4Addr;

/// The resource a delegation record covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumberResource {
    /// An IPv4 block: starting address and address count.
    Ipv4 {
        /// First address of the block.
        start: Ipv4Addr,
        /// Number of addresses delegated.
        count: u64,
    },
    /// An IPv6 block: starting prefix text is kept opaque; only the prefix
    /// length matters for the study's aggregate counts.
    Ipv6 {
        /// Prefix length of the delegated block.
        prefix_len: u8,
    },
    /// A block of ASNs.
    Asn {
        /// First ASN.
        start: Asn,
        /// Number of consecutive ASNs.
        count: u32,
    },
}

/// Delegation status column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelegationStatus {
    /// Allocated to an LIR/ISP.
    Allocated,
    /// Assigned to an end site.
    Assigned,
    /// Held by the registry, available.
    Available,
    /// Reserved by the registry.
    Reserved,
}

impl DelegationStatus {
    fn as_str(self) -> &'static str {
        match self {
            DelegationStatus::Allocated => "allocated",
            DelegationStatus::Assigned => "assigned",
            DelegationStatus::Available => "available",
            DelegationStatus::Reserved => "reserved",
        }
    }

    fn parse(s: &str) -> Result<Self> {
        match s {
            "allocated" => Ok(DelegationStatus::Allocated),
            "assigned" => Ok(DelegationStatus::Assigned),
            "available" => Ok(DelegationStatus::Available),
            "reserved" => Ok(DelegationStatus::Reserved),
            _ => Err(Error::parse("delegation status", s)),
        }
    }

    /// Whether the block is in use by an operator (allocated or assigned).
    pub fn is_delegated(self) -> bool {
        matches!(
            self,
            DelegationStatus::Allocated | DelegationStatus::Assigned
        )
    }
}

/// One data record of a delegation file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelegationRecord {
    /// Country the resource is registered in.
    pub country: CountryCode,
    /// The delegated resource.
    pub resource: NumberResource,
    /// Delegation date.
    pub date: Date,
    /// Status column.
    pub status: DelegationStatus,
    /// The optional trailing opaque-id column. Real NRO files carry an
    /// org hash there; the generator's registry-internal records carry
    /// the holding operator (`AS<n>`), which is what lets an archive
    /// consumer rebuild the full allocation ledger from the file alone.
    /// Opaque ids that do not name an AS parse as `None`.
    pub holder: Option<Asn>,
}

impl DelegationRecord {
    /// IPv4 address count (0 for non-IPv4 records).
    pub fn ipv4_count(&self) -> u64 {
        match self.resource {
            NumberResource::Ipv4 { count, .. } => count,
            _ => 0,
        }
    }

    /// The record as CIDR prefixes, splitting non-aligned counts into the
    /// maximal aligned blocks (the standard way consumers join delegation
    /// files against routing data).
    pub fn ipv4_prefixes(&self) -> Vec<Ipv4Net> {
        let NumberResource::Ipv4 { start, count } = self.resource else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut addr = u32::from(start) as u64;
        let mut remaining = count;
        while remaining > 0 {
            // Largest power of two that both divides the current address
            // alignment and fits in the remaining count.
            let align = if addr == 0 {
                1u64 << 32
            } else {
                1u64 << addr.trailing_zeros().min(32)
            };
            let mut block = align.min(remaining.next_power_of_two());
            while block > remaining {
                block /= 2;
            }
            let len = 32 - block.trailing_zeros() as u8;
            out.push(Ipv4Net::truncating(Ipv4Addr::from(addr as u32), len));
            addr += block;
            remaining -= block;
        }
        out
    }
}

fn format_date(d: Date) -> String {
    format!("{:04}{:02}{:02}", d.year(), d.month(), d.day())
}

fn parse_date(s: &str) -> Result<Date> {
    if s.len() != 8 || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(Error::parse("delegation date (YYYYMMDD)", s));
    }
    let y: i32 = s[0..4].parse().map_err(|_| Error::parse("date year", s))?;
    let m: u8 = s[4..6].parse().map_err(|_| Error::parse("date month", s))?;
    let d: u8 = s[6..8].parse().map_err(|_| Error::parse("date day", s))?;
    Date::new(y, m, d).map_err(|_| Error::parse("valid delegation date", s))
}

/// A parsed delegation file: the registry name and its data records
/// (version and summary lines are validated and dropped).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DelegationFile {
    /// Registry identifier (always `lacnic` for generated files).
    pub registry: String,
    /// All data records in file order.
    pub records: Vec<DelegationRecord>,
}

impl DelegationFile {
    /// Create an empty file for `registry`.
    pub fn new(registry: &str) -> Self {
        DelegationFile {
            registry: registry.to_owned(),
            records: Vec::new(),
        }
    }

    /// Parse the full text of a delegation file.
    pub fn parse(text: &str) -> Result<Self> {
        let mut registry = String::new();
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let cols: Vec<&str> = line.split('|').collect();
            // Version line: `2|lacnic|date|count|start|end|offset`.
            if cols.len() >= 2 && cols[0].chars().all(|c| c.is_ascii_digit()) && idx < 3 {
                registry = cols[1].to_owned();
                continue;
            }
            // Summary line: `lacnic|*|ipv4|*|count|summary`.
            if cols.last() == Some(&"summary") {
                continue;
            }
            if cols.len() < 7 {
                return Err(Error::parse(
                    "delegation record (7 pipe-separated fields)",
                    &format!("line {}: {line}", idx + 1),
                ));
            }
            if registry.is_empty() {
                registry = cols[0].to_owned();
            }
            let country = CountryCode::new(cols[1])
                .map_err(|_| Error::parse("delegation country code", line))?;
            let date = parse_date(cols[5])?;
            let status = DelegationStatus::parse(cols[6])?;
            let resource = match cols[2] {
                "ipv4" => {
                    let start: Ipv4Addr = cols[3]
                        .parse()
                        .map_err(|_| Error::parse("ipv4 start address", line))?;
                    let count: u64 = cols[4]
                        .parse()
                        .map_err(|_| Error::parse("ipv4 address count", line))?;
                    if count == 0 || count > 1 << 32 {
                        return Err(Error::parse("ipv4 count in 1..=2^32", line));
                    }
                    NumberResource::Ipv4 { start, count }
                }
                "ipv6" => {
                    let prefix_len: u8 = cols[4]
                        .parse()
                        .map_err(|_| Error::parse("ipv6 prefix length", line))?;
                    if prefix_len > 128 {
                        return Err(Error::parse("ipv6 prefix length <= 128", line));
                    }
                    NumberResource::Ipv6 { prefix_len }
                }
                "asn" => {
                    let start: u32 = cols[3]
                        .parse()
                        .map_err(|_| Error::parse("asn start", line))?;
                    let count: u32 = cols[4]
                        .parse()
                        .map_err(|_| Error::parse("asn count", line))?;
                    NumberResource::Asn {
                        start: Asn(start),
                        count,
                    }
                }
                other => return Err(Error::parse("resource type ipv4|ipv6|asn", other)),
            };
            let holder = cols
                .get(7)
                .and_then(|id| id.strip_prefix("AS"))
                .and_then(|raw| raw.parse().ok())
                .map(Asn);
            records.push(DelegationRecord {
                country,
                resource,
                date,
                status,
                holder,
            });
        }
        Ok(DelegationFile { registry, records })
    }

    /// Serialise to the NRO extended format, including version and summary
    /// lines, with `file_date` as the version-line date.
    pub fn to_text(&self, file_date: Date) -> String {
        let mut out = String::new();
        let (mut n4, mut n6, mut nasn) = (0usize, 0usize, 0usize);
        for r in &self.records {
            match r.resource {
                NumberResource::Ipv4 { .. } => n4 += 1,
                NumberResource::Ipv6 { .. } => n6 += 1,
                NumberResource::Asn { .. } => nasn += 1,
            }
        }
        out.push_str(&format!(
            "2|{}|{}|{}|19890101|{}|-0300\n",
            self.registry,
            format_date(file_date),
            self.records.len(),
            format_date(file_date),
        ));
        out.push_str(&format!("{}|*|ipv4|*|{}|summary\n", self.registry, n4));
        out.push_str(&format!("{}|*|ipv6|*|{}|summary\n", self.registry, n6));
        out.push_str(&format!("{}|*|asn|*|{}|summary\n", self.registry, nasn));
        for r in &self.records {
            let (kind, start, value) = match r.resource {
                NumberResource::Ipv4 { start, count } => {
                    ("ipv4", start.to_string(), count.to_string())
                }
                NumberResource::Ipv6 { prefix_len } => {
                    ("ipv6", "2800::".to_owned(), prefix_len.to_string())
                }
                NumberResource::Asn { start, count } => {
                    ("asn", start.raw().to_string(), count.to_string())
                }
            };
            let opaque = match r.holder {
                Some(h) => format!("|AS{}", h.raw()),
                None => String::new(),
            };
            out.push_str(&format!(
                "{}|{}|{}|{}|{}|{}|{}{}\n",
                self.registry,
                r.country,
                kind,
                start,
                value,
                format_date(r.date),
                r.status.as_str(),
                opaque,
            ));
        }
        out
    }

    /// Total delegated (allocated + assigned) IPv4 addresses registered to
    /// `country` on or before `cutoff`.
    pub fn ipv4_space(&self, country: CountryCode, cutoff: Date) -> u64 {
        self.records
            .iter()
            .filter(|r| r.country == country && r.status.is_delegated() && r.date <= cutoff)
            .map(|r| r.ipv4_count())
            .sum()
    }

    /// All delegated IPv4 records for `country`.
    pub fn ipv4_records(&self, country: CountryCode) -> Vec<&DelegationRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.country == country
                    && r.status.is_delegated()
                    && matches!(r.resource, NumberResource::Ipv4 { .. })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;
    use lacnet_types::net::net;

    const SAMPLE: &str = "\
2|lacnic|20240101|4|19890101|20240101|-0300
lacnic|*|ipv4|*|2|summary
lacnic|*|ipv6|*|1|summary
lacnic|*|asn|*|1|summary
lacnic|VE|ipv4|186.24.0.0|65536|20080305|allocated
lacnic|VE|ipv4|200.35.64.0|16384|20050110|assigned
lacnic|BR|ipv6|2800::|32|20101101|allocated
lacnic|VE|asn|8048|1|19960101|allocated
";

    #[test]
    fn parse_sample() {
        let f = DelegationFile::parse(SAMPLE).unwrap();
        assert_eq!(f.registry, "lacnic");
        assert_eq!(f.records.len(), 4);
        let r = &f.records[0];
        assert_eq!(r.country, country::VE);
        assert_eq!(r.ipv4_count(), 65536);
        assert_eq!(r.date, Date::ymd(2008, 3, 5));
        assert_eq!(r.status, DelegationStatus::Allocated);
    }

    #[test]
    fn space_accounting_with_cutoff() {
        let f = DelegationFile::parse(SAMPLE).unwrap();
        assert_eq!(
            f.ipv4_space(country::VE, Date::ymd(2024, 1, 1)),
            65536 + 16384
        );
        assert_eq!(f.ipv4_space(country::VE, Date::ymd(2006, 1, 1)), 16384);
        assert_eq!(f.ipv4_space(country::VE, Date::ymd(2004, 1, 1)), 0);
        assert_eq!(
            f.ipv4_space(country::BR, Date::ymd(2024, 1, 1)),
            0,
            "ipv6 not counted"
        );
        assert_eq!(f.ipv4_records(country::VE).len(), 2);
    }

    #[test]
    fn roundtrip() {
        let f = DelegationFile::parse(SAMPLE).unwrap();
        let text = f.to_text(Date::ymd(2024, 1, 1));
        let back = DelegationFile::parse(&text).unwrap();
        assert_eq!(back.records, f.records);
        assert_eq!(back.registry, "lacnic");
    }

    #[test]
    fn rejects_malformed() {
        assert!(DelegationFile::parse("lacnic|VE|ipv4|186.24.0.0|65536|20080305\n").is_err());
        assert!(DelegationFile::parse("lacnic|VE|ipv4|bogus|65536|20080305|allocated\n").is_err());
        assert!(DelegationFile::parse("lacnic|VE|ipv4|186.24.0.0|0|20080305|allocated\n").is_err());
        assert!(
            DelegationFile::parse("lacnic|VE|ipv4|186.24.0.0|65536|2008030|allocated\n").is_err()
        );
        assert!(
            DelegationFile::parse("lacnic|VE|floppy|186.24.0.0|65536|20080305|allocated\n")
                .is_err()
        );
        assert!(
            DelegationFile::parse("lacnic|VE|ipv4|186.24.0.0|65536|20080305|stolen\n").is_err()
        );
    }

    #[test]
    fn aligned_block_to_prefixes() {
        let r = DelegationRecord {
            country: country::VE,
            resource: NumberResource::Ipv4 {
                start: Ipv4Addr::new(186, 24, 0, 0),
                count: 65536,
            },
            date: Date::ymd(2008, 3, 5),
            status: DelegationStatus::Allocated,
            holder: None,
        };
        assert_eq!(r.ipv4_prefixes(), vec![net("186.24.0.0/16")]);
    }

    #[test]
    fn unaligned_count_splits_into_cidr_blocks() {
        // 3 * /24 starting at a /24 boundary: one /23 + one /24.
        let r = DelegationRecord {
            country: country::VE,
            resource: NumberResource::Ipv4 {
                start: Ipv4Addr::new(200, 1, 0, 0),
                count: 768,
            },
            date: Date::ymd(2010, 1, 1),
            status: DelegationStatus::Allocated,
            holder: None,
        };
        assert_eq!(
            r.ipv4_prefixes(),
            vec![net("200.1.0.0/23"), net("200.1.2.0/24")]
        );
        let total: u64 = r.ipv4_prefixes().iter().map(|p| p.size()).sum();
        assert_eq!(total, 768);
    }

    #[test]
    fn misaligned_start_respects_alignment() {
        // Start at .128 with count 384: /25 at .128, then /24 next? No —
        // alignment at 200.1.0.128 allows at most a /25 (128 addresses),
        // then 200.1.1.0 allows a /24 (256).
        let r = DelegationRecord {
            country: country::VE,
            resource: NumberResource::Ipv4 {
                start: Ipv4Addr::new(200, 1, 0, 128),
                count: 384,
            },
            date: Date::ymd(2010, 1, 1),
            status: DelegationStatus::Allocated,
            holder: None,
        };
        assert_eq!(
            r.ipv4_prefixes(),
            vec![net("200.1.0.128/25"), net("200.1.1.0/24")]
        );
    }

    #[test]
    fn holder_column_roundtrips() {
        let text = "lacnic|VE|ipv4|186.24.0.0|65536|20080305|allocated|AS8048\n";
        let f = DelegationFile::parse(text).unwrap();
        assert_eq!(f.records[0].holder, Some(Asn(8048)));
        let back = DelegationFile::parse(&f.to_text(Date::ymd(2024, 1, 1))).unwrap();
        assert_eq!(back.records, f.records);
        // Non-AS opaque ids are tolerated but unattributed.
        let f = DelegationFile::parse("lacnic|VE|ipv4|186.24.0.0|65536|20080305|allocated|a9f3\n")
            .unwrap();
        assert_eq!(f.records[0].holder, None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// parse(to_text(f)) == f for generated single-record files —
            /// the invariant that lets the archive rebuild the ledger.
            #[test]
            fn record_roundtrip_proptest(
                octet in 0u8..=255,
                len_pow in 8u32..=24,
                year in 1998i32..=2023,
                month in 1u8..=12,
                holder in 1u32..400_000,
                with_holder in any::<bool>(),
            ) {
                let mut f = DelegationFile::new("lacnic");
                f.records.push(DelegationRecord {
                    country: country::VE,
                    resource: NumberResource::Ipv4 {
                        start: Ipv4Addr::new(186, octet, 0, 0),
                        count: 1u64 << (32 - len_pow),
                    },
                    date: Date::ymd(year, month, 1),
                    status: DelegationStatus::Allocated,
                    holder: with_holder.then_some(Asn(holder)),
                });
                let back = DelegationFile::parse(&f.to_text(Date::ymd(2024, 1, 1))).unwrap();
                prop_assert_eq!(back, f);
            }
        }
    }

    #[test]
    fn non_ipv4_records_have_no_prefixes() {
        let r = DelegationRecord {
            country: country::BR,
            resource: NumberResource::Ipv6 { prefix_len: 32 },
            date: Date::ymd(2010, 1, 1),
            status: DelegationStatus::Allocated,
            holder: None,
        };
        assert!(r.ipv4_prefixes().is_empty());
        assert_eq!(r.ipv4_count(), 0);
    }
}
