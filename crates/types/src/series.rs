//! Month-indexed time series.
//!
//! Every figure in the study is one or more per-country series sampled
//! monthly (or resampled to months). [`TimeSeries`] is a thin ordered map
//! from [`MonthStamp`] to `f64` with the alignment, normalisation, and
//! summary operations the figure extractors need.

use crate::date::MonthStamp;
use std::collections::BTreeMap;

/// An ordered month → value series.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    points: BTreeMap<MonthStamp, f64>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(month, value)` pairs; later duplicates win.
    pub fn from_points(points: impl IntoIterator<Item = (MonthStamp, f64)>) -> Self {
        TimeSeries {
            points: points.into_iter().collect(),
        }
    }

    /// Insert or replace the value for `month`.
    pub fn insert(&mut self, month: MonthStamp, value: f64) {
        self.points.insert(month, value);
    }

    /// The value at exactly `month`.
    pub fn get(&self, month: MonthStamp) -> Option<f64> {
        self.points.get(&month).copied()
    }

    /// The most recent value at or before `month` (step interpolation) —
    /// how snapshot-style datasets (facility counts, cable counts) are read.
    pub fn at_or_before(&self, month: MonthStamp) -> Option<f64> {
        self.points.range(..=month).next_back().map(|(_, &v)| v)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// First (earliest) point.
    pub fn first(&self) -> Option<(MonthStamp, f64)> {
        self.points.iter().next().map(|(&m, &v)| (m, v))
    }

    /// Last (latest) point.
    pub fn last(&self) -> Option<(MonthStamp, f64)> {
        self.points.iter().next_back().map(|(&m, &v)| (m, v))
    }

    /// Iterate in chronological order.
    pub fn iter(&self) -> impl Iterator<Item = (MonthStamp, f64)> + '_ {
        self.points.iter().map(|(&m, &v)| (m, v))
    }

    /// Restrict to `[start, end]` inclusive.
    pub fn window(&self, start: MonthStamp, end: MonthStamp) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .range(start..=end)
                .map(|(&m, &v)| (m, v))
                .collect(),
        }
    }

    /// Map every value.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            points: self.points.iter().map(|(&m, &v)| (m, f(v))).collect(),
        }
    }

    /// Pointwise binary operation over the *intersection* of months.
    pub fn zip_with(&self, other: &TimeSeries, f: impl Fn(f64, f64) -> f64) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .filter_map(|(&m, &a)| other.get(m).map(|b| (m, f(a, b))))
                .collect(),
        }
    }

    /// Series divided by its own maximum — the "X / max(X)" right axes of
    /// Fig. 1. Returns an empty series if there is no positive maximum.
    pub fn normalized_to_max(&self) -> TimeSeries {
        let max = self.max_value().unwrap_or(0.0);
        if max <= 0.0 {
            return TimeSeries::new();
        }
        self.map(|v| v / max)
    }

    /// Maximum value.
    pub fn max_value(&self) -> Option<f64> {
        self.points.values().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.max(v),
            })
        })
    }

    /// Minimum value.
    pub fn min_value(&self) -> Option<f64> {
        self.points.values().copied().fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(a) => a.min(v),
            })
        })
    }

    /// Mean of all values.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.values().sum::<f64>() / self.points.len() as f64)
    }

    /// Percentage change from the peak to the final value — the "-81.49%"
    /// style annotations of Fig. 1. Negative means decline.
    pub fn peak_to_latest_change_pct(&self) -> Option<f64> {
        let peak = self.max_value()?;
        let (_, last) = self.last()?;
        if peak == 0.0 {
            return None;
        }
        Some((last - peak) / peak * 100.0)
    }

    /// Trailing mean over the final `months` points — e.g. the paper's
    /// "last 6 months of our analysis" comparisons (§7.2).
    pub fn trailing_mean(&self, months: usize) -> Option<f64> {
        if self.points.is_empty() || months == 0 {
            return None;
        }
        let vals: Vec<f64> = self.points.values().rev().take(months).copied().collect();
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }

    /// Linear resample onto every month in `[start, end]`, interpolating
    /// between known points and holding flat beyond the ends. Empty input
    /// yields an empty output.
    pub fn resample_monthly(&self, start: MonthStamp, end: MonthStamp) -> TimeSeries {
        if self.points.is_empty() || end < start {
            return TimeSeries::new();
        }
        let pts: Vec<(MonthStamp, f64)> = self.iter().collect();
        let mut out = BTreeMap::new();
        for m in start.through(end) {
            let v = match pts.binary_search_by_key(&m, |&(mm, _)| mm) {
                Ok(i) => pts[i].1,
                Err(0) => pts[0].1,
                Err(i) if i == pts.len() => pts[pts.len() - 1].1,
                Err(i) => {
                    let (m0, v0) = pts[i - 1];
                    let (m1, v1) = pts[i];
                    let t = m0.months_until(m) as f64 / m0.months_until(m1) as f64;
                    v0 + (v1 - v0) * t
                }
            };
            out.insert(m, v);
        }
        TimeSeries { points: out }
    }
}

impl FromIterator<(MonthStamp, f64)> for TimeSeries {
    fn from_iter<T: IntoIterator<Item = (MonthStamp, f64)>>(iter: T) -> Self {
        Self::from_points(iter)
    }
}

/// Compute the pointwise mean of several series over the union of their
/// months — the "mean LACNIC" aggregate curves in Figs. 5, 11, 12 average
/// whatever countries reported in each month.
pub fn mean_of(series: &[&TimeSeries]) -> TimeSeries {
    let mut sums: BTreeMap<MonthStamp, (f64, u32)> = BTreeMap::new();
    for s in series {
        for (m, v) in s.iter() {
            let e = sums.entry(m).or_insert((0.0, 0));
            e.0 += v;
            e.1 += 1;
        }
    }
    TimeSeries {
        points: sums
            .into_iter()
            .map(|(m, (sum, n))| (m, sum / n as f64))
            .collect(),
    }
}

/// Pointwise sum of several series over the union of months — used for the
/// region-total panels (facilities, cables, root replicas).
pub fn sum_of(series: &[&TimeSeries]) -> TimeSeries {
    let mut sums: BTreeMap<MonthStamp, f64> = BTreeMap::new();
    for s in series {
        for (m, v) in s.iter() {
            *sums.entry(m).or_insert(0.0) += v;
        }
    }
    TimeSeries { points: sums }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    fn s(points: &[(i32, u8, f64)]) -> TimeSeries {
        TimeSeries::from_points(points.iter().map(|&(y, mo, v)| (m(y, mo), v)))
    }

    #[test]
    fn insert_get_window() {
        let ts = s(&[(2013, 1, 1.0), (2014, 1, 2.0), (2015, 1, 3.0)]);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.get(m(2014, 1)), Some(2.0));
        assert_eq!(ts.get(m(2014, 2)), None);
        let w = ts.window(m(2013, 6), m(2014, 6));
        assert_eq!(w.len(), 1);
        assert_eq!(w.get(m(2014, 1)), Some(2.0));
    }

    #[test]
    fn at_or_before_steps() {
        let ts = s(&[(2013, 1, 1.0), (2015, 1, 3.0)]);
        assert_eq!(ts.at_or_before(m(2012, 12)), None);
        assert_eq!(ts.at_or_before(m(2013, 1)), Some(1.0));
        assert_eq!(ts.at_or_before(m(2014, 6)), Some(1.0));
        assert_eq!(ts.at_or_before(m(2020, 1)), Some(3.0));
    }

    #[test]
    fn normalisation_and_peak_change() {
        // Shaped like Venezuela's oil curve: peak then collapse.
        let ts = s(&[(2008, 1, 80.0), (2013, 1, 100.0), (2020, 1, 19.0)]);
        let norm = ts.normalized_to_max();
        assert_eq!(norm.get(m(2013, 1)), Some(1.0));
        assert_eq!(norm.get(m(2020, 1)), Some(0.19));
        let change = ts.peak_to_latest_change_pct().unwrap();
        assert!((change - -81.0).abs() < 1e-9);
    }

    #[test]
    fn normalized_empty_when_nonpositive() {
        let ts = s(&[(2013, 1, 0.0), (2014, 1, -1.0)]);
        assert!(ts.normalized_to_max().is_empty());
        assert!(TimeSeries::new().normalized_to_max().is_empty());
    }

    #[test]
    fn zip_intersects() {
        let a = s(&[(2013, 1, 10.0), (2014, 1, 20.0)]);
        let b = s(&[(2014, 1, 2.0), (2015, 1, 4.0)]);
        let q = a.zip_with(&b, |x, y| x / y);
        assert_eq!(q.len(), 1);
        assert_eq!(q.get(m(2014, 1)), Some(10.0));
    }

    #[test]
    fn trailing_mean_last_six_months() {
        let ts = TimeSeries::from_points((1..=12).map(|mo| (m(2023, mo), mo as f64)));
        // Last 6 months: 7..=12, mean 9.5.
        assert_eq!(ts.trailing_mean(6), Some(9.5));
        // Window longer than series: uses all points.
        assert_eq!(ts.trailing_mean(100), Some(6.5));
        assert_eq!(TimeSeries::new().trailing_mean(6), None);
        assert_eq!(ts.trailing_mean(0), None);
    }

    #[test]
    fn resample_interpolates() {
        let ts = s(&[(2013, 1, 0.0), (2014, 1, 12.0)]);
        let r = ts.resample_monthly(m(2012, 11), m(2014, 3));
        assert_eq!(r.get(m(2012, 11)), Some(0.0)); // flat before
        assert_eq!(r.get(m(2013, 7)), Some(6.0)); // midpoint
        assert_eq!(r.get(m(2014, 3)), Some(12.0)); // flat after
        assert_eq!(r.len(), 17);
        assert!(TimeSeries::new()
            .resample_monthly(m(2013, 1), m(2014, 1))
            .is_empty());
    }

    #[test]
    fn mean_and_sum_over_union() {
        let a = s(&[(2013, 1, 10.0), (2014, 1, 20.0)]);
        let b = s(&[(2014, 1, 40.0)]);
        let mean = mean_of(&[&a, &b]);
        assert_eq!(mean.get(m(2013, 1)), Some(10.0));
        assert_eq!(mean.get(m(2014, 1)), Some(30.0));
        let sum = sum_of(&[&a, &b]);
        assert_eq!(sum.get(m(2014, 1)), Some(60.0));
        assert!(mean_of(&[]).is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn series_strategy() -> impl Strategy<Value = TimeSeries> {
            proptest::collection::btree_map(0i32..600, -1.0e6f64..1.0e6, 0..60).prop_map(|m| {
                TimeSeries::from_points(
                    m.into_iter()
                        .map(|(i, v)| (MonthStamp::new(2000, 1).plus(i), v)),
                )
            })
        }

        proptest! {
            #[test]
            fn window_is_a_subset(s in series_strategy(), a in 0i32..600, span in 0i32..600) {
                let start = MonthStamp::new(2000, 1).plus(a);
                let end = start.plus(span);
                let w = s.window(start, end);
                prop_assert!(w.len() <= s.len());
                for (m, v) in w.iter() {
                    prop_assert!(m >= start && m <= end);
                    prop_assert_eq!(s.get(m), Some(v));
                }
            }

            #[test]
            fn normalized_max_is_one(s in series_strategy()) {
                let n = s.normalized_to_max();
                if let Some(max) = n.max_value() {
                    prop_assert!((max - 1.0).abs() < 1e-9);
                    prop_assert_eq!(n.len(), s.len());
                }
            }

            #[test]
            fn resample_covers_window_and_bounds(s in series_strategy(), a in 0i32..600, span in 0i32..120) {
                let start = MonthStamp::new(2000, 1).plus(a);
                let end = start.plus(span);
                let r = s.resample_monthly(start, end);
                if s.is_empty() {
                    prop_assert!(r.is_empty());
                } else {
                    prop_assert_eq!(r.len(), (span + 1) as usize);
                    // Interpolation never leaves the value envelope.
                    let lo = s.min_value().unwrap();
                    let hi = s.max_value().unwrap();
                    for (_, v) in r.iter() {
                        prop_assert!(v >= lo - 1e-6 && v <= hi + 1e-6);
                    }
                    // Exact at known points inside the window.
                    for (m, v) in s.iter() {
                        if m >= start && m <= end {
                            prop_assert!((r.get(m).unwrap() - v).abs() < 1e-9);
                        }
                    }
                }
            }

            #[test]
            fn mean_between_min_and_max(s in series_strategy()) {
                if let (Some(mean), Some(lo), Some(hi)) = (s.mean(), s.min_value(), s.max_value()) {
                    prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
                }
            }

            #[test]
            fn sum_of_singletons_is_identity(s in series_strategy()) {
                let total = crate::series::sum_of(&[&s]);
                prop_assert_eq!(total, s.clone());
                let mean = crate::series::mean_of(&[&s, &s]);
                for (m, v) in s.iter() {
                    prop_assert!((mean.get(m).unwrap() - v).abs() < 1e-9);
                }
            }

            #[test]
            fn at_or_before_is_step_function(s in series_strategy(), probe in 0i32..600) {
                let m = MonthStamp::new(2000, 1).plus(probe);
                match s.at_or_before(m) {
                    None => {
                        // No point at or before m.
                        prop_assert!(s.iter().all(|(mm, _)| mm > m));
                    }
                    Some(v) => {
                        let (mm, vv) = s
                            .iter()
                            .filter(|&(mm, _)| mm <= m)
                            .last()
                            .expect("some point at or before");
                        prop_assert_eq!(v, vv);
                        prop_assert!(mm <= m);
                    }
                }
            }
        }
    }

    #[test]
    fn min_max_first_last() {
        let ts = s(&[(2013, 1, 5.0), (2014, 1, -2.0), (2015, 1, 7.0)]);
        assert_eq!(ts.max_value(), Some(7.0));
        assert_eq!(ts.min_value(), Some(-2.0));
        assert_eq!(ts.first(), Some((m(2013, 1), 5.0)));
        assert_eq!(ts.last(), Some((m(2015, 1), 7.0)));
        assert_eq!(ts.mean(), Some(10.0 / 3.0));
    }
}
