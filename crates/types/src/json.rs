//! Minimal self-contained JSON support.
//!
//! The workspace builds with no external dependencies, so the JSON-shaped
//! dataset formats (PeeringDB dumps, the cable map, cert scans, top-site
//! scrapes) serialise through this module instead of `serde_json`. It is a
//! deliberately small surface: a [`Json`] value tree, a strict parser, a
//! compact writer, and [`ToJson`]/[`FromJson`] traits with an
//! [`impl_json_struct!`] helper macro for plain field-for-field structs.
//!
//! Output is compact (no whitespace) and field order follows declaration
//! order, so serialisation is deterministic — a property the cross-crate
//! determinism tests rely on.

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values print without a
    /// fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Pairs keep insertion order so output is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Decode the member `key` of an object. A missing member is treated as
    /// `null`, which lets `Option` fields default to `None`.
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T> {
        match self.get(key) {
            Some(v) => T::from_json_value(v),
            None => T::from_json_value(&Json::Null)
                .map_err(|_| Error::missing("JSON object member", key)),
        }
    }

    /// Serialise to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text. Trailing non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::parse("end of JSON input", text));
        }
        Ok(value)
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("JSON syntax"))
        }
    }

    fn err(&self, expected: &'static str) -> Error {
        let tail = &self.bytes[self.pos.min(self.bytes.len())..];
        let tail = &tail[..tail.len().min(40)];
        Error::parse(expected, &String::from_utf8_lossy(tail))
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("JSON literal"))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::invalid("JSON string is not UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let first = self.unicode_escape()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect a low surrogate.
                                if self.bytes[self.pos + 1..].first() != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("low surrogate"));
                                }
                                self.pos += 2;
                                let second = self.unicode_escape()?;
                                let joined = 0x10000
                                    + ((first - 0xD800) << 10)
                                    + (second.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(joined)
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| self.err("valid unicode escape"))?);
                        }
                        _ => return Err(self.err("string escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("closing '\"'")),
            }
        }
    }

    /// Reads the 4 hex digits after `\u` (cursor on `u`); leaves the
    /// cursor on the final digit so the caller's `pos += 1` pattern holds.
    fn unicode_escape(&mut self) -> Result<u32> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.err("4-digit unicode escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("hex digits"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("hex digits"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number"))
    }
}

/// Conversion into a [`Json`] value tree.
pub trait ToJson {
    /// Build the value tree for `self`.
    fn to_json_value(&self) -> Json;
}

/// Conversion from a [`Json`] value tree.
pub trait FromJson: Sized {
    /// Decode `self` from a value tree.
    fn from_json_value(v: &Json) -> Result<Self>;
}

/// Serialise any [`ToJson`] value to compact JSON text.
pub fn to_string<T: ToJson>(value: &T) -> String {
    value.to_json_value().to_text()
}

/// Parse JSON text into any [`FromJson`] type.
pub fn from_str<T: FromJson>(text: &str) -> Result<T> {
    T::from_json_value(&Json::parse(text)?)
}

macro_rules! impl_json_int {
    ($($ty:ty),*) => {
        $(
            impl ToJson for $ty {
                fn to_json_value(&self) -> Json {
                    Json::Num(*self as f64)
                }
            }
            impl FromJson for $ty {
                fn from_json_value(v: &Json) -> Result<Self> {
                    let n = v.as_f64().ok_or_else(|| Error::invalid("expected JSON number"))?;
                    if n.fract() != 0.0 || n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                        return Err(Error::invalid(concat!("number out of range for ", stringify!($ty))));
                    }
                    Ok(n as $ty)
                }
            }
        )*
    };
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json_value(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_f64()
            .ok_or_else(|| Error::invalid("expected JSON number"))
    }
}

impl ToJson for bool {
    fn to_json_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_bool()
            .ok_or_else(|| Error::invalid("expected JSON boolean"))
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::invalid("expected JSON string"))
    }
}

impl ToJson for &str {
    fn to_json_value(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json_value(&self) -> Json {
        match self {
            Some(v) => v.to_json_value(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json_value(v: &Json) -> Result<Self> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_array()
            .ok_or_else(|| Error::invalid("expected JSON array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<K: ToJson, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json_value(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json_value(), v.to_json_value()]))
                .collect(),
        )
    }
}

// ---- impls for the foundational newtypes in this crate -------------------

impl ToJson for crate::Asn {
    fn to_json_value(&self) -> Json {
        Json::Num(self.0 as f64)
    }
}

impl FromJson for crate::Asn {
    fn from_json_value(v: &Json) -> Result<Self> {
        u32::from_json_value(v).map(crate::Asn)
    }
}

impl ToJson for crate::CountryCode {
    fn to_json_value(&self) -> Json {
        Json::Str(self.as_str().to_owned())
    }
}

impl FromJson for crate::CountryCode {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_str()
            .ok_or_else(|| Error::invalid("expected country code string"))?
            .parse()
    }
}

impl ToJson for crate::Ipv4Net {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for crate::Ipv4Net {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_str()
            .ok_or_else(|| Error::invalid("expected CIDR string"))?
            .parse()
    }
}

impl ToJson for crate::MonthStamp {
    fn to_json_value(&self) -> Json {
        Json::Num(self.index() as f64)
    }
}

impl FromJson for crate::MonthStamp {
    fn from_json_value(v: &Json) -> Result<Self> {
        i32::from_json_value(v).map(crate::MonthStamp::from_index)
    }
}

impl ToJson for crate::Date {
    fn to_json_value(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for crate::Date {
    fn from_json_value(v: &Json) -> Result<Self> {
        v.as_str()
            .ok_or_else(|| Error::invalid("expected YYYY-MM-DD string"))?
            .parse()
    }
}

impl ToJson for crate::GeoPoint {
    fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("lat_deg".to_owned(), Json::Num(self.lat_deg())),
            ("lon_deg".to_owned(), Json::Num(self.lon_deg())),
        ])
    }
}

impl FromJson for crate::GeoPoint {
    fn from_json_value(v: &Json) -> Result<Self> {
        Ok(crate::GeoPoint::new(
            v.field("lat_deg")?,
            v.field("lon_deg")?,
        ))
    }
}

/// Implement [`ToJson`]/[`FromJson`] for a plain struct, field for field,
/// in declaration order.
///
/// ```
/// use lacnet_types::impl_json_struct;
///
/// #[derive(Debug, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_json_struct!(Point { x, y });
///
/// let p = Point { x: 1, y: 2 };
/// let text = lacnet_types::json::to_string(&p);
/// assert_eq!(text, r#"{"x":1,"y":2}"#);
/// assert_eq!(lacnet_types::json::from_str::<Point>(&text).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json_value(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $( (
                        stringify!($field).to_owned(),
                        $crate::json::ToJson::to_json_value(&self.$field),
                    ), )+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json_value(v: &$crate::json::Json) -> $crate::Result<Self> {
                Ok(Self {
                    $( $field: v.field(stringify!($field))?, )+
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-12", "3.5", "\"hola\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_text(), text, "{text}");
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse(" [1, 2] ").unwrap().to_text(), "[1,2]");
    }

    #[test]
    fn nested_structure_roundtrips() {
        let text = r#"{"data":[{"id":1,"name":"CANTV","ok":true,"cdn":null}]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_text(), text);
        let row = &v.get("data").unwrap().as_array().unwrap()[0];
        assert_eq!(row.field::<u32>("id").unwrap(), 1);
        assert_eq!(row.field::<String>("name").unwrap(), "CANTV");
        assert_eq!(row.field::<Option<String>>("cdn").unwrap(), None);
        assert_eq!(row.field::<Option<String>>("absent").unwrap(), None);
    }

    #[test]
    fn string_escapes() {
        let original = "a\"b\\c\nd\te\u{1F30E}";
        let v = Json::Str(original.to_owned());
        let text = v.to_text();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Escaped-unicode input decodes too (incl. a surrogate pair).
        assert_eq!(
            Json::parse(r#""A🌎""#).unwrap(),
            Json::Str("A\u{1F30E}".to_owned())
        );
    }

    #[test]
    fn malformed_inputs_error() {
        for text in [
            "",
            "{",
            "[",
            "{]",
            "nope",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "1 2",
            "\"unterminated",
            "[1] trailing",
            "tru",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn numbers_write_compactly() {
        assert_eq!(Json::Num(7.0).to_text(), "7");
        assert_eq!(Json::Num(-0.5).to_text(), "-0.5");
        // Beyond the exact-i64 window the value falls through to f64
        // Display, which prints the full digit string for 1e18.
        assert_eq!(Json::Num(1.0e18).to_text(), "1000000000000000000");
    }

    #[test]
    fn newtype_impls_match_dump_style() {
        assert_eq!(to_string(&crate::Asn(8048)), "8048");
        assert_eq!(to_string(&crate::country::VE), "\"VE\"");
        let net: crate::Ipv4Net = "200.44.0.0/17".parse().unwrap();
        assert_eq!(to_string(&net), "\"200.44.0.0/17\"");
        assert_eq!(
            from_str::<crate::Ipv4Net>("\"200.44.0.0/17\"").unwrap(),
            net
        );
        let d = crate::Date::ymd(2024, 2, 1);
        assert_eq!(to_string(&d), "\"2024-02-01\"");
        assert_eq!(from_str::<crate::Date>(&to_string(&d)).unwrap(), d);
        let m = crate::MonthStamp::new(2024, 2);
        assert_eq!(from_str::<crate::MonthStamp>(&to_string(&m)).unwrap(), m);
        let g = crate::GeoPoint::new(10.6, -66.8);
        assert_eq!(from_str::<crate::GeoPoint>(&to_string(&g)).unwrap(), g);
    }
}
