//! Hand-rolled binary codec primitives: varints, zigzag, fixed-width
//! little-endian floats, CRC-32 and FNV-1a — the building blocks of the
//! `.ndtc` columnar shard container (`lacnet-mlab::columnar`) and of the
//! incremental-refresh shard manifest.
//!
//! The workspace builds fully offline, so these are implemented here
//! rather than pulled from crates.io. Every encoder has a matching
//! bounds-checked decoder that returns a typed [`Error`] instead of
//! panicking on truncated or corrupt input.

use crate::error::{Error, Result};

/// Append `v` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Read an unsigned LEB128 varint at `*pos`, advancing `*pos` past it.
pub fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or_else(|| Error::parse("varint (truncated input)", ""))?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(Error::parse("varint (overflows u64)", ""));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::parse("varint (more than 10 bytes)", ""));
        }
    }
}

/// ZigZag-map a signed value so small magnitudes stay small varints.
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as a zigzag varint.
pub fn put_ivarint(buf: &mut Vec<u8>, v: i64) {
    put_uvarint(buf, zigzag(v));
}

/// Read a zigzag varint at `*pos`.
pub fn read_ivarint(bytes: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(read_uvarint(bytes, pos)?))
}

/// Append `v` as 8 little-endian bytes (IEEE-754 bit pattern, exact).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Read an `f64` stored by [`put_f64`] at `*pos`.
pub fn read_f64(bytes: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| Error::parse("f64 (truncated input)", ""))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(raw)))
}

/// The `i`-th `f64` of a fixed-width little-endian column, without a
/// cursor — the zero-copy `ColumnSlice` accessor. Callers are expected
/// to have length-checked the payload once up front (`(i + 1) * 8 <=
/// bytes.len()`); out-of-bounds indexing panics like slice indexing.
pub fn f64_at(bytes: &[u8], i: usize) -> f64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
    f64::from_bits(u64::from_le_bytes(raw))
}

/// Append `v` as 4 little-endian bytes.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` stored by [`put_u32`] at `*pos`.
pub fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| Error::parse("u32 (truncated input)", ""))?;
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(raw))
}

/// Append `v` as 8 little-endian bytes.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u64` stored by [`put_u64`] at `*pos`.
pub fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| Error::parse("u64 (truncated input)", ""))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

/// The CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup
/// tables for slicing-by-8, built at compile time. `tables[0]` is the
/// classic one-byte-at-a-time table; `tables[t]` advances a byte `t`
/// positions further through the register, so eight table lookups
/// retire eight input bytes per step.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes` — the shard-footer checksum. Slicing-by-8:
/// bit-identical to the byte-at-a-time definition, but verification no
/// longer dominates block decode on multi-megabyte containers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// FNV-1a 64-bit hash — the shard-manifest fingerprint/content hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvarint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 255, 300, 1 << 20, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len(), "consumed exactly the encoding of {v}");
        }
    }

    #[test]
    fn ivarint_roundtrip_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 719_468, -719_468] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn ten_byte_varints_pin_the_shift_63_boundary() {
        // The widest legal varint: nine continuation bytes then 0x01 —
        // exactly the top bit of the u64 — decodes to u64::MAX.
        let max = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let mut pos = 0;
        assert_eq!(read_uvarint(&max, &mut pos).unwrap(), u64::MAX);
        assert_eq!(pos, 10);
        // One step past it: a tenth byte carrying more than that single
        // bit would need a 65th value bit. Rejected, not wrapped — the
        // guard fires on the byte itself, before any shift overflows.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut pos = 0;
        assert!(read_uvarint(&over, &mut pos).is_err());
        // 0x02 in the tenth byte is the smallest overflowing payload.
        let barely = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert!(read_uvarint(&barely, &mut pos).is_err());
        // The same wire bytes read as a zigzag varint are i64::MIN — the
        // signed extreme rides the unsigned one.
        let mut pos = 0;
        assert_eq!(read_ivarint(&max, &mut pos).unwrap(), i64::MIN);
        let mut buf = Vec::new();
        put_ivarint(&mut buf, i64::MIN);
        assert_eq!(buf, max);
    }

    #[test]
    fn zigzag_maps_small_magnitudes_to_small_codes() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut pos = 0;
        assert!(read_uvarint(&[], &mut pos).is_err());
        let mut pos = 0;
        assert!(
            read_uvarint(&[0x80, 0x80], &mut pos).is_err(),
            "unterminated"
        );
        let mut pos = 0;
        assert!(read_f64(&[1, 2, 3], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_u32(&[1], &mut pos).is_err());
        let mut pos = 0;
        assert!(read_u64(&[1, 2, 3, 4], &mut pos).is_err());
    }

    #[test]
    fn oversized_varint_is_rejected() {
        // 11 continuation bytes can never be a valid u64 varint.
        let bytes = [0xFFu8; 11];
        let mut pos = 0;
        assert!(read_uvarint(&bytes, &mut pos).is_err());
    }

    #[test]
    fn f64_roundtrip_is_bit_exact() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, f64::NAN] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let mut pos = 0;
            let back = read_f64(&buf, &mut pos).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f64_at_matches_cursor_reads() {
        let vals = [0.0f64, -1.5, f64::MAX, f64::NAN, 3.25];
        let mut buf = Vec::new();
        for v in vals {
            put_f64(&mut buf, v);
        }
        let mut pos = 0;
        for (i, v) in vals.iter().enumerate() {
            let cursor = read_f64(&buf, &mut pos).unwrap();
            assert_eq!(f64_at(&buf, i).to_bits(), v.to_bits());
            assert_eq!(f64_at(&buf, i).to_bits(), cursor.to_bits());
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for the IEEE polynomial. Nine bytes
        // exercises both the 8-byte slicing step and the remainder tail.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn crc32_slicing_matches_bytewise_definition_at_every_length() {
        // One-byte-at-a-time reference, straight from the definition.
        let reference = |bytes: &[u8]| -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ 0xEDB8_8320
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        };
        // Every length through several slicing strides, so chunk/tail
        // boundaries at 0..=7 remainder bytes are all covered.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(197) >> 3) as u8)
            .collect();
        for len in 0..=data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"shard/VE"), fnv1a64(b"shard/BR"));
    }
}
