//! # lacnet-types
//!
//! Foundational types shared by every crate in the `lacnet` workspace:
//!
//! * [`Asn`] — autonomous system numbers, plus the well-known ASNs that the
//!   SIGCOMM 2024 Venezuelan-crisis study keys its analysis on.
//! * [`CountryCode`] and the [`country`] registry — ISO 3166-1 alpha-2 codes
//!   with metadata for every economy in the LACNIC service region.
//! * [`Date`] / [`MonthStamp`] — proleptic-Gregorian civil dates and a
//!   compact month index used for every longitudinal series in the study.
//! * [`Ipv4Net`] and [`PrefixTrie`] — CIDR arithmetic and longest-prefix
//!   matching for prefix-to-AS joins.
//! * [`GeoPoint`] — great-circle geometry for the anycast/RTT models.
//! * [`TimeSeries`] — the month-indexed series container all figures use.
//! * [`stats`] — exact and streaming (P²) quantiles, log-normal sampling.
//! * [`rng`] — self-contained deterministic PRNGs (SplitMix64,
//!   xoshiro256**) so generated worlds are bit-stable across dependency
//!   upgrades.
//! * [`json`] — dependency-free JSON value tree, parser, and writer for
//!   the JSON-shaped dataset formats (PeeringDB dumps, cable maps, …).
//! * [`toml`] — a strict TOML-subset parser producing the same [`json`]
//!   value tree, for the hand-edited scenario sidecars.
//! * [`codec`] — varints, zigzag, fixed-width little-endian floats,
//!   CRC-32 and FNV-1a for the binary columnar shard container and the
//!   incremental-refresh manifest.
//! * [`lru`] — a bounded least-recently-used cache with single-flight
//!   computation, the `lacnet-serve` response cache.
//! * [`http`] — a dependency-free HTTP/1.1 request parser (typed
//!   400/413/414/431 errors, hard resource limits) and response writer.
//! * [`sweep`] — deterministic parallel sweeps over month ranges and
//!   independent build tasks on `std::thread::scope` workers.
//!
//! Everything here is self-contained std: no sockets, no clocks, no
//! global state ([`http`] parses from any `BufRead`; the substrate stays
//! pure data). Higher crates layer dataset formats, simulators and the
//! serving layer on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn;
pub mod codec;
pub mod country;
pub mod date;
pub mod error;
pub mod geo;
pub mod http;
pub mod json;
pub mod lru;
pub mod net;
pub mod rng;
pub mod series;
pub mod stats;
pub mod sweep;
pub mod toml;
pub mod trie;

pub use asn::Asn;
pub use country::CountryCode;
pub use date::{Date, MonthStamp};
pub use error::{Error, Result};
pub use geo::GeoPoint;
pub use net::Ipv4Net;
pub use series::TimeSeries;
pub use trie::PrefixTrie;
