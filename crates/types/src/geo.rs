//! Great-circle geometry and latency geometry.
//!
//! The RTT models in `lacnet-atlas` need two primitives: the haversine
//! distance between two points on the Earth, and a conversion from fibre
//! path length to propagation delay. Both live here so the airport-code
//! registry (used by CHAOS TXT decoding) can share them.

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Speed of light in vacuum, km per millisecond.
pub const C_KM_PER_MS: f64 = 299.792_458;

/// Effective propagation speed in optical fibre (~2/3 c), km/ms.
pub const FIBER_KM_PER_MS: f64 = C_KM_PER_MS * 2.0 / 3.0;

/// Typical path-stretch factor: terrestrial fibre routes are not great
/// circles. Empirical studies put the detour factor around 1.5–2.5; the
/// models here default to 2.0 and let callers override.
pub const DEFAULT_PATH_STRETCH: f64 = 2.0;

/// A point on the Earth's surface (WGS-84 latitude/longitude, degrees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Construct from latitude and longitude in degrees. Values are stored
    /// as given; latitudes outside ±90° make no geometric sense and are the
    /// caller's responsibility (constructors taking untrusted input should
    /// validate first).
    pub const fn new(lat_deg: f64, lon_deg: f64) -> Self {
        GeoPoint { lat_deg, lon_deg }
    }

    /// Latitude in degrees.
    pub const fn lat_deg(self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub const fn lon_deg(self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// One-way fibre propagation delay to `other` in milliseconds, assuming
    /// the given path-stretch factor over the great-circle distance.
    pub fn propagation_ms(self, other: GeoPoint, stretch: f64) -> f64 {
        self.distance_km(other) * stretch / FIBER_KM_PER_MS
    }

    /// Minimum plausible round-trip time to `other` in milliseconds with
    /// the default stretch factor.
    pub fn min_rtt_ms(self, other: GeoPoint) -> f64 {
        2.0 * self.propagation_ms(other, DEFAULT_PATH_STRETCH)
    }
}

/// An IATA-style airport/city code with coordinates — the vocabulary root
/// DNS operators embed in CHAOS TXT instance names (§3.1, §5.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirportCode {
    /// Three-letter IATA code, lowercase in CHAOS strings.
    pub code: &'static str,
    /// ISO country code of the airport's country.
    pub country: &'static str,
    /// City name.
    pub city: &'static str,
    /// Coordinates.
    pub location: GeoPoint,
}

/// Airport codes referenced by the synthetic root-server deployments and by
/// the CHAOS decoding tests. Covers every city the paper names plus the
/// common overseas anycast sites Venezuelan probes reach (Appendix E).
pub const AIRPORTS: &[AirportCode] = &[
    AirportCode {
        code: "ccs",
        country: "VE",
        city: "Caracas",
        location: GeoPoint::new(10.48, -66.90),
    },
    AirportCode {
        code: "mar",
        country: "VE",
        city: "Maracaibo",
        location: GeoPoint::new(10.65, -71.61),
    },
    AirportCode {
        code: "bog",
        country: "CO",
        city: "Bogota",
        location: GeoPoint::new(4.71, -74.07),
    },
    AirportCode {
        code: "gru",
        country: "BR",
        city: "Sao Paulo",
        location: GeoPoint::new(-23.55, -46.63),
    },
    AirportCode {
        code: "gig",
        country: "BR",
        city: "Rio de Janeiro",
        location: GeoPoint::new(-22.91, -43.17),
    },
    AirportCode {
        code: "eze",
        country: "AR",
        city: "Buenos Aires",
        location: GeoPoint::new(-34.60, -58.38),
    },
    AirportCode {
        code: "scl",
        country: "CL",
        city: "Santiago",
        location: GeoPoint::new(-33.45, -70.67),
    },
    AirportCode {
        code: "mex",
        country: "MX",
        city: "Mexico City",
        location: GeoPoint::new(19.43, -99.13),
    },
    AirportCode {
        code: "pty",
        country: "PA",
        city: "Panama City",
        location: GeoPoint::new(8.98, -79.52),
    },
    AirportCode {
        code: "mvd",
        country: "UY",
        city: "Montevideo",
        location: GeoPoint::new(-34.90, -56.19),
    },
    AirportCode {
        code: "uio",
        country: "EC",
        city: "Quito",
        location: GeoPoint::new(-0.18, -78.47),
    },
    AirportCode {
        code: "lim",
        country: "PE",
        city: "Lima",
        location: GeoPoint::new(-12.05, -77.04),
    },
    AirportCode {
        code: "sjo",
        country: "CR",
        city: "San Jose",
        location: GeoPoint::new(9.93, -84.08),
    },
    AirportCode {
        code: "mia",
        country: "US",
        city: "Miami",
        location: GeoPoint::new(25.76, -80.19),
    },
    AirportCode {
        code: "iad",
        country: "US",
        city: "Ashburn",
        location: GeoPoint::new(39.04, -77.49),
    },
    AirportCode {
        code: "jfk",
        country: "US",
        city: "New York",
        location: GeoPoint::new(40.71, -74.01),
    },
    AirportCode {
        code: "lax",
        country: "US",
        city: "Los Angeles",
        location: GeoPoint::new(34.05, -118.24),
    },
    AirportCode {
        code: "ord",
        country: "US",
        city: "Chicago",
        location: GeoPoint::new(41.88, -87.63),
    },
    AirportCode {
        code: "atl",
        country: "US",
        city: "Atlanta",
        location: GeoPoint::new(33.75, -84.39),
    },
    AirportCode {
        code: "dfw",
        country: "US",
        city: "Dallas",
        location: GeoPoint::new(32.78, -96.80),
    },
    AirportCode {
        code: "cor",
        country: "AR",
        city: "Cordoba",
        location: GeoPoint::new(-31.42, -64.18),
    },
    AirportCode {
        code: "lpb",
        country: "BO",
        city: "La Paz",
        location: GeoPoint::new(-16.50, -68.15),
    },
    AirportCode {
        code: "bon",
        country: "BQ",
        city: "Kralendijk",
        location: GeoPoint::new(12.15, -68.27),
    },
    AirportCode {
        code: "bsb",
        country: "BR",
        city: "Brasilia",
        location: GeoPoint::new(-15.79, -47.88),
    },
    AirportCode {
        code: "for",
        country: "BR",
        city: "Fortaleza",
        location: GeoPoint::new(-3.73, -38.52),
    },
    AirportCode {
        code: "bze",
        country: "BZ",
        city: "Belmopan",
        location: GeoPoint::new(17.25, -88.77),
    },
    AirportCode {
        code: "ccp",
        country: "CL",
        city: "Concepcion",
        location: GeoPoint::new(-36.83, -73.05),
    },
    AirportCode {
        code: "mde",
        country: "CO",
        city: "Medellin",
        location: GeoPoint::new(6.25, -75.56),
    },
    AirportCode {
        code: "hav",
        country: "CU",
        city: "Havana",
        location: GeoPoint::new(23.11, -82.37),
    },
    AirportCode {
        code: "cur",
        country: "CW",
        city: "Willemstad",
        location: GeoPoint::new(12.11, -68.93),
    },
    AirportCode {
        code: "sdq",
        country: "DO",
        city: "Santo Domingo",
        location: GeoPoint::new(18.49, -69.93),
    },
    AirportCode {
        code: "cay",
        country: "GF",
        city: "Cayenne",
        location: GeoPoint::new(4.92, -52.33),
    },
    AirportCode {
        code: "gua",
        country: "GT",
        city: "Guatemala City",
        location: GeoPoint::new(14.63, -90.51),
    },
    AirportCode {
        code: "geo",
        country: "GY",
        city: "Georgetown",
        location: GeoPoint::new(6.80, -58.16),
    },
    AirportCode {
        code: "tgu",
        country: "HN",
        city: "Tegucigalpa",
        location: GeoPoint::new(14.07, -87.19),
    },
    AirportCode {
        code: "pap",
        country: "HT",
        city: "Port-au-Prince",
        location: GeoPoint::new(18.54, -72.34),
    },
    AirportCode {
        code: "gdl",
        country: "MX",
        city: "Guadalajara",
        location: GeoPoint::new(20.67, -103.35),
    },
    AirportCode {
        code: "mty",
        country: "MX",
        city: "Monterrey",
        location: GeoPoint::new(25.67, -100.31),
    },
    AirportCode {
        code: "mga",
        country: "NI",
        city: "Managua",
        location: GeoPoint::new(12.11, -86.24),
    },
    AirportCode {
        code: "asu",
        country: "PY",
        city: "Asuncion",
        location: GeoPoint::new(-25.26, -57.58),
    },
    AirportCode {
        code: "pbm",
        country: "SR",
        city: "Paramaribo",
        location: GeoPoint::new(5.85, -55.20),
    },
    AirportCode {
        code: "sal",
        country: "SV",
        city: "San Salvador",
        location: GeoPoint::new(13.69, -89.22),
    },
    AirportCode {
        code: "sxm",
        country: "SX",
        city: "Philipsburg",
        location: GeoPoint::new(18.03, -63.05),
    },
    AirportCode {
        code: "pos",
        country: "TT",
        city: "Port of Spain",
        location: GeoPoint::new(10.65, -61.51),
    },
    AirportCode {
        code: "aua",
        country: "AW",
        city: "Oranjestad",
        location: GeoPoint::new(12.52, -70.03),
    },
    AirportCode {
        code: "sci",
        country: "VE",
        city: "San Cristobal",
        location: GeoPoint::new(7.77, -72.22),
    },
    AirportCode {
        code: "lhr",
        country: "GB",
        city: "London",
        location: GeoPoint::new(51.51, -0.13),
    },
    AirportCode {
        code: "fra",
        country: "DE",
        city: "Frankfurt",
        location: GeoPoint::new(50.11, 8.68),
    },
    AirportCode {
        code: "cdg",
        country: "FR",
        city: "Paris",
        location: GeoPoint::new(48.86, 2.35),
    },
    AirportCode {
        code: "ams",
        country: "NL",
        city: "Amsterdam",
        location: GeoPoint::new(52.37, 4.89),
    },
];

/// Look up an airport by (case-insensitive) code.
pub fn airport(code: &str) -> Option<&'static AirportCode> {
    AIRPORTS.iter().find(|a| a.code.eq_ignore_ascii_case(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn caracas_to_bogota_distance() {
        // Known great-circle distance ≈ 1,030 km.
        let ccs = airport("ccs").unwrap().location;
        let bog = airport("bog").unwrap().location;
        let d = ccs.distance_km(bog);
        assert!((990.0..1080.0).contains(&d), "got {d}");
    }

    #[test]
    fn caracas_to_curacao_is_paper_figure() {
        // §6.2: AMS-IX Curacao is "only 295 km from Caracas".
        let ccs = GeoPoint::new(10.48, -66.90);
        let cur = GeoPoint::new(12.11, -68.93);
        let d = ccs.distance_km(cur);
        assert!((260.0..330.0).contains(&d), "got {d}");
    }

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(10.0, -66.0);
        assert!(p.distance_km(p) < 1e-9);
        assert!(p.min_rtt_ms(p) < 1e-9);
    }

    #[test]
    fn rtt_scale_is_sane() {
        // Caracas → Miami ≈ 2,200 km; min RTT with 2x stretch ≈ 44 ms.
        let ccs = airport("ccs").unwrap().location;
        let mia = airport("mia").unwrap().location;
        let rtt = ccs.min_rtt_ms(mia);
        assert!((30.0..60.0).contains(&rtt), "got {rtt}");
    }

    #[test]
    fn airport_lookup_case_insensitive() {
        assert!(airport("CCS").is_some());
        assert!(airport("ccs").is_some());
        assert!(airport("zzz").is_none());
    }

    #[test]
    fn airports_unique() {
        let mut codes: Vec<_> = AIRPORTS.iter().map(|a| a.code).collect();
        let n = codes.len();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), n);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(
            lat1 in -80.0f64..80.0, lon1 in -180.0f64..180.0,
            lat2 in -80.0f64..80.0, lon2 in -180.0f64..180.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let d1 = a.distance_km(b);
            let d2 = b.distance_km(a);
            prop_assert!((d1 - d2).abs() < 1e-6);
            prop_assert!(d1 >= 0.0);
            // Cannot exceed half the circumference.
            prop_assert!(d1 <= EARTH_RADIUS_KM * std::f64::consts::PI + 1.0);
        }

        #[test]
        fn triangle_inequality(
            lat1 in -80.0f64..80.0, lon1 in -180.0f64..180.0,
            lat2 in -80.0f64..80.0, lon2 in -180.0f64..180.0,
            lat3 in -80.0f64..80.0, lon3 in -180.0f64..180.0,
        ) {
            let a = GeoPoint::new(lat1, lon1);
            let b = GeoPoint::new(lat2, lon2);
            let c = GeoPoint::new(lat3, lon3);
            prop_assert!(a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-6);
        }
    }
}
