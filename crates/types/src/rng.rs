//! Self-contained deterministic PRNGs.
//!
//! Every synthetic world in `lacnet-crisis` must be reproducible from a
//! 64-bit seed, bit-for-bit, independent of external crate versions. We
//! therefore ship our own SplitMix64 (seeding / stream-splitting) and
//! xoshiro256\*\* (bulk generation), the standard pairing recommended by
//! the xoshiro authors. The distribution helpers (normal, log-normal,
//! Poisson) are what the generators need.

/// SplitMix64 — a tiny, high-quality 64-bit mixer. Used to seed
/// [`Rng`] and to derive independent substreams from `(seed, label)`.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* — the workspace's bulk PRNG.
///
/// Not cryptographic; strictly for simulation. Carries a one-slot cache for
/// the second Box–Muller normal deviate.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    cached_normal: Option<f64>,
}

impl Rng {
    /// Seed via SplitMix64, per the xoshiro reference implementation.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
            cached_normal: None,
        }
    }

    /// Derive an independent substream for `label`. Generators use this so
    /// that adding a new consumer of randomness does not shift the values
    /// every *other* consumer sees (each dataset draws from its own stream).
    pub fn fork(&self, label: &str) -> Rng {
        // Mix the label into a fresh seed with FNV-1a, then re-seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Combine with this stream's state (not advancing it).
        Rng::seeded(h ^ self.s[0].rotate_left(17) ^ self.s[2])
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    /// Uses Lemire's multiply-shift with rejection for exact uniformity.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: accept unless low < threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive. Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate via Box–Muller (polar-free, cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Log-normal deviate parameterised by the *underlying* normal's
    /// `mu`/`sigma` (so the median of the output is `exp(mu)`).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Poisson deviate. Knuth's product method for small `lambda`; for
    /// large `lambda` a normal approximation (adequate for workload-count
    /// generation, where lambda can reach tens of thousands).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "negative lambda");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal_with(lambda, lambda.sqrt()).round();
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }

    /// Pick a uniformly random element of `slice`. Panics on empty input.
    pub fn choice<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.below(slice.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (reservoir-free; Floyd's
    /// algorithm). Panics if `k > n`. Result order is unspecified.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample larger than population");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.below(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // proptest's prelude globs in `rand::Rng` (a trait); make our type win.
    use super::Rng;

    #[test]
    fn splitmix_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::seeded(42);
        let mut b = Rng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seeded(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let root = Rng::seeded(7);
        let mut m1 = root.fork("mlab");
        let mut m2 = root.fork("mlab");
        let mut a1 = root.fork("atlas");
        assert_eq!(m1.next_u64(), m2.next_u64(), "same label, same stream");
        assert_ne!(root.fork("mlab").next_u64(), a1.next_u64());
        // Forking is based on the parent's state at creation, not advanced
        // by use: a fresh fork of `root` still matches the first draw.
        let first = Rng::seeded(7).fork("mlab").next_u64();
        assert_eq!(root.fork("mlab").next_u64(), first);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seeded(1);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut rng = Rng::seeded(99);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seeded(5);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sumsq += z * z;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = Rng::seeded(11);
        let mu = 1.0f64; // median should be e^1 ≈ 2.718
        let mut vals: Vec<f64> = (0..20_001).map(|_| rng.log_normal(mu, 0.8)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!(
            (median - mu.exp()).abs() / mu.exp() < 0.05,
            "median {median}"
        );
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = Rng::seeded(17);
        for &lambda in &[0.5, 4.0, 25.0, 200.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| rng.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.05,
                "lambda {lambda} mean {mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seeded(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Rng::seeded(8);
        let s = rng.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let set: std::collections::BTreeSet<_> = s.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
        assert_eq!(rng.sample_indices(5, 5).len(), 5);
        assert!(rng.sample_indices(5, 0).is_empty());
    }

    proptest! {
        #[test]
        fn below_respects_bound(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = Rng::seeded(seed);
            for _ in 0..50 {
                prop_assert!(rng.below(bound) < bound);
            }
        }

        #[test]
        fn range_inclusive_bounds(seed in any::<u64>(), lo in -1000i64..1000, span in 0i64..1000) {
            let mut rng = Rng::seeded(seed);
            let hi = lo + span;
            for _ in 0..20 {
                let x = rng.range_inclusive(lo, hi);
                prop_assert!(x >= lo && x <= hi);
            }
        }
    }
}
