//! IPv4 CIDR arithmetic.
//!
//! Address-space analysis (§4, Appendix C) joins LACNIC delegation files
//! against prefix-to-AS snapshots; both sides are streams of IPv4 CIDR
//! blocks. [`Ipv4Net`] provides canonicalised prefixes with containment,
//! overlap, and subdivision operations; the companion [`crate::PrefixTrie`]
//! gives longest-prefix matching.

use crate::error::{Error, Result};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix, canonicalised so host bits are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Net {
    addr: u32,
    len: u8,
}

impl Ipv4Net {
    /// Construct from a network address and prefix length, rejecting
    /// lengths > 32 and non-canonical addresses (host bits set).
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self> {
        if len > 32 {
            return Err(Error::invalid("prefix length must be <= 32"));
        }
        let raw = u32::from(addr);
        let net = Ipv4Net {
            addr: raw & Self::netmask_u32(len),
            len,
        };
        if net.addr != raw {
            return Err(Error::invalid("prefix has host bits set"));
        }
        Ok(net)
    }

    /// Construct, silently zeroing any host bits. Panics if `len > 32`.
    pub fn truncating(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Ipv4Net {
            addr: u32::from(addr) & Self::netmask_u32(len),
            len,
        }
    }

    const fn netmask_u32(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The network address.
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The network address as a raw `u32` (host byte order).
    pub const fn network_u32(self) -> u32 {
        self.addr
    }

    /// Prefix length — CIDR bits, not a container size.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the default route `0.0.0.0/0`.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered (2^(32-len)); `/0` yields 2^32.
    pub const fn size(self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The netmask.
    pub fn netmask(self) -> Ipv4Addr {
        Ipv4Addr::from(Self::netmask_u32(self.len))
    }

    /// Last address in the block.
    pub fn broadcast(self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr | !Self::netmask_u32(self.len))
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::netmask_u32(self.len) == self.addr
    }

    /// Whether `other` is fully contained in (or equal to) this prefix.
    pub fn covers(self, other: Ipv4Net) -> bool {
        self.len <= other.len && (other.addr & Self::netmask_u32(self.len)) == self.addr
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(self, other: Ipv4Net) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Split into the two halves one bit longer. `None` for /32.
    pub fn halves(self) -> Option<(Ipv4Net, Ipv4Net)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let low = Ipv4Net {
            addr: self.addr,
            len,
        };
        let high = Ipv4Net {
            addr: self.addr | (1u32 << (32 - len)),
            len,
        };
        Some((low, high))
    }

    /// Enumerate the `2^(new_len - len)` subnets of length `new_len`.
    /// Returns an error if `new_len` is shorter than `len` or > 32, or if
    /// the expansion would exceed 2^16 subnets (a guard against runaway
    /// enumeration in analysis code).
    pub fn subnets(self, new_len: u8) -> Result<Vec<Ipv4Net>> {
        if new_len < self.len || new_len > 32 {
            return Err(Error::invalid("subnet length must be in len..=32"));
        }
        let bits = new_len - self.len;
        if bits > 16 {
            return Err(Error::invalid("refusing to enumerate > 65536 subnets"));
        }
        let count = 1u32 << bits;
        let step = 1u64 << (32 - new_len);
        Ok((0..count)
            .map(|i| Ipv4Net {
                addr: self.addr + (i as u64 * step) as u32,
                len: new_len,
            })
            .collect())
    }

    /// The immediate supernet (one bit shorter). `None` for /0.
    pub fn supernet(self) -> Option<Ipv4Net> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Ipv4Net {
            addr: self.addr & Self::netmask_u32(len),
            len,
        })
    }

    /// The `i`-th bit of the network address, MSB-first (bit 0 is the top
    /// bit). Used by the trie.
    pub(crate) const fn bit(self, i: u8) -> bool {
        (self.addr >> (31 - i)) & 1 == 1
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Ipv4Net {
    type Err = Error;

    /// Parses `a.b.c.d/len`. Host bits must be zero.
    fn from_str(s: &str) -> Result<Self> {
        let Some((addr, len)) = s.split_once('/') else {
            return Err(Error::parse("CIDR prefix (a.b.c.d/len)", s));
        };
        let addr: Ipv4Addr = addr.parse().map_err(|_| Error::parse("IPv4 address", s))?;
        let len: u8 = len.parse().map_err(|_| Error::parse("prefix length", s))?;
        Ipv4Net::new(addr, len).map_err(|_| Error::parse("canonical CIDR prefix", s))
    }
}

impl TryFrom<String> for Ipv4Net {
    type Error = Error;
    fn try_from(s: String) -> Result<Self> {
        s.parse()
    }
}

impl From<Ipv4Net> for String {
    fn from(n: Ipv4Net) -> String {
        n.to_string()
    }
}

/// Parse a prefix literal; panics on failure. For tests and static tables.
pub fn net(s: &str) -> Ipv4Net {
    s.parse().expect("invalid prefix literal")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_display_roundtrip() {
        let n = net("186.24.0.0/17");
        assert_eq!(n.to_string(), "186.24.0.0/17");
        assert_eq!(n.len(), 17);
        assert_eq!(n.size(), 1 << 15);
    }

    #[test]
    fn rejects_host_bits() {
        assert!("186.24.0.1/17".parse::<Ipv4Net>().is_err());
        assert!(Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 1), 24).is_err());
        assert_eq!(
            Ipv4Net::truncating(Ipv4Addr::new(10, 0, 0, 1), 24).to_string(),
            "10.0.0.0/24"
        );
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
    }

    #[test]
    fn default_route() {
        let d = net("0.0.0.0/0");
        assert!(d.is_default());
        assert_eq!(d.size(), 1u64 << 32);
        assert!(d.contains(Ipv4Addr::new(200, 44, 32, 12)));
        assert!(d.covers(net("186.24.0.0/17")));
        assert_eq!(d.supernet(), None);
    }

    #[test]
    fn containment() {
        let wide = net("186.24.0.0/16");
        let narrow = net("186.24.128.0/17");
        assert!(wide.covers(narrow));
        assert!(!narrow.covers(wide));
        assert!(wide.overlaps(narrow));
        assert!(narrow.overlaps(wide));
        assert!(!narrow.overlaps(net("186.25.0.0/16")));
        assert!(wide.contains(Ipv4Addr::new(186, 24, 200, 1)));
        assert!(!wide.contains(Ipv4Addr::new(186, 25, 0, 1)));
    }

    #[test]
    fn halves_and_supernet() {
        let n = net("200.35.64.0/18");
        let (lo, hi) = n.halves().unwrap();
        assert_eq!(lo.to_string(), "200.35.64.0/19");
        assert_eq!(hi.to_string(), "200.35.96.0/19");
        assert_eq!(lo.supernet().unwrap(), n);
        assert_eq!(hi.supernet().unwrap(), n);
        assert!(net("1.2.3.4/32").halves().is_none());
    }

    #[test]
    fn subnet_enumeration() {
        let n = net("186.24.0.0/22");
        let subs = n.subnets(24).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "186.24.0.0/24");
        assert_eq!(subs[3].to_string(), "186.24.3.0/24");
        assert!(n.subnets(21).is_err());
        assert!(
            net("0.0.0.0/0").subnets(32).is_err(),
            "guard against huge fanout"
        );
        assert_eq!(n.subnets(22).unwrap(), vec![n]);
    }

    #[test]
    fn broadcast_and_netmask() {
        let n = net("186.24.128.0/17");
        assert_eq!(n.netmask(), Ipv4Addr::new(255, 255, 128, 0));
        assert_eq!(n.broadcast(), Ipv4Addr::new(186, 24, 255, 255));
    }

    #[test]
    fn bit_extraction_msb_first() {
        let n = net("128.0.0.0/1");
        assert!(n.bit(0));
        let n = net("64.0.0.0/2");
        assert!(!n.bit(0));
        assert!(n.bit(1));
    }

    proptest! {
        #[test]
        fn roundtrip_any_canonical(addr in any::<u32>(), len in 0u8..=32) {
            let n = Ipv4Net::truncating(Ipv4Addr::from(addr), len);
            let back: Ipv4Net = n.to_string().parse().unwrap();
            prop_assert_eq!(n, back);
        }

        #[test]
        fn covers_is_reflexive_and_antisymmetric(addr in any::<u32>(), len in 0u8..=32,
                                                 addr2 in any::<u32>(), len2 in 0u8..=32) {
            let a = Ipv4Net::truncating(Ipv4Addr::from(addr), len);
            let b = Ipv4Net::truncating(Ipv4Addr::from(addr2), len2);
            prop_assert!(a.covers(a));
            if a.covers(b) && b.covers(a) {
                prop_assert_eq!(a, b);
            }
        }

        #[test]
        fn halves_partition_parent(addr in any::<u32>(), len in 0u8..=31, probe in any::<u32>()) {
            let n = Ipv4Net::truncating(Ipv4Addr::from(addr), len);
            let (lo, hi) = n.halves().unwrap();
            prop_assert_eq!(lo.size() + hi.size(), n.size());
            prop_assert!(n.covers(lo) && n.covers(hi));
            prop_assert!(!lo.overlaps(hi));
            let ip = Ipv4Addr::from(probe);
            if n.contains(ip) {
                prop_assert!(lo.contains(ip) ^ hi.contains(ip));
            }
        }

        #[test]
        fn broadcast_minus_network_is_size(addr in any::<u32>(), len in 1u8..=32) {
            let n = Ipv4Net::truncating(Ipv4Addr::from(addr), len);
            let span = u32::from(n.broadcast()) as u64 - n.network_u32() as u64 + 1;
            prop_assert_eq!(span, n.size());
        }
    }
}
