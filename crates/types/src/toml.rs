//! Minimal self-contained TOML support.
//!
//! The scenario sidecars (`scenarios/*.toml`) are TOML because the format
//! reads well for hand-edited storyline descriptions, but the workspace
//! builds with no external dependencies — so this module parses a strict
//! TOML subset into the existing [`Json`] value tree, and everything
//! downstream (validation, fingerprinting) reuses the `json` machinery.
//!
//! Supported grammar:
//!
//! - `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`)
//! - `[table]` and `[table.subtable]` headers (dotted paths)
//! - `[[array-of-tables]]` headers
//! - values: basic strings with the common escapes, integers, floats,
//!   booleans, and (nested) inline arrays with optional trailing commas
//! - `#` comments, blank lines, and end-of-line comments after values
//!
//! Deliberately rejected: dotted keys in `key = value` position, inline
//! tables, multi-line strings, and datetimes (dates travel as strings in
//! the scenario schema). Every rejection is a typed [`Error`], never a
//! panic — malformed sidecars surface as diagnostics, not crashes.

use crate::error::{Error, Result};
use crate::json::Json;

/// Parse TOML text into a [`Json::Obj`] tree. `[table]` headers become
/// nested objects, `[[name]]` headers become arrays of objects, and
/// duplicate definitions of one key are an error.
pub fn parse(text: &str) -> Result<Json> {
    let mut root = Json::Obj(Vec::new());
    // Path of table names from the most recent header; `key = value`
    // lines land under it. An empty path targets the root table.
    let mut current: Vec<String> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let raw = lines[i];
        i += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| Error::parse("TOML array-of-tables header [[name]]", raw))?;
            current = split_path(name, raw)?;
            let (parent, leaf) = current.split_at(current.len() - 1);
            let table = navigate(&mut root, parent, raw)?;
            let entry = table_entry(table, &leaf[0]);
            match entry {
                Json::Null => *entry = Json::Arr(vec![Json::Obj(Vec::new())]),
                Json::Arr(items) => items.push(Json::Obj(Vec::new())),
                _ => return Err(Error::parse("TOML array-of-tables (key already used)", raw)),
            }
        } else if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .ok_or_else(|| Error::parse("TOML table header [name]", raw))?;
            current = split_path(name, raw)?;
            // Materialise the table now so empty tables still exist.
            navigate(&mut root, &current, raw)?;
        } else {
            let (key, rest) = line
                .split_once('=')
                .ok_or_else(|| Error::parse("TOML `key = value` line", raw))?;
            let key = key.trim();
            if !is_bare_key(key) {
                Err(Error::parse("TOML bare key ([A-Za-z0-9_-]+)", raw))?;
            }
            // Values may span lines (multi-line arrays), so the cursor
            // sees the rest of the document; the line loop then resumes
            // after however many newlines the value consumed.
            let mut tail = rest.trim_start().to_owned();
            for extra in &lines[i..] {
                tail.push('\n');
                tail.push_str(extra);
            }
            let mut p = Cursor {
                bytes: tail.as_bytes(),
                pos: 0,
            };
            let value = p.value(raw)?;
            p.expect_line_end(raw)?;
            i += p.bytes[..p.pos].iter().filter(|&&b| b == b'\n').count();
            let path = current.clone();
            let table = navigate(&mut root, &path, raw)?;
            let slot = table_entry(table, key);
            if !matches!(slot, Json::Null) {
                return Err(Error::parse("TOML key defined once", raw));
            }
            *slot = value;
        }
    }
    Ok(root)
}

/// Split a (possibly dotted) table-header path into segments, validating
/// each segment as a bare key.
fn split_path(name: &str, raw: &str) -> Result<Vec<String>> {
    let segments: Vec<String> = name.split('.').map(|s| s.trim().to_owned()).collect();
    for segment in &segments {
        if !is_bare_key(segment) {
            return Err(Error::parse("TOML table path of bare keys", raw));
        }
    }
    Ok(segments)
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// Walk (creating as needed) to the table at `path`. A `[[name]]` array
/// along the way targets its most recent element, matching TOML
/// semantics for subtables of array-of-tables entries.
fn navigate<'a>(root: &'a mut Json, path: &[String], raw: &str) -> Result<&'a mut Json> {
    let mut node = root;
    for segment in path {
        let entry = table_entry(node, segment);
        if matches!(entry, Json::Null) {
            *entry = Json::Obj(Vec::new());
        }
        node = match entry {
            Json::Obj(_) => entry,
            Json::Arr(items) => items
                .last_mut()
                .ok_or_else(|| Error::parse("non-empty TOML array-of-tables", raw))?,
            _ => return Err(Error::parse("TOML table (key already holds a value)", raw)),
        };
    }
    Ok(node)
}

/// The mutable slot for `key` inside an object, inserting `Null` when
/// absent (the caller decides what the slot becomes).
fn table_entry<'a>(table: &'a mut Json, key: &str) -> &'a mut Json {
    let Json::Obj(pairs) = table else {
        unreachable!("navigate only returns objects");
    };
    if !pairs.iter().any(|(k, _)| k == key) {
        pairs.push((key.to_owned(), Json::Null));
    }
    let idx = pairs
        .iter()
        .position(|(k, _)| k == key)
        .expect("just inserted");
    &mut pairs[idx].1
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Inside an array: whitespace, newlines, and comments are all
    /// insignificant (TOML multi-line arrays).
    fn skip_ws_multiline(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => self.pos += 1,
                Some(b'#') => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a top-level value: only whitespace or a `#` comment may
    /// remain on its line.
    fn expect_line_end(&mut self, raw: &str) -> Result<()> {
        self.skip_ws();
        match self.peek() {
            None | Some(b'#') | Some(b'\n') | Some(b'\r') => Ok(()),
            Some(_) => Err(Error::parse("end of TOML value", raw)),
        }
    }

    fn value(&mut self, raw: &str) -> Result<Json> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string(raw),
            Some(b'[') => self.array(raw),
            Some(b't') | Some(b'f') => self.boolean(raw),
            Some(b) if b == b'+' || b == b'-' || b.is_ascii_digit() => self.number(raw),
            _ => Err(Error::parse("TOML value", raw)),
        }
    }

    fn string(&mut self, raw: &str) -> Result<Json> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(Error::parse("closed TOML string", raw)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(Json::Str(out));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::parse("TOML escape", raw))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| Error::parse("TOML \\uXXXX escape", raw))?;
                            self.pos += 4;
                            out.push(hex);
                        }
                        _ => return Err(Error::parse("known TOML escape", raw)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 is copied through by char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse("UTF-8 TOML string", raw))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    self.pos += c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn array(&mut self, raw: &str) -> Result<Json> {
        self.pos += 1; // opening bracket
        let mut items = Vec::new();
        loop {
            self.skip_ws_multiline();
            match self.peek() {
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                None => return Err(Error::parse("closed TOML array", raw)),
                _ => {}
            }
            items.push(self.value(raw)?);
            self.skip_ws_multiline();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {}
                _ => return Err(Error::parse("`,` or `]` in TOML array", raw)),
            }
        }
    }

    fn boolean(&mut self, raw: &str) -> Result<Json> {
        for (literal, value) in [("true", true), ("false", false)] {
            if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
                self.pos += literal.len();
                return Ok(Json::Bool(value));
            }
        }
        Err(Error::parse("TOML boolean", raw))
    }

    fn number(&mut self, raw: &str) -> Result<Json> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E' | b'_') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("TOML number", raw))?
            .chars()
            .filter(|&c| c != '_')
            .collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| Error::parse("TOML number", raw))
    }
}

/// Escape a string for a TOML basic string literal — the writer half the
/// scenario serialiser uses; `parse` reads its output back exactly.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_tables_and_arrays_parse() {
        let doc = parse(
            "# comment\n\
             name = \"cable-cut\"  # trailing comment\n\
             factor = 0.5\n\
             count = 3\n\
             active = true\n\
             \n\
             [meta]\n\
             note = \"a \\\"quoted\\\" word\"\n\
             \n\
             [[events]]\n\
             day = \"2019-03-07\"\n\
             depth = 0.9\n\
             [[events]]\n\
             day = \"2019-03-25\"\n\
             depth = 0.75\n\
             pair = [[1980, 7800.0], [2024, 3900]]\n",
        )
        .unwrap();
        assert_eq!(doc.field::<String>("name").unwrap(), "cable-cut");
        assert_eq!(doc.get("factor").unwrap().as_f64(), Some(0.5));
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(doc.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get("meta").unwrap().get("note").unwrap().as_str(),
            Some("a \"quoted\" word")
        );
        let events = doc.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("depth").unwrap().as_f64(), Some(0.9));
        let pair = events[1].get("pair").unwrap().as_array().unwrap();
        assert_eq!(pair[0].as_array().unwrap()[1].as_f64(), Some(7800.0));
    }

    #[test]
    fn multi_line_arrays_span_lines_with_comments() {
        let doc = parse(
            "events = [\n\
             \x20   [\"2019-03-07\", \"2019-03-14\", 0.9], # Guri failure\n\
             \n\
             \x20   [\"2019-03-25\", \"2019-03-28\", 0.75],\n\
             ]\n\
             after = true\n",
        )
        .unwrap();
        let events = doc.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].as_array().unwrap()[2].as_f64(), Some(0.75));
        assert_eq!(doc.get("after").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn dotted_headers_nest_and_trailing_commas_are_fine() {
        let doc = parse("[a.b]\nx = [1, 2, 3,]\n").unwrap();
        let x = doc.get("a").unwrap().get("b").unwrap().get("x").unwrap();
        assert_eq!(x.as_array().unwrap().len(), 3);
    }

    #[test]
    fn negative_numbers_underscores_and_unicode_escapes() {
        let doc = parse("t = -12.5\nbig = 1_000\nu = \"\\u00e9\"\n").unwrap();
        assert_eq!(doc.get("t").unwrap().as_f64(), Some(-12.5));
        assert_eq!(doc.get("big").unwrap().as_f64(), Some(1000.0));
        assert_eq!(doc.get("u").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn malformed_input_is_a_typed_error_not_a_panic() {
        for bad in [
            "novalue\n",
            "key = \n",
            "key = \"unterminated\n",
            "key = [1, 2\n",
            "key = 1 trailing\n",
            "[unclosed\n",
            "[[t]\n",
            "a.b = 1\n",
            "key = nope\n",
            "dup = 1\ndup = 2\n",
            "x = 1\n[x]\ny = 2\n",
            "key = \"bad \\q escape\"\n",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        for s in ["plain", "with \"quotes\"", "tab\tnewline\n", "unicode é☃"] {
            let doc = parse(&format!("v = {}\n", escape(s))).unwrap();
            assert_eq!(doc.get("v").unwrap().as_str(), Some(s), "{s:?}");
        }
    }
}
