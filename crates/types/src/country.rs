//! ISO 3166-1 alpha-2 country codes and the LACNIC service-region registry.
//!
//! The study contextualises every Venezuelan signal against the rest of the
//! LACNIC region, with a recurring set of "comparable peers" (Argentina,
//! Brazil, Chile, Colombia, Mexico, Uruguay — Appendix B). This module
//! carries the static metadata those comparisons need: names, capital
//! coordinates (for the geo/RTT models), subregion, and 2023 population.

use crate::error::{Error, Result};
use crate::geo::GeoPoint;
use std::fmt;
use std::str::FromStr;

/// A two-letter ISO 3166-1 alpha-2 country code, stored as two ASCII
/// uppercase bytes so it is `Copy` and hashes cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Construct from a 2-byte ASCII-alphabetic code; lowercase accepted.
    pub fn new(code: &str) -> Result<Self> {
        let bytes = code.as_bytes();
        if bytes.len() != 2 || !bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            return Err(Error::parse("two-letter country code", code));
        }
        Ok(CountryCode([
            bytes[0].to_ascii_uppercase(),
            bytes[1].to_ascii_uppercase(),
        ]))
    }

    /// Infallible constructor for static literals; panics on invalid input.
    pub fn of(code: &str) -> Self {
        Self::new(code).expect("invalid country code literal")
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        // SAFETY-free: bytes are validated ASCII on construction.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CountryCode {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        Self::new(s)
    }
}

impl TryFrom<String> for CountryCode {
    type Error = Error;
    fn try_from(s: String) -> Result<Self> {
        Self::new(&s)
    }
}

impl From<CountryCode> for String {
    fn from(c: CountryCode) -> String {
        c.as_str().to_owned()
    }
}

/// Subregions of the LACNIC service region, used when the growth models
/// need coarse geography (e.g. cable-route plausibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subregion {
    /// Continental South America.
    SouthAmerica,
    /// Central America including Mexico.
    CentralAmerica,
    /// Caribbean islands.
    Caribbean,
}

/// Static metadata for one economy in the LACNIC region.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryInfo {
    /// ISO alpha-2 code.
    pub code: CountryCode,
    /// English short name.
    pub name: &'static str,
    /// Capital (or main population centre hosting infrastructure).
    pub capital: &'static str,
    /// Coordinates of the capital, used by the geo/RTT models.
    pub location: GeoPoint,
    /// Subregion.
    pub subregion: Subregion,
    /// Approximate 2023 population, millions.
    pub population_millions: f64,
}

macro_rules! country_table {
    ($( $code:literal, $name:literal, $capital:literal, $lat:literal, $lon:literal, $sub:ident, $pop:literal; )*) => {
        /// Every economy in the LACNIC service region tracked by the study.
        pub const LACNIC_REGION: &[CountryInfo] = &[
            $( CountryInfo {
                code: CountryCode([$code.as_bytes()[0], $code.as_bytes()[1]]),
                name: $name,
                capital: $capital,
                location: GeoPoint::new($lat, $lon),
                subregion: Subregion::$sub,
                population_millions: $pop,
            }, )*
        ];
    };
}

country_table! {
    "AR", "Argentina",           "Buenos Aires",   -34.60, -58.38, SouthAmerica,   46.2;
    "BO", "Bolivia",             "La Paz",         -16.50, -68.15, SouthAmerica,   12.2;
    "BQ", "Bonaire",             "Kralendijk",      12.15, -68.27, Caribbean,       0.02;
    "BR", "Brazil",              "Sao Paulo",      -23.55, -46.63, SouthAmerica,  214.0;
    "BZ", "Belize",              "Belmopan",        17.25, -88.77, CentralAmerica,  0.4;
    "CL", "Chile",               "Santiago",       -33.45, -70.67, SouthAmerica,   19.5;
    "CO", "Colombia",            "Bogota",           4.71, -74.07, SouthAmerica,   51.9;
    "CR", "Costa Rica",          "San Jose",         9.93, -84.08, CentralAmerica,  5.2;
    "CU", "Cuba",                "Havana",          23.11, -82.37, Caribbean,      11.2;
    "CW", "Curacao",             "Willemstad",      12.11, -68.93, Caribbean,       0.19;
    "DO", "Dominican Republic",  "Santo Domingo",   18.49, -69.93, Caribbean,      11.2;
    "EC", "Ecuador",             "Quito",           -0.18, -78.47, SouthAmerica,   18.0;
    "GF", "French Guiana",       "Cayenne",          4.92, -52.33, SouthAmerica,    0.3;
    "GT", "Guatemala",           "Guatemala City",  14.63, -90.51, CentralAmerica, 17.6;
    "GY", "Guyana",              "Georgetown",       6.80, -58.16, SouthAmerica,    0.8;
    "HN", "Honduras",            "Tegucigalpa",     14.07, -87.19, CentralAmerica, 10.4;
    "HT", "Haiti",               "Port-au-Prince",  18.54, -72.34, Caribbean,      11.6;
    "MX", "Mexico",              "Mexico City",     19.43, -99.13, CentralAmerica,128.5;
    "NI", "Nicaragua",           "Managua",         12.11, -86.24, CentralAmerica,  6.9;
    "PA", "Panama",              "Panama City",      8.98, -79.52, CentralAmerica,  4.4;
    "PE", "Peru",                "Lima",           -12.05, -77.04, SouthAmerica,   34.0;
    "PY", "Paraguay",            "Asuncion",       -25.26, -57.58, SouthAmerica,    6.8;
    "SR", "Suriname",            "Paramaribo",       5.85, -55.20, SouthAmerica,    0.6;
    "SV", "El Salvador",         "San Salvador",    13.69, -89.22, CentralAmerica,  6.3;
    "SX", "Sint Maarten",        "Philipsburg",     18.03, -63.05, Caribbean,       0.04;
    "TT", "Trinidad and Tobago", "Port of Spain",   10.65, -61.51, Caribbean,       1.5;
    "UY", "Uruguay",             "Montevideo",     -34.90, -56.19, SouthAmerica,    3.4;
    "VE", "Venezuela",           "Caracas",         10.48, -66.90, SouthAmerica,   28.3;
    "AW", "Aruba",               "Oranjestad",      12.52, -70.03, Caribbean,       0.11;
}

/// Venezuela.
pub const VE: CountryCode = CountryCode([b'V', b'E']);
/// Argentina.
pub const AR: CountryCode = CountryCode([b'A', b'R']);
/// Brazil.
pub const BR: CountryCode = CountryCode([b'B', b'R']);
/// Chile.
pub const CL: CountryCode = CountryCode([b'C', b'L']);
/// Colombia.
pub const CO: CountryCode = CountryCode([b'C', b'O']);
/// Mexico.
pub const MX: CountryCode = CountryCode([b'M', b'X']);
/// Uruguay.
pub const UY: CountryCode = CountryCode([b'U', b'Y']);
/// Costa Rica (the §5.1 state-incumbent counter-example).
pub const CR: CountryCode = CountryCode([b'C', b'R']);
/// Cuba (the ALBA cable's far end).
pub const CU: CountryCode = CountryCode([b'C', b'U']);
/// The United States — outside LACNIC but central to §6 and Appendix I.
pub const US: CountryCode = CountryCode([b'U', b'S']);

/// The "comparable peers" the paper highlights in vivid colours
/// (Appendix B): Argentina, Brazil, Chile, Colombia, Mexico, Uruguay.
pub const COMPARABLE_PEERS: &[CountryCode] = &[AR, BR, CL, CO, MX, UY];

/// Look up static metadata for a LACNIC-region country.
pub fn info(code: CountryCode) -> Option<&'static CountryInfo> {
    LACNIC_REGION.iter().find(|c| c.code == code)
}

/// Iterate over all LACNIC-region country codes.
pub fn lacnic_codes() -> impl Iterator<Item = CountryCode> {
    LACNIC_REGION.iter().map(|c| c.code)
}

/// Whether `code` belongs to the LACNIC service region.
pub fn in_lacnic(code: CountryCode) -> bool {
    info(code).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_normalises_case() {
        assert_eq!(CountryCode::new("ve").unwrap(), VE);
        assert_eq!(CountryCode::new("Ve").unwrap().as_str(), "VE");
    }

    #[test]
    fn code_rejects_bad_input() {
        assert!(CountryCode::new("V").is_err());
        assert!(CountryCode::new("VEN").is_err());
        assert!(CountryCode::new("V1").is_err());
        assert!(CountryCode::new("").is_err());
    }

    #[test]
    fn registry_has_unique_codes() {
        let mut codes: Vec<_> = lacnic_codes().collect();
        let n = codes.len();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), n, "duplicate country in registry");
        assert!(n >= 28, "paper aggregates 28 LACNIC countries in M-Lab");
    }

    #[test]
    fn venezuela_metadata() {
        let ve = info(VE).unwrap();
        assert_eq!(ve.name, "Venezuela");
        assert_eq!(ve.capital, "Caracas");
        assert_eq!(ve.subregion, Subregion::SouthAmerica);
        assert!(ve.population_millions > 25.0);
    }

    #[test]
    fn peers_are_in_region() {
        for &peer in COMPARABLE_PEERS {
            assert!(in_lacnic(peer), "{peer} missing from registry");
        }
        assert!(!in_lacnic(US));
    }

    #[test]
    fn capitals_are_plausible_coordinates() {
        for c in LACNIC_REGION {
            assert!(c.location.lat_deg().abs() <= 40.0, "{}", c.name);
            assert!(
                c.location.lon_deg() < -40.0 && c.location.lon_deg() > -120.0,
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn json_roundtrip() {
        let json = crate::json::to_string(&VE);
        assert_eq!(json, "\"VE\"");
        let back: CountryCode = crate::json::from_str(&json).unwrap();
        assert_eq!(back, VE);
        assert!(crate::json::from_str::<CountryCode>("\"V1\"").is_err());
    }
}
