//! Civil (proleptic Gregorian) dates and compact month indices.
//!
//! Every dataset in the study is longitudinal; the unifying x-axis is the
//! *month*. [`MonthStamp`] is a single `i32` counting months since
//! 0000-01, which makes month ranges, differences, and `BTreeMap` keys
//! trivial. [`Date`] provides exact day arithmetic (via the standard
//! days-from-civil algorithm) for the few places the paper needs days —
//! e.g. "first five days of each month" Atlas sampling and ready-for-service
//! dates of submarine cables.

use crate::error::{Error, Result};
use std::fmt;
use std::str::FromStr;

/// A civil calendar date in the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

/// Days in each month of a non-leap year.
const MONTH_LEN: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Whether `year` is a leap year in the Gregorian calendar.
pub const fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Number of days in `month` of `year` (1-based month).
pub const fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        MONTH_LEN[(month - 1) as usize]
    }
}

impl Date {
    /// Construct a date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self> {
        if month == 0 || month > 12 {
            return Err(Error::invalid("month must be in 1..=12"));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(Error::invalid("day out of range for month"));
        }
        Ok(Date { year, month, day })
    }

    /// Construct without validation; panics on invalid input. Intended for
    /// literals in tests and generators where the values are static.
    pub fn ymd(year: i32, month: u8, day: u8) -> Self {
        Self::new(year, month, day).expect("invalid date literal")
    }

    /// Year component.
    pub const fn year(self) -> i32 {
        self.year
    }

    /// Month component (1-based).
    pub const fn month(self) -> u8 {
        self.month
    }

    /// Day component (1-based).
    pub const fn day(self) -> u8 {
        self.day
    }

    /// Days since 1970-01-01 (can be negative). Standard days-from-civil
    /// algorithm (era/year-of-era decomposition), exact over the full i32
    /// year range used here.
    pub fn days_since_epoch(self) -> i64 {
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::days_since_epoch`].
    pub fn from_days_since_epoch(days: i64) -> Self {
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        let year = (y + if m <= 2 { 1 } else { 0 }) as i32;
        Date {
            year,
            month: m,
            day: d,
        }
    }

    /// The date `n` days after this one (`n` may be negative).
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_days_since_epoch(self.days_since_epoch() + n)
    }

    /// Signed number of days from `self` to `other`.
    pub fn days_until(self, other: Date) -> i64 {
        other.days_since_epoch() - self.days_since_epoch()
    }

    /// The month this date falls in.
    pub const fn month_stamp(self) -> MonthStamp {
        MonthStamp::new(self.year, self.month)
    }

    /// Day of week, 0 = Monday … 6 = Sunday (ISO).
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (ISO index 3).
        (self.days_since_epoch().rem_euclid(7) as u8 + 3) % 7
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = Error;

    /// Parses `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self> {
        let mut parts = s.splitn(3, '-');
        let (Some(y), Some(m), Some(d)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(Error::parse("date (YYYY-MM-DD)", s));
        };
        let year: i32 = y.parse().map_err(|_| Error::parse("date year", s))?;
        let month: u8 = m.parse().map_err(|_| Error::parse("date month", s))?;
        let day: u8 = d.parse().map_err(|_| Error::parse("date day", s))?;
        Date::new(year, month, day).map_err(|_| Error::parse("valid calendar date", s))
    }
}

/// A calendar month encoded as a single integer: `year * 12 + (month - 1)`.
///
/// This is the x-axis unit for every time series in the study. Supports
/// ordering, arithmetic, and iteration over inclusive ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonthStamp(i32);

impl MonthStamp {
    /// Construct from year and 1-based month. `month` must be in 1..=12;
    /// callers with untrusted input should use [`MonthStamp::try_new`].
    pub const fn new(year: i32, month: u8) -> Self {
        MonthStamp(year * 12 + month as i32 - 1)
    }

    /// Validating constructor.
    pub fn try_new(year: i32, month: u8) -> Result<Self> {
        if month == 0 || month > 12 {
            return Err(Error::invalid("month must be in 1..=12"));
        }
        Ok(Self::new(year, month))
    }

    /// The raw month index.
    pub const fn index(self) -> i32 {
        self.0
    }

    /// Rebuild from a raw index.
    pub const fn from_index(index: i32) -> Self {
        MonthStamp(index)
    }

    /// Year component.
    pub const fn year(self) -> i32 {
        self.0.div_euclid(12)
    }

    /// Month component (1-based).
    pub const fn month(self) -> u8 {
        (self.0.rem_euclid(12) + 1) as u8
    }

    /// First day of this month.
    pub fn first_day(self) -> Date {
        Date {
            year: self.year(),
            month: self.month(),
            day: 1,
        }
    }

    /// Last day of this month.
    pub fn last_day(self) -> Date {
        let y = self.year();
        let m = self.month();
        Date {
            year: y,
            month: m,
            day: days_in_month(y, m),
        }
    }

    /// The month `n` months later (`n` may be negative).
    pub const fn plus(self, n: i32) -> Self {
        MonthStamp(self.0 + n)
    }

    /// Signed number of months from `self` to `other`.
    pub const fn months_until(self, other: MonthStamp) -> i32 {
        other.0 - self.0
    }

    /// Inclusive iterator over `[self, end]`. Empty if `end < self`.
    pub fn through(self, end: MonthStamp) -> impl Iterator<Item = MonthStamp> {
        (self.0..=end.0).map(MonthStamp)
    }

    /// Fractional years since `origin` — convenient for growth-model math.
    pub fn years_since(self, origin: MonthStamp) -> f64 {
        (self.0 - origin.0) as f64 / 12.0
    }
}

impl fmt::Display for MonthStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year(), self.month())
    }
}

impl FromStr for MonthStamp {
    type Err = Error;

    /// Parses `YYYY-MM`.
    fn from_str(s: &str) -> Result<Self> {
        let Some((y, m)) = s.split_once('-') else {
            return Err(Error::parse("month (YYYY-MM)", s));
        };
        let year: i32 = y.parse().map_err(|_| Error::parse("month year", s))?;
        let month: u8 = m.parse().map_err(|_| Error::parse("month number", s))?;
        MonthStamp::try_new(year, month).map_err(|_| Error::parse("month in 1..=12", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::ymd(1970, 1, 1).days_since_epoch(), 0);
        assert_eq!(Date::from_days_since_epoch(0), Date::ymd(1970, 1, 1));
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::ymd(2000, 3, 1).days_since_epoch(), 11017);
        assert_eq!(Date::ymd(2024, 8, 4).days_since_epoch(), 19939); // SIGCOMM'24 day 1
        assert_eq!(Date::ymd(1969, 12, 31).days_since_epoch(), -1);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2024));
        assert!(!is_leap_year(2023));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2023, 2), 28);
        assert_eq!(days_in_month(2023, 12), 31);
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Date::new(2023, 2, 29).is_err());
        assert!(Date::new(2023, 13, 1).is_err());
        assert!(Date::new(2023, 0, 1).is_err());
        assert!(Date::new(2023, 6, 31).is_err());
        assert!(Date::new(2024, 2, 29).is_ok());
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(Date::ymd(1970, 1, 1).weekday(), 3); // Thursday
        assert_eq!(Date::ymd(2024, 8, 4).weekday(), 6); // Sunday
        assert_eq!(Date::ymd(2026, 7, 6).weekday(), 0); // Monday
    }

    #[test]
    fn date_parse_roundtrip() {
        let d: Date = "2013-02-28".parse().unwrap();
        assert_eq!(d, Date::ymd(2013, 2, 28));
        assert_eq!(d.to_string(), "2013-02-28");
        assert!("2013-2".parse::<Date>().is_err());
        assert!("2013-02-30".parse::<Date>().is_err());
    }

    #[test]
    fn month_stamp_components() {
        let m = MonthStamp::new(2013, 1);
        assert_eq!(m.year(), 2013);
        assert_eq!(m.month(), 1);
        assert_eq!(m.plus(11).month(), 12);
        assert_eq!(m.plus(12), MonthStamp::new(2014, 1));
        assert_eq!(m.plus(-1), MonthStamp::new(2012, 12));
    }

    #[test]
    fn month_stamp_range_iteration() {
        let months: Vec<_> = MonthStamp::new(2023, 11)
            .through(MonthStamp::new(2024, 2))
            .collect();
        assert_eq!(months.len(), 4);
        assert_eq!(months[0].to_string(), "2023-11");
        assert_eq!(months[3].to_string(), "2024-02");
        // Empty when reversed.
        assert_eq!(
            MonthStamp::new(2024, 2)
                .through(MonthStamp::new(2023, 11))
                .count(),
            0
        );
    }

    #[test]
    fn month_first_and_last_day() {
        let m = MonthStamp::new(2024, 2);
        assert_eq!(m.first_day(), Date::ymd(2024, 2, 1));
        assert_eq!(m.last_day(), Date::ymd(2024, 2, 29));
    }

    #[test]
    fn month_parse_roundtrip() {
        let m: MonthStamp = "2018-04".parse().unwrap();
        assert_eq!(m, MonthStamp::new(2018, 4));
        assert!("2018-13".parse::<MonthStamp>().is_err());
        assert!("2018".parse::<MonthStamp>().is_err());
    }

    #[test]
    fn years_since_fractional() {
        let origin = MonthStamp::new(2013, 1);
        assert_eq!(MonthStamp::new(2014, 1).years_since(origin), 1.0);
        assert_eq!(MonthStamp::new(2013, 7).years_since(origin), 0.5);
    }

    proptest! {
        #[test]
        fn civil_days_roundtrip(days in -800_000i64..800_000) {
            let d = Date::from_days_since_epoch(days);
            prop_assert_eq!(d.days_since_epoch(), days);
        }

        #[test]
        fn date_roundtrip(y in 1900i32..2100, m in 1u8..=12, d in 1u8..=28) {
            let date = Date::new(y, m, d).unwrap();
            let back = Date::from_days_since_epoch(date.days_since_epoch());
            prop_assert_eq!(date, back);
        }

        #[test]
        fn successive_days_differ_by_one(days in -800_000i64..800_000) {
            let d0 = Date::from_days_since_epoch(days);
            let d1 = Date::from_days_since_epoch(days + 1);
            prop_assert_eq!(d0.days_until(d1), 1);
            prop_assert!(d1 > d0);
        }

        #[test]
        fn month_stamp_index_roundtrip(y in -5000i32..5000, m in 1u8..=12) {
            let ms = MonthStamp::new(y, m);
            prop_assert_eq!(MonthStamp::from_index(ms.index()), ms);
            prop_assert_eq!(ms.year(), y);
            prop_assert_eq!(ms.month(), m);
        }
    }
}
