//! Binary radix trie for longest-prefix matching.
//!
//! Prefix-to-AS joins (§4, Appendix C: "which AS originates this address?")
//! and delegation-file attribution need longest-prefix lookups over tens of
//! thousands of prefixes per monthly snapshot. A path-compressed trie would
//! be faster still, but a plain binary trie keyed on prefix bits is simple,
//! predictable, and — as the `lacnet-bench` ablation shows — already orders
//! of magnitude faster than a linear scan.

use crate::net::Ipv4Net;
use std::net::Ipv4Addr;

/// A binary trie mapping IPv4 prefixes to values, answering exact,
/// longest-prefix, and covering queries.
#[derive(Debug, Clone)]
pub struct PrefixTrie<V> {
    root: Node<V>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

impl<V> Default for PrefixTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PrefixTrie<V> {
    /// Create an empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Net, value: V) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Remove `prefix`, returning its value if present. Does not prune
    /// empty interior nodes (snapshot tries are built once and dropped).
    pub fn remove(&mut self, prefix: Ipv4Net) -> Option<V> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref_mut()?;
        }
        let old = node.value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exact-match lookup.
    pub fn get(&self, prefix: Ipv4Net) -> Option<&V> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let b = prefix.bit(i) as usize;
            node = node.children[b].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match for a single address: the most specific stored
    /// prefix containing `ip`, with its value.
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<(Ipv4Net, &V)> {
        let addr = u32::from(ip);
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let b = ((addr >> (31 - i)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Ipv4Net::truncating(ip, len), v))
    }

    /// All stored prefixes covering `ip`, least-specific first.
    pub fn matches(&self, ip: Ipv4Addr) -> Vec<(Ipv4Net, &V)> {
        let addr = u32::from(ip);
        let mut out = Vec::new();
        let mut node = &self.root;
        if let Some(v) = node.value.as_ref() {
            out.push((Ipv4Net::truncating(ip, 0), v));
        }
        for i in 0..32u8 {
            let b = ((addr >> (31 - i)) & 1) as usize;
            match node.children[b].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        out.push((Ipv4Net::truncating(ip, i + 1), v));
                    }
                }
                None => break,
            }
        }
        out
    }

    /// Iterate over every `(prefix, value)` pair in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Net, &V)> {
        let mut out = Vec::with_capacity(self.len);
        Self::walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }

    fn walk<'a>(node: &'a Node<V>, addr: u32, depth: u8, out: &mut Vec<(Ipv4Net, &'a V)>) {
        if let Some(v) = node.value.as_ref() {
            out.push((Ipv4Net::truncating(Ipv4Addr::from(addr), depth), v));
        }
        if depth == 32 {
            return;
        }
        if let Some(child) = node.children[0].as_deref() {
            Self::walk(child, addr, depth + 1, out);
        }
        if let Some(child) = node.children[1].as_deref() {
            Self::walk(child, addr | (1u32 << (31 - depth)), depth + 1, out);
        }
    }
}

impl<V> FromIterator<(Ipv4Net, V)> for PrefixTrie<V> {
    fn from_iter<T: IntoIterator<Item = (Ipv4Net, V)>>(iter: T) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::net;
    use proptest::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(net("186.24.0.0/17"), 8048u32), None);
        assert_eq!(t.insert(net("186.24.0.0/17"), 6306), Some(8048));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(net("186.24.0.0/17")), Some(&6306));
        assert_eq!(t.get(net("186.24.0.0/16")), None);
        assert_eq!(t.remove(net("186.24.0.0/17")), Some(6306));
        assert!(t.is_empty());
        assert_eq!(t.remove(net("186.24.0.0/17")), None);
    }

    #[test]
    fn longest_match_prefers_specific() {
        let mut t = PrefixTrie::new();
        t.insert(net("186.24.0.0/16"), "wide");
        t.insert(net("186.24.128.0/17"), "narrow");
        let ip = Ipv4Addr::new(186, 24, 200, 1);
        let (p, v) = t.longest_match(ip).unwrap();
        assert_eq!(p, net("186.24.128.0/17"));
        assert_eq!(*v, "narrow");
        let ip = Ipv4Addr::new(186, 24, 10, 1);
        let (p, v) = t.longest_match(ip).unwrap();
        assert_eq!(p, net("186.24.0.0/16"));
        assert_eq!(*v, "wide");
        assert!(t.longest_match(Ipv4Addr::new(10, 0, 0, 1)).is_none());
    }

    #[test]
    fn default_route_always_matches() {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), "default");
        let (p, v) = t.longest_match(Ipv4Addr::new(200, 1, 2, 3)).unwrap();
        assert!(p.is_default());
        assert_eq!(*v, "default");
    }

    #[test]
    fn matches_returns_chain() {
        let mut t = PrefixTrie::new();
        t.insert(net("0.0.0.0/0"), 0);
        t.insert(net("186.0.0.0/8"), 8);
        t.insert(net("186.24.0.0/16"), 16);
        t.insert(net("186.24.0.0/24"), 24);
        let chain = t.matches(Ipv4Addr::new(186, 24, 0, 9));
        let lens: Vec<u8> = chain.iter().map(|(p, _)| p.len()).collect();
        assert_eq!(lens, vec![0, 8, 16, 24]);
    }

    #[test]
    fn iter_in_address_order() {
        let mut t = PrefixTrie::new();
        t.insert(net("200.35.64.0/18"), 3);
        t.insert(net("10.0.0.0/8"), 1);
        t.insert(net("186.24.0.0/17"), 2);
        let prefixes: Vec<_> = t.iter().map(|(p, _)| p).collect();
        assert_eq!(
            prefixes,
            vec![
                net("10.0.0.0/8"),
                net("186.24.0.0/17"),
                net("200.35.64.0/18")
            ]
        );
    }

    #[test]
    fn slash32_entries() {
        let mut t = PrefixTrie::new();
        t.insert(net("8.8.8.8/32"), "gpdns");
        let (p, v) = t.longest_match(Ipv4Addr::new(8, 8, 8, 8)).unwrap();
        assert_eq!(p, net("8.8.8.8/32"));
        assert_eq!(*v, "gpdns");
        assert!(t.longest_match(Ipv4Addr::new(8, 8, 8, 9)).is_none());
    }

    proptest! {
        #[test]
        fn trie_agrees_with_linear_scan(
            entries in proptest::collection::vec((any::<u32>(), 8u8..=28), 1..60),
            probes in proptest::collection::vec(any::<u32>(), 1..40),
        ) {
            let nets: Vec<(Ipv4Net, usize)> = entries
                .iter()
                .enumerate()
                .map(|(i, &(a, l))| (Ipv4Net::truncating(Ipv4Addr::from(a), l), i))
                .collect();
            // Deduplicate: trie keeps the last insert per prefix, so build
            // the reference map the same way.
            let mut trie = PrefixTrie::new();
            let mut reference: Vec<(Ipv4Net, usize)> = Vec::new();
            for &(p, i) in &nets {
                trie.insert(p, i);
                reference.retain(|(q, _)| *q != p);
                reference.push((p, i));
            }
            for &probe in &probes {
                let ip = Ipv4Addr::from(probe);
                let expect = reference
                    .iter()
                    .filter(|(p, _)| p.contains(ip))
                    .max_by_key(|(p, _)| p.len())
                    .map(|&(p, i)| (p, i));
                let got = trie.longest_match(ip).map(|(p, &i)| (p, i));
                prop_assert_eq!(got, expect);
            }
        }

        #[test]
        fn len_tracks_distinct_prefixes(
            entries in proptest::collection::vec((any::<u32>(), 0u8..=32), 0..80),
        ) {
            let mut trie = PrefixTrie::new();
            let mut set = std::collections::BTreeSet::new();
            for &(a, l) in &entries {
                let p = Ipv4Net::truncating(Ipv4Addr::from(a), l);
                trie.insert(p, ());
                set.insert(p);
            }
            prop_assert_eq!(trie.len(), set.len());
            prop_assert_eq!(trie.iter().count(), set.len());
        }
    }
}
