//! Autonomous system numbers.

use crate::error::{Error, Result};
use std::fmt;
use std::str::FromStr;

/// A BGP autonomous system number (32-bit, RFC 6793).
///
/// The study tracks a fixed cast of ASNs — Venezuela's incumbent
/// CANTV-AS8048, its competitor Telefónica de Venezuela AS6306, and the
/// transit providers that abandoned CANTV after 2013. Those appear as
/// associated constants in [`well_known`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl Asn {
    /// Construct from a raw 32-bit value.
    pub const fn new(raw: u32) -> Self {
        Asn(raw)
    }

    /// The raw 32-bit value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this ASN sits in a private-use range (RFC 6996).
    pub const fn is_private(self) -> bool {
        (self.0 >= 64512 && self.0 <= 65534) || (self.0 >= 4_200_000_000 && self.0 <= 4_294_967_294)
    }

    /// Whether this is a 4-byte-only ASN (> 65535).
    pub const fn is_four_byte(self) -> bool {
        self.0 > 65535
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl FromStr for Asn {
    type Err = Error;

    /// Accepts `8048`, `AS8048` or `as8048`.
    fn from_str(s: &str) -> Result<Self> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| Error::parse("autonomous system number", s))
    }
}

impl From<u32> for Asn {
    fn from(raw: u32) -> Self {
        Asn(raw)
    }
}

/// The ASNs the paper's analysis is keyed on.
pub mod well_known {
    use super::Asn;

    /// CANTV Servicios, Venezuela's state-owned incumbent (§4).
    pub const CANTV: Asn = Asn(8048);
    /// Telefónica de Venezuela / Movistar, the incumbent's closest peer (§4).
    pub const TELEFONICA_VE: Asn = Asn(6306);
    /// Telecomunicaciones MOVILNET, the state-owned mobile carrier (App. A).
    pub const MOVILNET: Asn = Asn(27889);
    /// Corporación Telemic (Inter), largest private competitor (App. A).
    pub const TELEMIC: Asn = Asn(21826);

    /// Verizon — left CANTV in 2013 (Fig. 9).
    pub const VERIZON: Asn = Asn(701);
    /// Sprint — left CANTV in 2013 (Fig. 9).
    pub const SPRINT: Asn = Asn(1239);
    /// AT&T — left CANTV in 2013 (Fig. 9).
    pub const ATT: Asn = Asn(7018);
    /// Arelion (ex-Telia) — stopped serving CANTV (Fig. 9).
    pub const ARELION: Asn = Asn(1299);
    /// GTT backbone (Fig. 9) — left in 2017.
    pub const GTT: Asn = Asn(3257);
    /// GTT's second ASN (ex-nLayer), left in 2017 (Fig. 9).
    pub const GTT_4436: Asn = Asn(4436);
    /// Level3 / Lumen / Cirion — left in 2018 (Fig. 9).
    pub const LEVEL3: Asn = Asn(3356);
    /// Level3's second backbone ASN (Fig. 9).
    pub const LEVEL3_3549: Asn = Asn(3549);
    /// NTT (Fig. 9 roster).
    pub const NTT: Asn = Asn(4004);
    /// Orange/OpenTransit — Americas-II partner that returned (§6.1).
    pub const ORANGE: Asn = Asn(5511);
    /// Telecom Italia Sparkle — longstanding CANTV partner via SAC (§6.1).
    pub const TELECOM_ITALIA: Asn = Asn(6762);
    /// Hurricane Electric-style transit in the Fig. 9 roster.
    pub const TATA: Asn = Asn(12956);
    /// Cogent-style roster entry used in Fig. 9.
    pub const COGENT_LIKE: Asn = Asn(19962);
    /// Columbus Networks — the sole remaining US-based transit (§6.1).
    pub const COLUMBUS: Asn = Asn(23520);
    /// Gold Data — recent addition to CANTV's transit mix (§6.1).
    pub const GOLD_DATA: Asn = Asn(28007);
    /// V.tal (ex-Brasil Telecom) — GlobeNet operator serving CANTV (§6.1).
    pub const VTAL: Asn = Asn(52320);
    /// Regional roster entry completing the Fig. 9 provider set.
    pub const REGIONAL_262589: Asn = Asn(262589);
    /// Telxius, Telefónica's backbone unit (§6.1).
    pub const TELXIUS: Asn = Asn(12956);

    /// Costa Rica's state-owned ICE, the §5.1 counter-example.
    pub const ICE_CR: Asn = Asn(11830);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_and_prefixed() {
        assert_eq!("8048".parse::<Asn>().unwrap(), Asn(8048));
        assert_eq!("AS8048".parse::<Asn>().unwrap(), Asn(8048));
        assert_eq!("as6306".parse::<Asn>().unwrap(), Asn(6306));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("AS".parse::<Asn>().is_err());
        assert!("cantv".parse::<Asn>().is_err());
        assert!("-1".parse::<Asn>().is_err());
    }

    #[test]
    fn display_roundtrip() {
        let asn = Asn(262589);
        assert_eq!(asn.to_string(), "AS262589");
        assert_eq!(asn.to_string().parse::<Asn>().unwrap(), asn);
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(65535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(8048).is_private());
    }

    #[test]
    fn four_byte_detection() {
        assert!(Asn(262589).is_four_byte());
        assert!(!Asn(8048).is_four_byte());
    }

    #[test]
    fn well_known_cast() {
        assert_eq!(well_known::CANTV.to_string(), "AS8048");
        assert_eq!(well_known::TELEFONICA_VE.to_string(), "AS6306");
        assert_eq!(well_known::COLUMBUS.to_string(), "AS23520");
    }
}
