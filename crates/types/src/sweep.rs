//! Deterministic parallel sweeps over independent work items.
//!
//! The study's hot paths are embarrassingly parallel monthly-snapshot
//! sweeps: compute something expensive for each month of an inclusive
//! range, then assemble the results in chronological order. This module
//! provides that shape on plain `std::thread::scope` workers — no external
//! dependencies — with a hard determinism contract: **output order and
//! content are identical to the serial loop**, whatever the worker count.
//!
//! Workers claim fixed, contiguous index chunks and write results into
//! disjoint slots of a preallocated buffer, so reassembly is free and the
//! result vector is in input order by construction.

use crate::date::MonthStamp;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// The machine's available parallelism, detected once per process. On a
/// single-core host every sweep primitive runs its tasks inline —
/// spawning a lone worker thread buys nothing and costs a stack — and
/// the fallback is announced exactly once on stderr so a surprisingly
/// serial run is diagnosable.
fn detected_parallelism() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        let hw = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        if hw == 1 {
            eprintln!(
                "sweep: available_parallelism is 1 — running sweeps serially (no threads spawned)"
            );
        }
        hw
    })
}

/// Number of worker threads a sweep will use: the machine's available
/// parallelism, capped by the item count (never zero).
pub fn worker_count(items: usize) -> usize {
    detected_parallelism().min(items).max(1)
}

/// Map `f` over `items` on scoped worker threads, returning results in
/// input order. Equivalent to `items.iter().map(f).collect()` — asserted
/// by the cross-crate determinism tests — but runs on
/// [`worker_count`] threads.
pub fn parallel_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    parallel_map_with(worker_count(items.len()), items, f)
}

/// [`parallel_map`] with an explicit worker count — lets callers (the
/// shard-invariance tests, benches on single-core hosts) drive the chunked
/// multi-worker path regardless of the machine's parallelism. Same
/// determinism contract: the output is byte-identical to the serial loop
/// for every worker count.
pub fn parallel_map_with<I, O, F>(workers: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    if n <= 1 || workers <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = workers.min(n);
    let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        // Pair each output chunk with the input chunk it mirrors; every
        // worker owns one disjoint pair, so input order is preserved.
        for (out_chunk, in_chunk) in slots.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, item) in out_chunk.iter_mut().zip(in_chunk) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every sweep slot is filled by its worker"))
        .collect()
}

/// Sweep an inclusive month range in parallel: compute `f(m)` for every
/// month in `[start, end]` and return `(month, value)` pairs in
/// chronological order. Empty when `end < start`.
pub fn month_range<O, F>(start: MonthStamp, end: MonthStamp, f: F) -> Vec<(MonthStamp, O)>
where
    O: Send,
    F: Fn(MonthStamp) -> O + Sync,
{
    let months: Vec<MonthStamp> = start.through(end).collect();
    months_sweep(&months, f)
}

/// Sweep an explicit month list (e.g. quarterly or semi-annual samples) in
/// parallel, returning `(month, value)` pairs in input order.
pub fn months_sweep<O, F>(months: &[MonthStamp], f: F) -> Vec<(MonthStamp, O)>
where
    O: Send,
    F: Fn(MonthStamp) -> O + Sync,
{
    parallel_map(months, |&m| f(m))
        .into_iter()
        .zip(months)
        .map(|(v, &m)| (m, v))
        .collect()
}

/// Run independent closures concurrently on scoped threads, returning
/// their results in declaration order — the shape of a parallel
/// multi-dataset build.
pub fn join_all<O: Send>(tasks: Vec<Box<dyn FnOnce() -> O + Send + '_>>) -> Vec<O> {
    if detected_parallelism() == 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let n = tasks.len();
    let mut slots: Vec<Option<O>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (slot, task) in slots.iter_mut().zip(tasks) {
            scope.spawn(move || {
                *slot = Some(task());
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every task writes its slot"))
        .collect()
}

/// Run two independent closures concurrently and return both results.
pub fn join2<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    if detected_parallelism() == 1 {
        return (fa(), fb());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(fb);
        let a = fa();
        let b = hb.join().expect("join2 worker panicked");
        (a, b)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        let parallel = parallel_map(&items, |&x| x * x + 1);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn parallel_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..256).collect();
        let out = parallel_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 256);
        assert_eq!(counter.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn forced_multi_worker_chunking_matches_serial() {
        // `worker_count` collapses to 1 on a single-core host, which would
        // leave the chunked path untested there — so drive it directly.
        let items: Vec<u64> = (0..101).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 7 + 3).collect();
        for workers in [2, 3, 8, 101, 500] {
            assert_eq!(
                parallel_map_with(workers, &items, |&x| x * 7 + 3),
                serial,
                "worker count {workers} must not change the output"
            );
        }
    }

    #[test]
    fn forced_multi_worker_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..97).collect();
        let out = parallel_map_with(4, &items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out, (1..98).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::Relaxed), 97);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert!(parallel_map(&[] as &[u32], |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn month_range_matches_serial_loop() {
        let start = MonthStamp::new(2008, 1);
        let end = MonthStamp::new(2024, 2);
        let serial: Vec<(MonthStamp, i32)> =
            start.through(end).map(|m| (m, m.index() * 3)).collect();
        assert_eq!(month_range(start, end, |m| m.index() * 3), serial);
        assert!(month_range(end, start, |m| m.index()).is_empty());
    }

    #[test]
    fn join_all_keeps_declaration_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = join_all(tasks);
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn join2_returns_both() {
        let (a, b) = join2(|| 2 + 2, || "ok".to_owned());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
