//! A bounded least-recently-used cache with single-flight computation.
//!
//! Built for the `lacnet-serve` response cache: endpoint responses are
//! keyed on `(endpoint, query, archive fingerprint)` so that a re-dump —
//! which rewrites `mlab/manifest.tsv` and therefore changes the
//! fingerprint — invalidates every stale entry naturally, and
//! [`LruCache::evict_where`] lets the owner sweep dead generations out
//! eagerly.
//!
//! Concurrency contract: [`LruCache::get_or_compute`] is *single-flight*.
//! When N threads ask for the same absent key at once, exactly one runs
//! the compute closure (outside the lock); the rest block on a condvar
//! and are served the finished value as cache hits. If the computing
//! thread panics, its pending reservation is rolled back and the waiters
//! retry, so a poisoned computation never wedges the cache.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};

/// One cache slot: either a finished value or a reservation held by the
/// thread currently computing it.
enum Slot<V> {
    /// A computation is in flight; waiters sleep on the condvar.
    Pending,
    /// A finished value.
    Ready(V),
}

struct Entry<V> {
    slot: Slot<V>,
    /// Logical timestamp of the last touch (insert or hit); the ready
    /// entry with the smallest `used` is the eviction victim.
    used: u64,
}

struct Inner<K, V> {
    entries: BTreeMap<K, Entry<V>>,
    tick: u64,
}

impl<K: Ord, V> Inner<K, V> {
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn ready_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e.slot, Slot::Ready(_)))
            .count()
    }

    /// Drop least-recently-used *ready* entries until at most `capacity`
    /// remain. Pending reservations are never evicted — they complete
    /// first and then compete for space like any other entry.
    fn evict_to(&mut self, capacity: usize)
    where
        K: Clone,
    {
        while self.ready_len() > capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                }
                None => break,
            }
        }
    }
}

/// A thread-safe LRU cache of `capacity` ready values.
pub struct LruCache<K, V> {
    shared: Mutex<Inner<K, V>>,
    ready: Condvar,
    capacity: usize,
}

impl<K: Ord + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `capacity` values (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LruCache capacity must be at least 1");
        LruCache {
            shared: Mutex::new(Inner {
                entries: BTreeMap::new(),
                tick: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ready values currently held.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("lru lock").ready_len()
    }

    /// Whether the cache holds no ready values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value for `key`, bumping its recency. Pending reservations are
    /// invisible to `get` — it never blocks.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.shared.lock().expect("lru lock");
        let tick = inner.bump();
        match inner.entries.get_mut(key) {
            Some(entry) => match &entry.slot {
                Slot::Ready(v) => {
                    let v = v.clone();
                    entry.used = tick;
                    Some(v)
                }
                Slot::Pending => None,
            },
            None => None,
        }
    }

    /// Insert (or overwrite) a ready value, evicting the least-recently
    /// used entries if the cache overflows.
    pub fn insert(&self, key: K, value: V) {
        let mut inner = self.shared.lock().expect("lru lock");
        let tick = inner.bump();
        inner.entries.insert(
            key,
            Entry {
                slot: Slot::Ready(value),
                used: tick,
            },
        );
        inner.evict_to(self.capacity);
        // An overwrite may have replaced a pending reservation some other
        // thread is waiting on; wake them so they observe the value.
        self.ready.notify_all();
    }

    /// The value for `key`, computing it with `compute` on a miss.
    ///
    /// Returns `(value, served_from_cache)`: `true` both for plain hits
    /// and for threads that waited on another thread's in-flight
    /// computation of the same key — exactly one closure runs per
    /// residency of a key, no matter how many threads race for it.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        {
            let mut inner = self.shared.lock().expect("lru lock");
            loop {
                let tick = inner.bump();
                match inner.entries.get_mut(&key) {
                    Some(entry) => match &entry.slot {
                        Slot::Ready(v) => {
                            let v = v.clone();
                            entry.used = tick;
                            return (v, true);
                        }
                        Slot::Pending => {
                            inner = self.ready.wait(inner).expect("lru lock");
                        }
                    },
                    None => {
                        inner.entries.insert(
                            key.clone(),
                            Entry {
                                slot: Slot::Pending,
                                used: tick,
                            },
                        );
                        break;
                    }
                }
            }
        }

        // Compute outside the lock. The guard rolls the reservation back
        // if `compute` panics, so waiters retry instead of hanging.
        let mut guard = PendingGuard {
            cache: self,
            key: &key,
            armed: true,
        };
        let value = compute();
        guard.armed = false;
        let mut inner = self.shared.lock().expect("lru lock");
        let tick = inner.bump();
        inner.entries.insert(
            key.clone(),
            Entry {
                slot: Slot::Ready(value.clone()),
                used: tick,
            },
        );
        inner.evict_to(self.capacity);
        drop(inner);
        self.ready.notify_all();
        (value, false)
    }

    /// Remove every ready entry whose key matches `pred` (pending
    /// reservations complete normally). This is the fingerprint
    /// invalidation hook: after an archive refresh, evict everything
    /// keyed on the superseded fingerprint.
    pub fn evict_where(&self, pred: impl Fn(&K) -> bool) {
        let mut inner = self.shared.lock().expect("lru lock");
        inner
            .entries
            .retain(|k, e| matches!(e.slot, Slot::Pending) || !pred(k));
    }

    /// Drop every ready entry.
    pub fn clear(&self) {
        self.evict_where(|_| true);
    }

    /// Ready keys ordered least- to most-recently used — the eviction
    /// order, exposed for tests and diagnostics.
    pub fn keys_by_recency(&self) -> Vec<K> {
        let inner = self.shared.lock().expect("lru lock");
        let mut keys: Vec<(u64, K)> = inner
            .entries
            .iter()
            .filter(|(_, e)| matches!(e.slot, Slot::Ready(_)))
            .map(|(k, e)| (e.used, k.clone()))
            .collect();
        keys.sort_by_key(|(used, _)| *used);
        keys.into_iter().map(|(_, k)| k).collect()
    }
}

/// Rollback handle for an in-flight reservation; disarmed once the value
/// lands.
struct PendingGuard<'c, K: Ord + Clone, V: Clone> {
    cache: &'c LruCache<K, V>,
    key: &'c K,
    armed: bool,
}

impl<K: Ord + Clone, V: Clone> Drop for PendingGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Ok(mut inner) = self.cache.shared.lock() {
            if let Some(entry) = inner.entries.get(self.key) {
                if matches!(entry.slot, Slot::Pending) {
                    inner.entries.remove(self.key);
                }
            }
        }
        self.cache.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn capacity_bound_holds() {
        let cache = LruCache::new(3);
        for i in 0..10 {
            cache.insert(i, i * 10);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.keys_by_recency(), vec![7, 8, 9]);
        assert_eq!(cache.get(&9), Some(90));
        assert_eq!(cache.get(&0), None, "oldest entries were evicted");
    }

    #[test]
    fn get_refreshes_recency() {
        let cache = LruCache::new(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(cache.get(&"a"), Some(1));
        cache.insert("c", 3);
        assert_eq!(cache.get(&"b"), None, "b was least recently used");
        assert_eq!(cache.get(&"a"), Some(1));
        assert_eq!(cache.get(&"c"), Some(3));
    }

    #[test]
    fn eviction_order_is_lru_to_mru() {
        let cache = LruCache::new(4);
        for k in ["w", "x", "y", "z"] {
            cache.insert(k, ());
        }
        cache.get(&"w");
        cache.get(&"y");
        assert_eq!(cache.keys_by_recency(), vec!["x", "z", "w", "y"]);
    }

    #[test]
    fn get_or_compute_hits_and_misses() {
        let cache = LruCache::new(8);
        let calls = AtomicUsize::new(0);
        let compute = || {
            calls.fetch_add(1, Ordering::SeqCst);
            42
        };
        assert_eq!(cache.get_or_compute("k", compute), (42, false));
        assert_eq!(cache.get_or_compute("k", compute), (42, true));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn fingerprint_change_invalidates() {
        // The serve cache keys on (endpoint, fingerprint); a re-dump
        // changes the fingerprint and the old generation gets swept.
        let cache = LruCache::new(8);
        cache.insert(("fig11", "fp-old"), 1);
        cache.insert(("tab01", "fp-old"), 2);
        cache.insert(("fig11", "fp-new"), 3);
        cache.evict_where(|&(_, fp)| fp != "fp-new");
        assert_eq!(cache.get(&("fig11", "fp-old")), None);
        assert_eq!(cache.get(&("tab01", "fp-old")), None);
        assert_eq!(cache.get(&("fig11", "fp-new")), Some(3));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cache = LruCache::new(4);
        cache.insert(1, 1);
        cache.insert(2, 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn single_flight_under_contention() {
        let cache = Arc::new(LruCache::new(4));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let calls = Arc::clone(&calls);
            handles.push(std::thread::spawn(move || {
                cache.get_or_compute("hot", || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    // Give the other threads time to pile onto the
                    // pending reservation.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    7
                })
            }));
        }
        let results: Vec<(i32, bool)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one compute");
        assert!(results.iter().all(|&(v, _)| v == 7));
        assert_eq!(
            results.iter().filter(|&&(_, hit)| !hit).count(),
            1,
            "exactly one caller reports a miss"
        );
    }

    #[test]
    fn panicking_compute_rolls_back_the_reservation() {
        let cache = Arc::new(LruCache::new(4));
        let c2 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute("k", || -> i32 { panic!("compute failed") })
            }));
            assert!(result.is_err());
        });
        panicker.join().unwrap();
        // The cache is not wedged: the next caller computes fresh.
        assert_eq!(cache.get_or_compute("k", || 5), (5, false));
    }

    proptest! {
        #[test]
        fn matches_a_reference_model(ops in proptest::collection::vec((0u8..3, 0u64..12), 1..120),
                                     capacity in 1usize..6) {
            // Replay inserts/gets against a naive model that tracks the
            // same recency rule; the cache must agree on membership and
            // eviction order at every step.
            let cache = LruCache::new(capacity);
            let mut model: Vec<(u64, u64)> = Vec::new(); // (key, value) LRU→MRU
            for (op, key) in ops {
                match op {
                    0 => {
                        model.retain(|&(k, _)| k != key);
                        model.push((key, key * 3));
                        if model.len() > capacity {
                            model.remove(0);
                        }
                        cache.insert(key, key * 3);
                    }
                    1 => {
                        let expected = model.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
                        if expected.is_some() {
                            let entry = model.iter().position(|&(k, _)| k == key).unwrap();
                            let moved = model.remove(entry);
                            model.push(moved);
                        }
                        prop_assert_eq!(cache.get(&key), expected);
                    }
                    _ => {
                        let in_model = model.iter().any(|&(k, _)| k == key);
                        let (v, hit) = cache.get_or_compute(key, || key * 3);
                        prop_assert_eq!(hit, in_model);
                        prop_assert_eq!(v, key * 3);
                        model.retain(|&(k, _)| k != key);
                        model.push((key, key * 3));
                        if model.len() > capacity {
                            model.remove(0);
                        }
                    }
                }
                prop_assert_eq!(
                    cache.keys_by_recency(),
                    model.iter().map(|&(k, _)| k).collect::<Vec<_>>()
                );
            }
        }
    }
}
