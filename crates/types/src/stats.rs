//! Exact and streaming statistics.
//!
//! The M-Lab aggregation (§3.3, Fig. 11) reduces hundreds of millions of
//! speed tests to month-country medians. We provide both an exact
//! quantile (sort-based, for correctness baselines and small groups) and
//! the P² streaming estimator (constant memory per group), plus the small
//! summary helpers the figure extractors share. The `lacnet-bench`
//! ablation compares the two on realistic workloads.

/// Exact quantile of a sample using linear interpolation between closest
/// ranks (the "linear" / type-7 method, matching NumPy's default).
/// Returns `None` on an empty slice or a `q` outside `[0, 1]`.
pub fn quantile(values: &mut [f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (values.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(values[lo])
    } else {
        let frac = pos - lo as f64;
        Some(values[lo] * (1.0 - frac) + values[hi] * frac)
    }
}

/// Exact median.
pub fn median(values: &mut [f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// The P² (piecewise-parabolic) streaming quantile estimator of Jain &
/// Chlamtac (1985): tracks one quantile with five markers and O(1) memory
/// per observation.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// Initial observations until the five markers are seeded.
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Create an estimator for quantile `q` in `(0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Convenience constructor for the median.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
                for (i, &v) in self.initial.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            // Jain & Chlamtac (1985): a new maximum lies in the last cell,
            // between markers 4 and 5 (0-indexed cell 3), so only the
            // position of marker 5 may advance.
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // Adjust interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let h = &self.heights;
        let n = &self.positions;
        h[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate. `None` until at least one observation; exact while
    /// fewer than five observations have been seen.
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.initial.len() < 5 {
            let mut v = self.initial.clone();
            return quantile(&mut v, self.q);
        }
        Some(self.heights[2])
    }
}

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Mean, if any observations.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    #[test]
    fn exact_quantiles() {
        let mut v = vec![3.0, 1.0, 2.0, 4.0];
        assert_eq!(median(&mut v), Some(2.5));
        assert_eq!(quantile(&mut v, 0.0), Some(1.0));
        assert_eq!(quantile(&mut v, 1.0), Some(4.0));
        assert_eq!(quantile(&mut v, 0.25), Some(1.75));
        assert_eq!(quantile(&mut [], 0.5), None);
        assert_eq!(quantile(&mut [1.0], 1.5), None);
        assert_eq!(median(&mut [7.0]), Some(7.0));
    }

    #[test]
    fn p2_exact_for_small_samples() {
        let mut p2 = P2Quantile::median();
        assert_eq!(p2.value(), None);
        p2.observe(5.0);
        assert_eq!(p2.value(), Some(5.0));
        p2.observe(1.0);
        assert_eq!(p2.value(), Some(3.0));
        p2.observe(9.0);
        assert_eq!(p2.value(), Some(5.0));
    }

    #[test]
    fn p2_tracks_uniform_median() {
        let mut rng = Rng::seeded(21);
        let mut p2 = P2Quantile::median();
        for _ in 0..100_000 {
            p2.observe(rng.uniform(0.0, 10.0));
        }
        let est = p2.value().unwrap();
        assert!((est - 5.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn p2_tracks_lognormal_median_and_p90() {
        // The M-Lab generator produces log-normal speeds; make sure the
        // estimator works on that shape specifically.
        let mut rng = Rng::seeded(22);
        let mu = 0.7f64; // median e^0.7 ≈ 2.013
        let mut med = P2Quantile::median();
        let mut p90 = P2Quantile::new(0.9);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x = rng.log_normal(mu, 0.9);
            med.observe(x);
            p90.observe(x);
            all.push(x);
        }
        let exact_med = median(&mut all.clone()).unwrap();
        let exact_p90 = quantile(&mut all, 0.9).unwrap();
        let e1 = med.value().unwrap();
        let e2 = p90.value().unwrap();
        assert!(
            (e1 - exact_med).abs() / exact_med < 0.05,
            "median {e1} vs {exact_med}"
        );
        assert!(
            (e2 - exact_p90).abs() / exact_p90 < 0.08,
            "p90 {e2} vs {exact_p90}"
        );
    }

    #[test]
    fn p2_tracks_monotonically_increasing_stream() {
        // Regression for the upper-extreme cell bug: every observation of a
        // strictly increasing stream is a new maximum, so each one takes the
        // `x >= heights[4]` branch. With the wrong cell index (`k = 2`)
        // positions[3] was spuriously incremented on every observation,
        // dragging the median marker far below the true median. The fixed
        // estimator stays within 2% of the exact value; the buggy one ends
        // up more than 40% low on this stream.
        let n = 10_000;
        let mut p2 = P2Quantile::median();
        for i in 0..n {
            p2.observe(i as f64);
        }
        let exact = (n - 1) as f64 / 2.0;
        let est = p2.value().unwrap();
        assert!(
            (est - exact).abs() / exact < 0.02,
            "P² median {est} strayed from exact {exact} on an increasing stream"
        );

        // Same property for a non-median quantile, which exercises the
        // asymmetric desired-position increments.
        let mut p90 = P2Quantile::new(0.9);
        for i in 0..n {
            p90.observe(i as f64);
        }
        let exact90 = 0.9 * (n - 1) as f64;
        let est90 = p90.value().unwrap();
        assert!(
            (est90 - exact90).abs() / exact90 < 0.02,
            "P² p90 {est90} strayed from exact {exact90} on an increasing stream"
        );
    }

    #[test]
    fn running_stats_moments() {
        let mut rs = RunningStats::new();
        assert_eq!(rs.mean(), None);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            rs.observe(x);
        }
        assert_eq!(rs.count(), 8);
        assert_eq!(rs.mean(), Some(5.0));
        assert_eq!(rs.std_dev(), Some(2.0));
        assert_eq!(rs.min(), Some(2.0));
        assert_eq!(rs.max(), Some(9.0));
    }

    proptest! {
        #[test]
        fn quantile_is_within_range(mut v in proptest::collection::vec(-1e6f64..1e6, 1..200),
                                    q in 0.0f64..=1.0) {
            let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let qv = quantile(&mut v, q).unwrap();
            prop_assert!(qv >= lo - 1e-9 && qv <= hi + 1e-9);
        }

        #[test]
        fn quantile_is_monotone_in_q(mut v in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                     q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
            let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = quantile(&mut v, qa).unwrap();
            let b = quantile(&mut v, qb).unwrap();
            prop_assert!(a <= b + 1e-9);
        }

        #[test]
        fn p2_stays_within_observed_range(xs in proptest::collection::vec(-1e3f64..1e3, 1..500)) {
            let mut p2 = P2Quantile::median();
            for &x in &xs {
                p2.observe(x);
            }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let v = p2.value().unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn p2_accurate_on_sorted_ascending_streams(
            mut xs in proptest::collection::vec(-1e3f64..1e3, 50..400),
        ) {
            // Sorted-ascending input makes every post-seed observation hit
            // the upper-extreme branch — the path the cell-index bug sat on.
            xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            let mut p2 = P2Quantile::median();
            for &x in &xs {
                p2.observe(x);
            }
            let est = p2.value().unwrap();
            let exact = median(&mut xs.clone()).unwrap();
            let span = xs[xs.len() - 1] - xs[0];
            // P² is a coarse 5-marker sketch, so the bound is loose — but
            // the pre-fix estimator drifts toward the stream minimum on
            // ascending input and misses by well over half the span.
            prop_assert!(
                (est - exact).abs() <= span * 0.25 + 1e-9,
                "estimate {} vs exact median {} (span {})", est, exact, span
            );
        }

        #[test]
        fn welford_matches_naive(xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
            let mut rs = RunningStats::new();
            for &x in &xs {
                rs.observe(x);
            }
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((rs.mean().unwrap() - mean).abs() < 1e-6);
            prop_assert!((rs.variance().unwrap() - var).abs() < 1e-4);
        }
    }
}
