//! A minimal, dependency-free HTTP/1.1 wire protocol: request parsing
//! with hard resource limits and a small response writer.
//!
//! Built for `lacnet-serve`, which talks plain `std::net::TcpStream`s.
//! The parser reads exactly one request per call from a `BufRead`, so a
//! connection loop gets pipelining for free; every malformed or oversized
//! input maps to a *typed* error carrying the HTTP status the server
//! should answer with (400, 413, 414 or 431) — never a panic, and, with
//! a read timeout on the socket, never a hang.

use std::fmt;
use std::io::{BufRead, Write};

/// Hard limits applied while reading one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line length in bytes (overflow → 414).
    pub max_request_line: usize,
    /// Maximum total header block size in bytes (overflow → 431).
    pub max_header_bytes: usize,
    /// Maximum number of header fields (overflow → 431).
    pub max_headers: usize,
    /// Maximum `Content-Length` accepted (overflow → 413).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 100,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method token, upper-case by convention (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the request target (before any `?`).
    pub path: String,
    /// The raw query string (after `?`, empty when absent).
    pub query: String,
    /// `true` for `HTTP/1.1` targets, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header fields in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Decode the query string into `key=value` pairs (`+` and `%XX`
    /// unescaped; keys without `=` get an empty value).
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        self.query
            .split('&')
            .filter(|part| !part.is_empty())
            .map(|part| {
                let (k, v) = match part.split_once('=') {
                    Some((k, v)) => (k, v),
                    None => (part, ""),
                };
                (percent_decode(k), percent_decode(v))
            })
            .collect()
    }

    /// Whether the client asked to close the connection after this
    /// exchange (explicit `Connection: close`, or HTTP/1.0 default).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => !self.http11,
        }
    }
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Percent-decode `s`, rejecting malformed escapes instead of passing
/// them through (`+` still decodes to a space). `None` on a `%` not
/// followed by two hex digits — the strict counterpart of the lossy
/// decoding [`Request::query_pairs`] applies.
pub fn percent_decode_strict(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let b = u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                out.push(b);
                i += 2;
            }
            b => out.push(b),
        }
        i += 1;
    }
    Some(String::from_utf8_lossy(&out).into_owned())
}

/// Normalize a raw query string into its canonical pair list: strict
/// percent-decoding (malformed escapes → `None`), duplicate keys
/// resolved last-key-wins, keys sorted. Two spellings of the same query
/// (`?format=tsv`, `?format=%74sv`, `?format=json&format=tsv`) normalize
/// to the same list — the property response caches key on.
pub fn normalize_query(query: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = std::collections::BTreeMap::new();
    for part in query.split('&').filter(|part| !part.is_empty()) {
        let (k, v) = match part.split_once('=') {
            Some((k, v)) => (k, v),
            None => (part, ""),
        };
        pairs.insert(percent_decode_strict(k)?, percent_decode_strict(v)?);
    }
    Some(pairs.into_iter().collect())
}

/// Why a request could not be read. Every protocol-level variant carries
/// the status code the server should answer with before closing.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header or body framing → 400.
    BadRequest(&'static str),
    /// Declared body larger than [`Limits::max_body`] → 413.
    PayloadTooLarge,
    /// Request line longer than [`Limits::max_request_line`] → 414.
    UriTooLong,
    /// Header block larger than the limits allow → 431.
    HeadersTooLarge,
    /// Clean end of stream before the first byte of a request — the
    /// normal end of a keep-alive connection, not an error to report.
    Closed,
    /// The underlying socket failed mid-request (including read
    /// timeouts). The connection is beyond recovery; just drop it.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code to answer with, or `None` when the connection
    /// should simply be dropped.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::PayloadTooLarge => Some(413),
            HttpError::UriTooLong => Some(414),
            HttpError::HeadersTooLarge => Some(431),
            HttpError::Closed | HttpError::Io(_) => None,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::PayloadTooLarge => write!(f, "payload too large"),
            HttpError::UriTooLong => write!(f, "request line too long"),
            HttpError::HeadersTooLarge => write!(f, "header block too large"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Outcome of one bounded line read.
enum LineRead {
    Line(Vec<u8>),
    /// End of stream with no bytes read.
    Eof,
    /// End of stream mid-line.
    TruncatedEof,
    /// The line exceeded `cap` bytes.
    Overflow,
}

/// Read one `\n`-terminated line of at most `cap` bytes, stripping the
/// terminator and an optional preceding `\r`.
fn read_line(reader: &mut impl BufRead, cap: usize) -> Result<LineRead, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Ok(if line.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::TruncatedEof
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(LineRead::Line(line));
                }
                if line.len() >= cap {
                    return Ok(LineRead::Overflow);
                }
                line.push(byte[0]);
            }
            Err(e) if is_timeout(&e) && !line.is_empty() => {
                return Err(HttpError::BadRequest("client stalled mid-request"))
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// A read that gave up on the socket deadline. A timeout on an *idle*
/// connection is a normal keep-alive close; the same timeout after the
/// request has started arriving is a stalled (or slow-loris) client and
/// maps to a typed 400 so the peer learns why it was dropped.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Read exactly one request from `reader`, enforcing `limits`.
///
/// Reads no byte past the end of the request, so pipelined requests on
/// one connection parse back-to-back with repeated calls.
pub fn read_request(reader: &mut impl BufRead, limits: &Limits) -> Result<Request, HttpError> {
    // Request line; tolerate leading blank lines (RFC 9112 §2.2).
    let line = loop {
        match read_line(reader, limits.max_request_line)? {
            LineRead::Line(l) if l.is_empty() => continue,
            LineRead::Line(l) => break l,
            LineRead::Eof => return Err(HttpError::Closed),
            LineRead::TruncatedEof => return Err(HttpError::BadRequest("truncated request line")),
            LineRead::Overflow => return Err(HttpError::UriTooLong),
        }
    };
    let line =
        String::from_utf8(line).map_err(|_| HttpError::BadRequest("request line not UTF-8"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequest("request line needs 3 parts")),
    };
    if !is_token(method) {
        return Err(HttpError::BadRequest("malformed method token"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
    };
    if target.is_empty() || (!target.starts_with('/') && target != "*") {
        return Err(HttpError::BadRequest("request target must be absolute"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    // Header block.
    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = match read_line(reader, limits.max_header_bytes) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof | LineRead::TruncatedEof) => {
                return Err(HttpError::BadRequest("truncated header block"))
            }
            Ok(LineRead::Overflow) => return Err(HttpError::HeadersTooLarge),
            Err(HttpError::Io(e)) if is_timeout(&e) => {
                return Err(HttpError::BadRequest("client stalled mid-request"))
            }
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > limits.max_header_bytes || headers.len() >= limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let line =
            String::from_utf8(line).map_err(|_| HttpError::BadRequest("header not UTF-8"))?;
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header without colon"))?;
        if !is_token(name) {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    // Body framing: Content-Length only; chunked bodies are refused.
    let mut request = Request {
        method: method.to_owned(),
        path,
        query,
        http11,
        headers,
        body: Vec::new(),
    };
    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::BadRequest("transfer-encoding not supported"));
    }
    // Every Content-Length field (and every member of a comma-folded
    // list) must agree; conflicting declarations are the classic request
    // smuggling vector and are refused outright (RFC 9112 §6.3).
    let mut declared: Option<usize> = None;
    for (_, raw) in request
        .headers
        .iter()
        .filter(|(n, _)| n == "content-length")
    {
        for part in raw.split(',') {
            let len: usize = part
                .trim()
                .parse()
                .map_err(|_| HttpError::BadRequest("malformed content-length"))?;
            if declared.is_some_and(|prev| prev != len) {
                return Err(HttpError::BadRequest("conflicting content-length"));
            }
            declared = Some(len);
        }
    }
    if let Some(len) = declared {
        if len > limits.max_body {
            return Err(HttpError::PayloadTooLarge);
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof || is_timeout(&e) {
                HttpError::BadRequest("truncated body")
            } else {
                HttpError::Io(e)
            }
        })?;
        request.body = body;
    }
    Ok(request)
}

/// The canonical reason phrase for the status codes the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// One response, written with explicit framing (`Content-Length` always
/// present, so keep-alive and pipelining are safe).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// Extra headers beyond the framing set.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with the given status, content type and body.
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Serialise status line, headers and body to `w`. `close` adds
    /// `Connection: close`; otherwise the connection is keep-alive.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        if close {
            head.push_str("connection: close\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()), &Limits::default())
    }

    /// Yields a fixed prefix, then times out forever — a stalled client.
    struct StallReader(Cursor<Vec<u8>>);

    impl std::io::Read for StallReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.0.read(buf)? {
                0 => Err(std::io::ErrorKind::WouldBlock.into()),
                n => Ok(n),
            }
        }
    }

    fn parse_stalled(prefix: &[u8]) -> Result<Request, HttpError> {
        let mut reader = std::io::BufReader::new(StallReader(Cursor::new(prefix.to_vec())));
        read_request(&mut reader, &Limits::default())
    }

    #[test]
    fn stalls_after_progress_are_bad_requests_not_silent_drops() {
        // Mid-request-line, mid-headers, mid-body: all typed 400s, so the
        // serving loop answers before dropping a slow-loris peer.
        for prefix in [
            b"GET /half".as_slice(),
            b"GET / HTTP/1.1\r\nx-half: ".as_slice(),
            b"GET / HTTP/1.1\r\ncontent-length: 100\r\n\r\nabc".as_slice(),
        ] {
            assert_eq!(
                parse_stalled(prefix).unwrap_err().status(),
                Some(400),
                "prefix {prefix:?}"
            );
        }
        // An idle connection timing out before any byte stays an Io
        // error: keep-alive closes get no error response.
        assert!(matches!(parse_stalled(b"").unwrap_err(), HttpError::Io(_)));
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse(b"GET /fig/11?format=tsv HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/fig/11");
        assert_eq!(req.query, "format=tsv");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(
            req.query_pairs(),
            vec![("format".to_owned(), "tsv".to_owned())]
        );
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_body_and_stops_at_its_end() {
        let mut cursor = Cursor::new(
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET / HTTP/1.1\r\n\r\n".to_vec(),
        );
        let limits = Limits::default();
        let first = read_request(&mut cursor, &limits).unwrap();
        assert_eq!(first.body, b"abcd");
        // The next pipelined request is intact.
        let second = read_request(&mut cursor, &limits).unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut cursor = Cursor::new(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec());
        let limits = Limits::default();
        assert_eq!(read_request(&mut cursor, &limits).unwrap().path, "/a");
        assert_eq!(read_request(&mut cursor, &limits).unwrap().path, "/b");
        assert!(matches!(
            read_request(&mut cursor, &limits),
            Err(HttpError::Closed)
        ));
    }

    #[test]
    fn typed_errors_for_malformed_inputs() {
        assert_eq!(parse(b"NONSENSE\r\n\r\n").unwrap_err().status(), Some(400));
        assert_eq!(
            parse(b"GET /x HTTP/2.0\r\n\r\n").unwrap_err().status(),
            Some(400)
        );
        assert_eq!(
            parse(b"GET x HTTP/1.1\r\n\r\n").unwrap_err().status(),
            Some(400)
        );
        assert_eq!(
            parse(b"G\0T / HTTP/1.1\r\n\r\n").unwrap_err().status(),
            Some(400)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(400)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\ncontent-length: ten\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(400)
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n")
                .unwrap_err()
                .status(),
            Some(400)
        );
    }

    #[test]
    fn oversized_inputs_get_their_own_statuses() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert_eq!(
            parse(long_target.as_bytes()).unwrap_err().status(),
            Some(414)
        );

        let big_header = format!("GET / HTTP/1.1\r\nx: {}\r\n\r\n", "b".repeat(40_000));
        assert_eq!(
            parse(big_header.as_bytes()).unwrap_err().status(),
            Some(431)
        );

        let many_headers = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            (0..200).map(|i| format!("h{i}: v\r\n")).collect::<String>()
        );
        assert_eq!(
            parse(many_headers.as_bytes()).unwrap_err().status(),
            Some(431)
        );

        let huge_body = b"POST / HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n";
        assert_eq!(parse(huge_body).unwrap_err().status(), Some(413));
    }

    #[test]
    fn truncation_is_a_bad_request_not_a_hang() {
        assert_eq!(parse(b"GET / HTT").unwrap_err().status(), Some(400));
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nhost: x").unwrap_err().status(),
            Some(400)
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc")
                .unwrap_err()
                .status(),
            Some(400)
        );
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        // Blank lines before EOF are still a clean close.
        assert!(matches!(parse(b"\r\n\r\n"), Err(HttpError::Closed)));
    }

    #[test]
    fn connection_semantics() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(close.wants_close());
        let http10 = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(http10.wants_close());
    }

    #[test]
    fn duplicate_content_lengths_must_agree() {
        // Agreeing duplicates (and comma-folded lists) frame one body.
        let ok = parse(b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(ok.body, b"abcd");
        let folded = parse(b"POST /x HTTP/1.1\r\ncontent-length: 4, 4\r\n\r\nabcd").unwrap();
        assert_eq!(folded.body, b"abcd");
        // Conflicting declarations — across fields or inside one list —
        // are typed 400s, not a silent first-value pick.
        for wire in [
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\nabcd".as_slice(),
            b"POST /x HTTP/1.1\r\ncontent-length: 4, 5\r\n\r\nabcd".as_slice(),
            b"POST /x HTTP/1.1\r\ncontent-length: 4,\r\n\r\nabcd".as_slice(),
        ] {
            let err = parse(wire).unwrap_err();
            assert_eq!(err.status(), Some(400), "wire {wire:?}");
        }
        assert!(
            parse(b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\nabcd")
                .unwrap_err()
                .to_string()
                .contains("conflicting content-length")
        );
    }

    #[test]
    fn strict_percent_decoding_rejects_malformed_escapes() {
        assert_eq!(percent_decode_strict("t%73v"), Some("tsv".to_owned()));
        assert_eq!(percent_decode_strict("a+b"), Some("a b".to_owned()));
        assert_eq!(percent_decode_strict("%zz"), None);
        assert_eq!(percent_decode_strict("%f"), None);
        assert_eq!(percent_decode_strict("trailing%"), None);
    }

    #[test]
    fn normalized_queries_are_canonical() {
        // Last key wins, escapes decode, keys sort: every spelling of
        // the same query lands on one canonical pair list.
        let canonical = normalize_query("format=tsv").unwrap();
        assert_eq!(normalize_query("format=%74sv").unwrap(), canonical);
        assert_eq!(
            normalize_query("format=json&format=tsv").unwrap(),
            canonical
        );
        assert_eq!(
            normalize_query("b=2&a=1").unwrap(),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "2".to_owned()),
            ]
        );
        assert_eq!(normalize_query("").unwrap(), Vec::new());
        assert_eq!(
            normalize_query("flag").unwrap(),
            vec![("flag".to_owned(), String::new())]
        );
        // A malformed escape anywhere poisons the whole query.
        assert_eq!(normalize_query("format=%zzv"), None);
        assert_eq!(normalize_query("a=1&%fgkey=2"), None);
    }

    #[test]
    fn query_decoding() {
        let req = parse(b"GET /x?a=1&b=two+words&c=%2Fslash&flag HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(
            req.query_pairs(),
            vec![
                ("a".to_owned(), "1".to_owned()),
                ("b".to_owned(), "two words".to_owned()),
                ("c".to_owned(), "/slash".to_owned()),
                ("flag".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn response_writes_explicit_framing() {
        let mut out = Vec::new();
        Response::new(200, "application/json", b"{}".to_vec())
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut closed = Vec::new();
        Response::new(404, "text/plain", b"nope".to_vec())
            .write_to(&mut closed, true)
            .unwrap();
        assert!(String::from_utf8(closed)
            .unwrap()
            .contains("connection: close\r\n"));
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            // Whatever arrives on the socket, the parser returns a typed
            // result — fuzzing for panics and infinite loops.
            let _ = parse(&bytes);
        }

        #[test]
        fn mangled_request_lines_are_typed_errors(
            garbage in proptest::collection::vec(32u8..127, 1..80),
        ) {
            let mut bytes = garbage.clone();
            bytes.extend_from_slice(b"\r\n\r\n");
            if let Err(e) = parse(&bytes) {
                // Every failure carries a client-error status; nothing in
                // a one-line request can be a server-side failure.
                if let Some(status) = e.status() {
                    prop_assert!((400..500).contains(&status), "status {status}");
                }
            }
        }

        #[test]
        fn valid_requests_round_trip(
            seg in proptest::collection::vec(97u8..123, 1..12),
            q in proptest::collection::vec(97u8..123, 0..12),
            body in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let path = format!("/{}", String::from_utf8(seg).unwrap());
            let query = String::from_utf8(q).unwrap();
            let target = if query.is_empty() {
                path.clone()
            } else {
                format!("{path}?{query}")
            };
            let wire = [
                format!(
                    "POST {target} HTTP/1.1\r\nhost: h\r\ncontent-length: {}\r\n\r\n",
                    body.len()
                )
                .into_bytes(),
                body.clone(),
            ]
            .concat();
            let req = parse(&wire).unwrap();
            prop_assert_eq!(req.path, path);
            prop_assert_eq!(req.query, query);
            prop_assert_eq!(req.body, body);
        }

        #[test]
        fn duplicate_content_lengths_agree_or_400(
            a in 0usize..64,
            b in 0usize..64,
            body in proptest::collection::vec(any::<u8>(), 64..80),
        ) {
            // Two Content-Length fields: the request parses iff they
            // agree (framing exactly `a` bytes); any disagreement is a
            // typed 400 — never a body framed by whichever value the
            // parser happened to see first.
            let wire = [
                format!(
                    "POST /x HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {b}\r\n\r\n"
                )
                .into_bytes(),
                body.clone(),
            ]
            .concat();
            match parse(&wire) {
                Ok(req) => {
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(req.body, body[..a].to_vec());
                }
                Err(e) => {
                    prop_assert_ne!(a, b);
                    prop_assert_eq!(e.status(), Some(400));
                }
            }
        }

        #[test]
        fn normalized_queries_ignore_escape_spelling(
            key in proptest::collection::vec(97u8..123, 1..8),
            value in proptest::collection::vec(97u8..123, 1..8),
        ) {
            let key = String::from_utf8(key).unwrap();
            let value = String::from_utf8(value).unwrap();
            // Hex-escaping any byte of the value must normalize to the
            // same pairs as the plain spelling.
            let escaped: String = value
                .bytes()
                .map(|b| format!("%{b:02x}"))
                .collect();
            prop_assert_eq!(
                normalize_query(&format!("{key}={value}")).unwrap(),
                normalize_query(&format!("{key}={escaped}")).unwrap()
            );
        }

        #[test]
        fn oversized_header_blocks_always_431(n in 101usize..300) {
            let wire = format!(
                "GET / HTTP/1.1\r\n{}\r\n",
                (0..n).map(|i| format!("h{i}: v\r\n")).collect::<String>()
            );
            prop_assert_eq!(parse(wire.as_bytes()).unwrap_err().status(), Some(431));
        }
    }
}
