//! Error type shared by the parsing and modelling layers.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while parsing dataset records or constructing model
/// values.
///
/// The variants are deliberately coarse: dataset parsers attach the
/// offending input via [`Error::parse`] so a failing line in a 10M-line
/// archive can be located, while domain constructors use
/// [`Error::invalid`] for out-of-range values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A textual record could not be parsed. Holds a description of what
    /// was expected and the offending input fragment.
    Parse {
        /// What the parser expected (e.g. `"ipv4 prefix"`).
        expected: &'static str,
        /// The input fragment that failed to parse (truncated to 128 bytes).
        input: String,
    },
    /// A value was syntactically fine but semantically out of range
    /// (e.g. month 13, prefix length 33).
    Invalid {
        /// Description of the constraint that was violated.
        what: &'static str,
    },
    /// A lookup referenced an entity that does not exist in the given
    /// snapshot or registry (e.g. an unknown airport code).
    Missing {
        /// Description of the missing entity.
        what: &'static str,
        /// The key that was looked up.
        key: String,
    },
}

impl Error {
    /// Build a [`Error::Parse`], truncating the echoed input to keep error
    /// values small even when fed multi-kilobyte garbage lines.
    pub fn parse(expected: &'static str, input: &str) -> Self {
        let mut input = input.to_owned();
        if input.len() > 128 {
            input.truncate(128);
            input.push('…');
        }
        Error::Parse { expected, input }
    }

    /// Build a [`Error::Invalid`].
    pub fn invalid(what: &'static str) -> Self {
        Error::Invalid { what }
    }

    /// Build a [`Error::Missing`].
    pub fn missing(what: &'static str, key: impl Into<String>) -> Self {
        Error::Missing {
            what,
            key: key.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { expected, input } => {
                write!(f, "expected {expected}, got {input:?}")
            }
            Error::Invalid { what } => write!(f, "invalid value: {what}"),
            Error::Missing { what, key } => write!(f, "unknown {what}: {key:?}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_truncates_long_input() {
        let long = "x".repeat(1000);
        let err = Error::parse("prefix", &long);
        match err {
            Error::Parse { input, .. } => {
                assert!(input.len() < 140);
                assert!(input.ends_with('…'));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Error::parse("asn", "abc").to_string(),
            "expected asn, got \"abc\""
        );
        assert_eq!(
            Error::invalid("month out of range").to_string(),
            "invalid value: month out of range"
        );
        assert_eq!(
            Error::missing("airport code", "XXX").to_string(),
            "unknown airport code: \"XXX\""
        );
    }
}
