//! Beyond-the-paper analyses: the study's stated future-work directions
//! and validation of the substrate itself, packaged as the same
//! artifact/finding structure as the 22 paper experiments.
//!
//! * [`ext_blackouts`] — outage detection over the 2019 blackout year
//!   (§9 defers shutdown analysis to future work);
//! * [`ext_inference`] — Gao-style relationship inference recovered from
//!   the world's own BGP paths, scored against ground truth (the
//!   provenance check: serial-1 files are themselves inferred);
//! * [`ext_network_split`] — Venezuela's per-network medians (the §7.1
//!   claim that fibre entrants, not CANTV, drive the 2022 recovery).

use crate::artifact::{Artifact, ExperimentResult, Finding, Table};
use crate::source::DataSource;
use lacnet_bgp::inference::{self, RelationshipInference};
use lacnet_crisis::bandwidth;
use lacnet_mlab::multi::{Group, Metric};
use lacnet_types::{country, Asn, Date, MonthStamp};

/// Run all extension analyses, each on its own worker thread (they are
/// independent pure functions of their [`DataSource`], like the paper
/// battery).
pub fn all(source: &DataSource) -> Vec<ExperimentResult> {
    lacnet_types::sweep::parallel_map(&crate::registry::extension_battery(), |run| run(source))
}

/// Outage detection over the 2019 blackout year.
pub fn ext_blackouts(src: &DataSource) -> ExperimentResult {
    use lacnet_atlas::outages::{detect_all, DetectorConfig};
    let series = src.reachability_2019();
    let detected = detect_all(&series, DetectorConfig::default());
    let ve = detected.get(&country::VE).cloned().unwrap_or_default();

    let rows: Vec<Vec<String>> = ve
        .iter()
        .map(|e| {
            vec![
                e.start.to_string(),
                e.end.to_string(),
                e.duration_days().to_string(),
                format!("{:.0}%", e.depth() * 100.0),
            ]
        })
        .collect();
    let table = Table {
        id: "ext-blackouts".into(),
        caption: "Outage windows detected from Venezuelan probe reachability, 2019".into(),
        headers: vec!["start".into(), "end".into(), "days".into(), "depth".into()],
        rows,
    };

    let march = ve.first();
    let findings = vec![
        Finding::claim(
            "the March 7 nationwide blackout is detected",
            "≈week-long, >80% deep, starting 2019-03-07",
            march
                .map(|e| format!("{} → {}, depth {:.0}%", e.start, e.end, e.depth() * 100.0))
                .unwrap_or_else(|| "none".into()),
            march.is_some_and(|e| {
                e.start == Date::ymd(2019, 3, 7) && e.duration_days() >= 7 && e.depth() > 0.8
            }),
        ),
        Finding::numeric("distinct 2019 events detected", 3.0, ve.len() as f64, 0.01),
        Finding::claim(
            "no other country shows national outages",
            "Venezuela only",
            format!(
                "{:?}",
                detected.keys().map(|c| c.to_string()).collect::<Vec<_>>()
            ),
            detected.len() == 1,
        ),
    ];

    ExperimentResult {
        id: "ext-blackouts".into(),
        title: "2019 blackout detection (future work of §9)".into(),
        artifacts: vec![Artifact::Table(table)],
        findings,
    }
}

/// Relationship-inference accuracy against the world's ground truth.
pub fn ext_inference(src: &DataSource) -> ExperimentResult {
    let m = MonthStamp::new(2020, 6);
    let graph = src.topology().get(m).expect("snapshot exists");
    // Collector RIB: paths from propagating every Venezuelan origin plus
    // the transit cast (a realistic partial view, not the full mesh).
    // Route trees come through the backend's shared ConeCache, so origins
    // Fig. 9's transit matrix already expanded are free here.
    let cache = src.cone_cache();
    let mut paths = Vec::new();
    for op in src.operators().in_country(country::VE) {
        if graph.contains(op.asn) {
            paths.extend(cache.paths(m, graph, op.asn).all_paths());
        }
    }
    for asn in lacnet_crisis::topology::TIER1 {
        paths.extend(cache.paths(m, graph, Asn(*asn)).all_paths());
    }
    let mut inf = RelationshipInference::new(1.25);
    inf.observe_degrees(&paths);
    inf.observe_paths(&paths);
    let inferred = inf.infer();

    // Score only over the pairs the paths actually cover.
    let covered: std::collections::BTreeSet<(Asn, Asn)> = inferred
        .iter()
        .map(|e| {
            let c = e.canonical();
            (c.a, c.b)
        })
        .collect();
    let truth_edges: Vec<_> = graph
        .edges()
        .into_iter()
        .filter(|e| {
            let c = e.canonical();
            covered.contains(&(c.a, c.b))
        })
        .collect();
    let truth_graph = lacnet_bgp::AsGraph::from_edges(truth_edges.iter().copied());
    let acc = inference::accuracy(&truth_graph, &inferred);

    let table = Table {
        id: "ext-inference".into(),
        caption: "Relationship inference vs ground truth (2020-06 snapshot)".into(),
        headers: vec!["quantity".into(), "value".into()],
        rows: vec![
            vec!["paths in collector RIB".into(), paths.len().to_string()],
            vec!["pairs covered".into(), covered.len().to_string()],
            vec!["accuracy on covered pairs".into(), format!("{acc:.3}")],
        ],
    };

    // The documented weakness of the degree heuristic: CANTV is an
    // eyeball whose customer count exceeds its wholesale providers'
    // degrees, so edges at that boundary misclassify — the reason
    // serial-1 consumers treat inferred relationships with care.
    let cantv_edges_clean = [6762u32, 23520].iter().all(|&p| {
        inferred.iter().any(|e| {
            e.a == Asn(p)
                && e.b == Asn(8048)
                && e.rel == lacnet_bgp::AsRelationship::ProviderToCustomer
        })
    });
    let enterprise_edges_clean = src
        .operators()
        .enterprises(country::VE)
        .iter()
        .take(10)
        .all(|ent| {
            inferred.iter().any(|e| {
                e.a == Asn(8048)
                    && e.b == ent.asn
                    && e.rel == lacnet_bgp::AsRelationship::ProviderToCustomer
            })
        });
    let findings = vec![
        Finding::claim(
            "degree-heuristic inference recovers most covered edges",
            "accuracy ≥ 0.9",
            format!("{acc:.3} over {} pairs", covered.len()),
            acc >= 0.9,
        ),
        Finding::claim(
            "stub edges behind CANTV are oriented correctly",
            "AS8048 → every enterprise customer",
            "checked",
            enterprise_edges_clean,
        ),
        Finding::claim(
            "Gao's documented weakness appears at the eyeball/wholesale boundary",
            "at least one CANTV provider edge misclassified (degree is not altitude)",
            if cantv_edges_clean {
                "all clean (unexpected)".into()
            } else {
                "misclassification observed".to_string()
            },
            !cantv_edges_clean,
        ),
    ];

    ExperimentResult {
        id: "ext-inference".into(),
        title: "AS-relationship inference baseline".into(),
        artifacts: vec![Artifact::Table(table)],
        findings,
    }
}

/// Venezuela's per-network download medians in July 2023, reduced from
/// the sharded per-network archive build (same sweep/merge machinery as
/// the aggregate Fig. 11 stream, at 8× volume for estimator stability).
pub fn ext_network_split(src: &DataSource) -> ExperimentResult {
    let m = MonthStamp::new(2023, 7);
    let agg = bandwidth::build_multi_aggregate(
        src.operators(),
        src.config().seed,
        src.config().mlab_volume_scale.max(1.0) * 8.0,
        m,
        m,
    );

    let med = |asn: u32| {
        agg.median_series(Group::CountryAsn(country::VE, Asn(asn)), Metric::Download)
            .get(m)
            .unwrap_or(0.0)
    };
    let mut rows: Vec<(u32, String, f64)> = src
        .operators()
        .eyeballs(country::VE)
        .iter()
        .map(|o| (o.asn.raw(), o.name.clone(), med(o.asn.raw())))
        .filter(|&(_, _, v)| v > 0.0)
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite medians"));

    let table = Table {
        id: "ext-network-split".into(),
        caption: "Median download per Venezuelan network, July 2023 (Mbps)".into(),
        headers: vec!["ASN".into(), "network".into(), "median".into()],
        rows: rows
            .iter()
            .map(|(asn, name, v)| vec![asn.to_string(), name.clone(), format!("{v:.2}")])
            .collect(),
    };

    let cantv = med(8048);
    let airtek = med(61461);
    let findings = vec![
        Finding::claim(
            "fibre entrants lead the national median",
            "Airtek/Fibex-class networks several times CANTV's median",
            format!("Airtek {airtek:.2} vs CANTV {cantv:.2} Mbps"),
            airtek > 2.0 * cantv && cantv > 0.0,
        ),
        Finding::claim(
            "CANTV sits below the country median",
            "its copper plant drags the incumbent under 2.93",
            format!("{cantv:.2} Mbps"),
            cantv < 2.93,
        ),
    ];

    ExperimentResult {
        id: "ext-network-split".into(),
        title: "Per-network bandwidth split (§7.1's recovery story)".into(),
        artifacts: vec![Artifact::Table(table)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_all_match() {
        let src = crate::experiments::testworld::source();
        for result in all(src) {
            assert!(result.all_match(), "{}: {:#?}", result.id, result.findings);
            assert!(!result.artifacts.is_empty());
        }
    }
}
