//! Fig. 18 (Appendix G) — off-net population coverage for all ten
//! hypergiants across the region.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::source::DataSource;
use lacnet_offnets::detect;
use lacnet_offnets::HYPERGIANTS;
use lacnet_types::country;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let countries: Vec<_> = country::lacnic_codes().collect();
    let mut panels = Vec::new();
    let mut findings = Vec::new();

    for hg in HYPERGIANTS {
        let mut lines = Vec::new();
        for &cc in &countries {
            let series = detect::coverage_series(
                src.cert_scans(),
                hg,
                cc,
                src.operators().populations(),
                src.operators().as2org(),
            );
            if series.max_value().unwrap_or(0.0) > 0.0 {
                lines.push(Line::new(cc.as_str(), series));
            }
        }
        panels.push(Panel::new(hg.name, lines));
    }

    // The minor six must have zero Venezuelan presence throughout.
    for hg in HYPERGIANTS.iter().skip(4) {
        let ve = detect::coverage_series(
            src.cert_scans(),
            hg,
            country::VE,
            src.operators().populations(),
            src.operators().as2org(),
        );
        findings.push(Finding::claim(
            format!("{} has no Venezuelan off-nets", hg.name),
            "0%",
            format!("max {:.2}%", ve.max_value().unwrap_or(0.0)),
            ve.max_value().unwrap_or(0.0) == 0.0,
        ));
    }
    // And only minimal regional presence (a handful of countries).
    let minor_countries: usize = panels
        .iter()
        .skip(4)
        .map(|p| p.lines.len())
        .max()
        .unwrap_or(0);
    findings.push(Finding::claim(
        "minor hypergiants have minimal LACNIC presence",
        "a few countries at most",
        format!("at most {minor_countries} countries with any coverage"),
        minor_countries <= 4,
    ));

    ExperimentResult {
        id: "fig18".into(),
        title: "Off-nets of all ten hypergiants".into(),
        artifacts: vec![Artifact::Figure(Figure {
            id: "fig18".into(),
            caption: "Population coverage of off-net hosting, all hypergiants".into(),
            panels,
        })],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig18_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Figure(fig) = &r.artifacts[0] else {
            panic!()
        };
        assert_eq!(fig.panels.len(), 10);
    }
}
