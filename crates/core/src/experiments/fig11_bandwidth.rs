//! Fig. 11 — median download speeds from the M-Lab NDT archive.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_types::{country, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Run the experiment over the streamed month-country aggregate.
pub fn run(src: &DataSource) -> ExperimentResult {
    let agg = src.mlab();
    let mut series: BTreeMap<_, TimeSeries> = BTreeMap::new();
    for cc in agg.countries() {
        series.insert(cc, agg.median_series(cc));
    }
    let mean = agg.regional_mean_series();
    let ve = series.get(&country::VE).cloned().unwrap_or_default();
    let norm = ve.zip_with(&mean, |v, m| if m > 0.0 { v / m } else { 0.0 });

    // Smooth sampled medians with a 6-month trailing window for findings.
    let around =
        |s: &TimeSeries, m: MonthStamp| s.window(m.plus(-3), m.plus(3)).mean().unwrap_or(0.0);

    let m2023 = MonthStamp::new(2023, 7);
    let findings = vec![
        Finding::numeric(
            "VE median download 2023-07 (Mbps)",
            2.93,
            around(&ve, m2023),
            0.35,
        ),
        Finding::numeric(
            "UY median 2023-07",
            47.33,
            around(
                series.get(&country::UY).unwrap_or(&TimeSeries::new()),
                m2023,
            ),
            0.3,
        ),
        Finding::numeric(
            "BR median 2023-07",
            32.44,
            around(
                series.get(&country::BR).unwrap_or(&TimeSeries::new()),
                m2023,
            ),
            0.3,
        ),
        Finding::numeric(
            "CL median 2023-07",
            25.25,
            around(
                series.get(&country::CL).unwrap_or(&TimeSeries::new()),
                m2023,
            ),
            0.3,
        ),
        Finding::numeric(
            "MX median 2023-07",
            18.66,
            around(
                series.get(&country::MX).unwrap_or(&TimeSeries::new()),
                m2023,
            ),
            0.3,
        ),
        Finding::numeric(
            "AR median 2023-07",
            15.48,
            around(
                series.get(&country::AR).unwrap_or(&TimeSeries::new()),
                m2023,
            ),
            0.3,
        ),
        Finding::claim(
            "VE stagnation below 1 Mbps for over a decade",
            "sub-1 medians 2010–2021",
            {
                let window = ve.window(MonthStamp::new(2010, 6), MonthStamp::new(2021, 6));
                format!(
                    "max {:.2} Mbps in 2010–2021",
                    window.max_value().unwrap_or(0.0)
                )
            },
            {
                // The sampled median can spike on thin months; require the
                // decade *mean of medians* to stay below 1.
                ve.window(MonthStamp::new(2010, 6), MonthStamp::new(2021, 6))
                    .mean()
                    .unwrap_or(9.9)
                    < 1.0
            },
        ),
        Finding::numeric(
            "VE normalised to region, pre-2010",
            0.89,
            norm.window(MonthStamp::new(2008, 6), MonthStamp::new(2010, 6))
                .mean()
                .unwrap_or(0.0),
            0.3,
        ),
        Finding::numeric(
            "VE normalised to region, 2023",
            0.17,
            norm.window(MonthStamp::new(2023, 1), MonthStamp::new(2023, 12))
                .mean()
                .unwrap_or(0.0),
            0.4,
        ),
    ];

    let figure = Figure {
        id: "fig11".into(),
        caption: "Evolution of median download speeds in the LACNIC region".into(),
        panels: vec![
            {
                let mut lines = common::country_lines(&series);
                lines.push(Line::new("mean LACNIC", mean));
                Panel::new("countries", lines)
            },
            Panel::new("VE", vec![Line::new("VE", ve)]),
            Panel::new("VE normalised", vec![Line::new("VE / mean", norm)]),
        ],
    };

    ExperimentResult {
        id: "fig11".into(),
        title: "Bandwidth evolution".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_reproduces() {
        // The test world generates 10% of the default volume; widen the
        // estimator noise allowance by checking `all_match` still holds
        // (tolerances above are set with this in mind).
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
