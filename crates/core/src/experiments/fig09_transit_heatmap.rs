//! Fig. 9 — heatmap of the providers serving transit to CANTV for more
//! than 12 months since January 1998.

use crate::artifact::{Artifact, ExperimentResult, Finding, Heatmap};
use crate::source::DataSource;
use lacnet_bgp::analytics::ProviderPresence;
use lacnet_types::Asn;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    // The presence matrix runs through the backend's shared ConeCache, so
    // the per-month transit-neighbour sets are computed once per process
    // however many times the battery (or Fig. 8) touches them.
    let pp = ProviderPresence::compute_cached(src.topology(), Asn(8048), 12, src.cone_cache());

    let heat = Heatmap {
        id: "fig09".into(),
        caption: "Changes over time in CANTV's upstream connectivity (providers ≥ 12 months)"
            .into(),
        rows: pp.providers.iter().map(|a| a.to_string()).collect(),
        cols: pp.months.iter().map(|m| m.to_string()).collect(),
        cells: pp
            .presence
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&b| if b { Some(1.0) } else { None })
                    .collect()
            })
            .collect(),
    };

    let year_left = |asn: u32| pp.last_seen(Asn(asn)).map(|m| m.year());
    let findings = vec![
        Finding::numeric(
            "providers in the heatmap",
            18.0,
            pp.providers.len() as f64,
            0.01,
        ),
        Finding::claim(
            "Verizon (AS701) departs",
            "2013",
            format!("{:?}", year_left(701)),
            year_left(701) == Some(2013),
        ),
        Finding::claim(
            "Sprint (AS1239) departs",
            "2013",
            format!("{:?}", year_left(1239)),
            year_left(1239) == Some(2013),
        ),
        Finding::claim(
            "AT&T (AS7018) departs",
            "2013",
            format!("{:?}", year_left(7018)),
            year_left(7018) == Some(2013),
        ),
        Finding::claim(
            "GTT (AS3257/AS4436) departs",
            "2017",
            format!("{:?}/{:?}", year_left(3257), year_left(4436)),
            year_left(3257) == Some(2017) && year_left(4436) == Some(2017),
        ),
        Finding::claim(
            "Level3 (AS3356/AS3549) departs",
            "2018",
            format!("{:?}/{:?}", year_left(3356), year_left(3549)),
            year_left(3356) == Some(2018) && year_left(3549) == Some(2018),
        ),
        Finding::claim(
            "Columbus (AS23520) sole remaining US provider",
            "serving at the end",
            format!("last seen {:?}", pp.last_seen(Asn(23520))),
            pp.last_seen(Asn(23520)) == pp.months.last().copied(),
        ),
        Finding::claim(
            "Orange (AS5511) returns after inactivity",
            "two service stints",
            format!(
                "first {:?}, last {:?}",
                pp.first_seen(Asn(5511)),
                pp.last_seen(Asn(5511))
            ),
            {
                let gap = pp
                    .first_seen(Asn(5511))
                    .zip(pp.last_seen(Asn(5511)))
                    .map(|(a, b)| a.months_until(b))
                    .unwrap_or(0);
                let served = pp.months_served(Asn(5511)) as i32;
                gap > served + 24 // long dormant period in between
            },
        ),
        {
            // Cone cross-check via the shared ConeCache: providers sell
            // transit *down* to CANTV, so none of the heatmap's providers
            // may appear inside CANTV's own customer cone at the end of
            // the window.
            let last = src.topology().last_month().expect("non-empty archive");
            let cone = src.customer_cone_at(last, Asn(8048));
            let inside: Vec<&Asn> = pp.providers.iter().filter(|p| cone.contains(p)).collect();
            Finding::claim(
                "providers sit outside CANTV's customer cone",
                "no heatmap provider in the final cone",
                format!(
                    "{} of {} inside (cone size {})",
                    inside.len(),
                    pp.providers.len(),
                    cone.len()
                ),
                inside.is_empty(),
            )
        },
    ];

    ExperimentResult {
        id: "fig09".into(),
        title: "CANTV transit-provider heatmap".into(),
        artifacts: vec![Artifact::Heatmap(heat)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Heatmap(h) = &r.artifacts[0] else {
            panic!()
        };
        assert_eq!(h.rows.len(), 18);
        assert_eq!(h.cells.len(), 18);
        assert!(h.cols.len() > 300, "monthly columns since 1998");
    }
}
