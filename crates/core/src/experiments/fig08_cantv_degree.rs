//! Fig. 8 — CANTV's upstream and downstream connectivity over time.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use lacnet_bgp::analytics;
use lacnet_crisis::World;
use lacnet_types::{Asn, MonthStamp};

/// Run the experiment.
pub fn run(world: &World) -> ExperimentResult {
    let cantv = Asn(8048);
    let up = analytics::upstream_series(&world.topology, cantv);
    let down = analytics::downstream_series(&world.topology, cantv);

    let peak = up.max_value().unwrap_or(0.0);
    let trough_2020 = up.get(MonthStamp::new(2020, 6)).unwrap_or(0.0);
    let final_up = up.last().map(|(_, v)| v).unwrap_or(0.0);
    let down_growth = down.last().map(|(_, v)| v).unwrap_or(0.0)
        - down.get(MonthStamp::new(2007, 1)).unwrap_or(0.0);

    let findings = vec![
        Finding::numeric("peak upstream providers (2013)", 11.0, peak, 0.1),
        Finding::numeric("upstream providers in 2020", 3.0, trough_2020, 0.01),
        Finding::claim(
            "recent rebound in upstreams",
            "> 3 at the end of the window",
            format!("{final_up}"),
            final_up > 3.0,
        ),
        Finding::claim(
            "domestic transit expansion since 2007 nationalisation",
            "sustained downstream growth",
            format!("+{down_growth} customers since 2007"),
            down_growth >= 10.0,
        ),
    ];

    let figure = Figure {
        id: "fig08".into(),
        caption: "Variation in the upstream and downstream connectivity of CANTV-AS8048".into(),
        panels: vec![
            Panel::new("# upstreams", vec![Line::new("8048", up)]),
            Panel::new("# downstreams", vec![Line::new("8048", down)]),
        ],
    };

    ExperimentResult {
        id: "fig08".into(),
        title: "CANTV's connectivity".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_reproduces() {
        let world = crate::experiments::testworld::world();
        let r = run(world);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
