//! Fig. 8 — CANTV's upstream and downstream connectivity over time.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::source::DataSource;
use lacnet_bgp::analytics;
use lacnet_types::{Asn, MonthStamp};

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let cantv = Asn(8048);
    let up = analytics::upstream_series(src.topology(), cantv);
    let down = analytics::downstream_series(src.topology(), cantv);
    // AS-rank's transit-size view of the same exodus: CANTV's customer
    // cone, served through the world's shared ConeCache.
    let cone = src.cone_size_series(cantv);

    let peak = up.max_value().unwrap_or(0.0);
    let trough_2020 = up.get(MonthStamp::new(2020, 6)).unwrap_or(0.0);
    let final_up = up.last().map(|(_, v)| v).unwrap_or(0.0);
    let down_growth = down.last().map(|(_, v)| v).unwrap_or(0.0)
        - down.get(MonthStamp::new(2007, 1)).unwrap_or(0.0);
    let peak_cone = cone.max_value().unwrap_or(0.0);
    let peak_down = down.max_value().unwrap_or(0.0);
    let final_cone = cone.last().map(|(_, v)| v).unwrap_or(0.0);
    let final_down = down.last().map(|(_, v)| v).unwrap_or(0.0);

    let findings = vec![
        Finding::numeric("peak upstream providers (2013)", 11.0, peak, 0.1),
        Finding::numeric("upstream providers in 2020", 3.0, trough_2020, 0.01),
        Finding::claim(
            "recent rebound in upstreams",
            "> 3 at the end of the window",
            format!("{final_up}"),
            final_up > 3.0,
        ),
        Finding::claim(
            "domestic transit expansion since 2007 nationalisation",
            "sustained downstream growth",
            format!("+{down_growth} customers since 2007"),
            down_growth >= 10.0,
        ),
        Finding::claim(
            "customer cone spans the domestic customer base",
            "cone ≥ direct downstreams + self, at peak and at the end",
            format!("peak cone {peak_cone} vs peak downstreams {peak_down}; final cone {final_cone} vs final downstreams {final_down}"),
            peak_cone >= peak_down + 1.0 && final_cone >= final_down + 1.0,
        ),
    ];

    let figure = Figure {
        id: "fig08".into(),
        caption: "Variation in the upstream and downstream connectivity of CANTV-AS8048".into(),
        panels: vec![
            Panel::new("# upstreams", vec![Line::new("8048", up)]),
            Panel::new("# downstreams", vec![Line::new("8048", down)]),
            Panel::new("customer-cone size", vec![Line::new("8048", cone)]),
        ],
    };

    ExperimentResult {
        id: "fig08".into(),
        title: "CANTV's connectivity".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
