//! Fig. 16 (Appendix E) — the countries whose root replicas serve
//! Venezuelan probes, over time.

use crate::artifact::{Artifact, ExperimentResult, Finding, Heatmap};
use crate::source::DataSource;
use lacnet_atlas::campaign;
use lacnet_crisis::config::windows;
use lacnet_types::{country, sweep, CountryCode, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Run the experiment (quarterly sampling).
pub fn run(src: &DataSource) -> ExperimentResult {
    let start = windows::chaos_start();
    let end = src.config().end;
    let months: Vec<MonthStamp> = start
        .through(end)
        .filter(|m| matches!(m.month(), 1 | 4 | 7 | 10))
        .collect();

    // One origin sample per quarter, swept across worker threads and
    // merged in month order.
    let sampled = sweep::months_sweep(&months, |m| {
        campaign::origin_heatmap(&src.dns().probes, &src.dns().roots, country::VE, m, m)
    });
    let mut heat_data: BTreeMap<CountryCode, TimeSeries> = BTreeMap::new();
    for (m, partial) in sampled {
        for (cc, s) in partial {
            if let Some(v) = s.get(m) {
                heat_data.entry(cc).or_default().insert(m, v);
            }
        }
    }

    let rows: Vec<CountryCode> = heat_data.keys().copied().collect();
    let cells: Vec<Vec<Option<f64>>> = rows
        .iter()
        .map(|cc| months.iter().map(|&m| heat_data[cc].get(m)).collect())
        .collect();

    let heat = Heatmap {
        id: "fig16".into(),
        caption: "Root replicas per hosting country reached from probes in Venezuela".into(),
        rows: rows.iter().map(|c| c.to_string()).collect(),
        cols: months.iter().map(|m| m.to_string()).collect(),
        cells,
    };

    let last = *months.last().expect("window non-empty");
    let at_end = |cc: &str| -> f64 {
        heat_data
            .get(&CountryCode::of(cc))
            .and_then(|s| s.get(last))
            .unwrap_or(0.0)
    };
    let findings = vec![
        Finding::claim(
            "domestic replicas visible early",
            "VE row ≥ 2 in 2017",
            format!(
                "{:?}",
                heat_data
                    .get(&country::VE)
                    .and_then(|s| s.get(MonthStamp::new(2017, 1)))
            ),
            heat_data
                .get(&country::VE)
                .and_then(|s| s.get(MonthStamp::new(2017, 1)))
                .unwrap_or(0.0)
                >= 2.0,
        ),
        Finding::claim(
            "VE disappears as an origin",
            "no VE replicas at the end",
            format!("{}", at_end("VE")),
            at_end("VE") == 0.0,
        ),
        Finding::claim(
            "the US dominates as an origin",
            "US is the top row at the end",
            format!("US {}", at_end("US")),
            rows.iter().all(|cc| at_end(cc.as_str()) <= at_end("US")),
        ),
        Finding::claim(
            "European operators visible (GB, DE, FR, NL)",
            "all four present",
            format!(
                "GB {} DE {} FR {} NL {}",
                at_end("GB"),
                at_end("DE"),
                at_end("FR"),
                at_end("NL")
            ),
            ["GB", "DE", "FR", "NL"].iter().all(|cc| at_end(cc) >= 1.0),
        ),
        Finding::claim(
            "Colombia emerges as a nearby fallback",
            "CO present after VE's loss",
            format!("CO {}", at_end("CO")),
            at_end("CO") >= 1.0,
        ),
    ];

    ExperimentResult {
        id: "fig16".into(),
        title: "Origins of root DNS service for Venezuela".into(),
        artifacts: vec![Artifact::Heatmap(heat)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
