//! Fig. 3 — peering facilities in the LACNIC region since 2018.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_peeringdb::analytics;
use lacnet_types::country;
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let archive = src.peeringdb();
    let mut series = BTreeMap::new();
    for cc in country::lacnic_codes() {
        series.insert(cc, analytics::facility_count_series(archive, cc));
    }
    let region: Vec<_> = country::lacnic_codes().collect();
    let total = analytics::facility_total_series(archive, &region);

    let first = |s: &lacnet_types::TimeSeries| s.first().map(|(_, v)| v).unwrap_or(0.0);
    let last = |s: &lacnet_types::TimeSeries| s.last().map(|(_, v)| v).unwrap_or(0.0);

    let findings = vec![
        Finding::numeric("region facilities 2018", 180.0, first(&total), 0.05),
        Finding::numeric("region facilities 2024", 552.0, last(&total), 0.05),
        Finding::numeric(
            "Venezuela facilities 2024",
            4.0,
            last(&series[&country::VE]),
            0.01,
        ),
        Finding::numeric(
            "Brazil facilities 2018",
            102.0,
            first(&series[&country::BR]),
            0.05,
        ),
        Finding::numeric(
            "Brazil facilities 2024",
            311.0,
            last(&series[&country::BR]),
            0.05,
        ),
        Finding::numeric(
            "Mexico facilities 2024",
            45.0,
            last(&series[&country::MX]),
            0.05,
        ),
        Finding::numeric(
            "Chile facilities 2024",
            45.0,
            last(&series[&country::CL]),
            0.05,
        ),
        Finding::numeric(
            "Costa Rica facilities 2024 (state-incumbent counter-example)",
            8.0,
            last(&series[&country::CR]),
            0.05,
        ),
    ];

    let figure = Figure {
        id: "fig03".into(),
        caption: "Evolution in the number of peering facilities in the LACNIC region".into(),
        panels: vec![
            Panel::new("BR", vec![Line::new("BR", series[&country::BR].clone())]),
            Panel::new("countries", common::country_lines(&series)),
            Panel::new("VE", vec![Line::new("VE", series[&country::VE].clone())]),
            Panel::new("LACNIC", vec![Line::new("total", total)]),
        ],
    };

    ExperimentResult {
        id: "fig03".into(),
        title: "Proliferation of peering facilities".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Figure(fig) = &r.artifacts[0] else {
            panic!()
        };
        assert_eq!(fig.panels.len(), 4);
    }
}
