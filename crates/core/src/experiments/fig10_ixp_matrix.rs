//! Fig. 10 — percentage of each country's Internet population in networks
//! peering at the largest IXP of every Latin American country.

use crate::artifact::{Artifact, ExperimentResult, Finding, Heatmap};
use crate::source::DataSource;
use lacnet_peeringdb::analytics;
use lacnet_types::{country, Asn, CountryCode};
use std::collections::BTreeSet;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let region: Vec<CountryCode> = country::lacnic_codes().collect();
    let largest = analytics::largest_ixp_members(src.peeringdb(), &region);
    let pops = src.operators().populations();

    // Columns: the IXPs, ordered by name. Rows: eyeball countries.
    let mut cols: Vec<(String, Vec<Asn>)> = largest.values().cloned().collect();
    cols.sort_by(|a, b| a.0.cmp(&b.0));
    let rows: Vec<CountryCode> = region
        .iter()
        .copied()
        .filter(|cc| pops.country_total(*cc) > 0)
        .collect();

    let mut cells = Vec::new();
    for &row_cc in &rows {
        let mut row = Vec::new();
        for (_, members) in &cols {
            let set: BTreeSet<Asn> = members.iter().copied().collect();
            let share = pops.share_of(row_cc, &set) * 100.0;
            row.push((share > 0.0).then_some(share));
        }
        cells.push(row);
    }

    let heat = Heatmap {
        id: "fig10".into(),
        caption: "Percentage of countries' Internet population peering at the largest IXP of each country".into(),
        rows: rows.iter().map(|c| c.to_string()).collect(),
        cols: cols.iter().map(|(n, _)| n.clone()).collect(),
        cells: cells.clone(),
    };

    // Findings: the diagonals the paper quotes and Venezuela's absence.
    let share_at = |row: CountryCode, ixp: &str| -> f64 {
        let Some(ci) = cols.iter().position(|(n, _)| n == ixp) else {
            return 0.0;
        };
        let Some(ri) = rows.iter().position(|&r| r == row) else {
            return 0.0;
        };
        cells[ri][ci].unwrap_or(0.0)
    };
    let ve_row_total: f64 = {
        let ri = rows.iter().position(|&r| r == country::VE).unwrap_or(0);
        cells[ri].iter().flatten().sum()
    };
    let findings = vec![
        Finding::numeric("AR population at AR-IX (%)", 62.4, share_at(country::AR, "AR-IX"), 0.15),
        Finding::numeric("BR population at IX.br SP (%)", 45.53, share_at(country::BR, "IX.br (SP)"), 0.15),
        Finding::numeric("CL population at PIT Chile (%)", 49.57, share_at(country::CL, "PIT Chile (SCL)"), 0.15),
        Finding::claim(
            "no Venezuelan IXP column exists",
            "VE hosts no IXP",
            format!("{} columns, none Venezuelan", cols.len()),
            !cols.iter().any(|(n, _)| n.contains("VE")),
        ),
        Finding::claim(
            "Venezuela effectively absent from the matrix",
            "VE row ≈ 0 across regional IXPs (its only foothold, Equinix Bogotá, is not Colombia's largest IXP)",
            format!("VE row total {ve_row_total:.2}%"),
            ve_row_total < 5.0,
        ),
    ];

    ExperimentResult {
        id: "fig10".into(),
        title: "Latin American IXP population matrix".into(),
        artifacts: vec![Artifact::Heatmap(heat)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Heatmap(h) = &r.artifacts[0] else {
            panic!()
        };
        assert!(h.cols.len() >= 15, "one flagship IXP per country with one");
    }
}
