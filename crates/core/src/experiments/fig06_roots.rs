//! Fig. 6 — root DNS replicas detected via CHAOS TXT, per country.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_atlas::campaign;
use lacnet_crisis::config::windows;
use lacnet_types::{country, sweep, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Run the experiment. To keep the battery fast the campaign samples
/// twice a year rather than monthly; endpoints are exact months.
pub fn run(src: &DataSource) -> ExperimentResult {
    let start = windows::chaos_start();
    let end = src.config().end;

    // Sample months: January and July each year, plus the exact endpoints.
    let mut months: Vec<MonthStamp> = start
        .through(end)
        .filter(|m| m.month() == 1 || m.month() == 7)
        .collect();
    if months.last() != Some(&end) {
        months.push(end);
    }

    // Each sample month's campaign is independent; sweep them across
    // worker threads and merge in month order.
    let camp = campaign::ChaosCampaign::new(&src.dns().probes, &src.dns().roots);
    let sampled = sweep::months_sweep(&months, |m| {
        let obs = camp.run_month(m);
        campaign::replicas_by_country(&obs)
            .into_iter()
            .filter(|(cc, _)| country::in_lacnic(*cc))
            .map(|(cc, replicas)| (cc, replicas.len() as f64))
            .collect::<Vec<_>>()
    });
    let mut series: BTreeMap<_, TimeSeries> = BTreeMap::new();
    for (m, counts) in sampled {
        for (cc, n) in counts {
            series.entry(cc).or_default().insert(m, n);
        }
    }

    let region_total = |m: MonthStamp| -> f64 { series.values().filter_map(|s| s.get(m)).sum() };
    let t0 = region_total(MonthStamp::new(2016, 1));
    let t1 = region_total(end);
    let ve = series.get(&country::VE).cloned().unwrap_or_default();

    let at_end = |cc| -> f64 {
        series
            .get(&cc)
            .and_then(|s: &TimeSeries| s.get(end))
            .unwrap_or(0.0)
    };

    let findings = vec![
        Finding::numeric("region replicas 2016", 59.0, t0, 0.10),
        Finding::numeric("region replicas 2024", 138.0, t1, 0.07),
        Finding::numeric("region growth factor", 2.34, t1 / t0.max(1.0), 0.12),
        Finding::numeric(
            "Venezuela replicas 2016",
            2.0,
            ve.get(MonthStamp::new(2016, 1)).unwrap_or(0.0),
            0.01,
        ),
        Finding::numeric(
            "Venezuela replicas 2024",
            0.0,
            ve.get(end).unwrap_or(0.0),
            0.01,
        ),
        Finding::numeric("Brazil replicas: 2024", 41.0, at_end(country::BR), 0.05),
        Finding::numeric("Chile replicas: 2024", 20.0, at_end(country::CL), 0.05),
        Finding::numeric("Mexico replicas: 2024", 16.0, at_end(country::MX), 0.07),
        Finding::numeric("Argentina replicas: 2024", 15.0, at_end(country::AR), 0.07),
    ];

    let figure = Figure {
        id: "fig06".into(),
        caption: "Root DNS replicas per country, detected via CHAOS TXT".into(),
        panels: vec![
            Panel::new("countries", common::country_lines(&series)),
            Panel::new("VE", vec![Line::new("VE", ve)]),
            Panel::new(
                "LACNIC",
                vec![Line::new(
                    "total",
                    months.iter().map(|&m| (m, region_total(m))).collect(),
                )],
            ),
        ],
    };

    ExperimentResult {
        id: "fig06".into(),
        title: "Availability of root DNS infrastructure".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig06_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
