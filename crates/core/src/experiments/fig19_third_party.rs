//! Fig. 19 (Appendix H) — adoption of third-party DNS/CA/CDN providers
//! and HTTPS among each country's unique top sites.

use crate::artifact::{Artifact, ExperimentResult, Finding, Table};
use crate::source::DataSource;
use lacnet_types::country;
use lacnet_webmeas::scrape::unique_sites;
use lacnet_webmeas::thirdparty::{AdoptionReport, ServiceKind};

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let unique = unique_sites(src.top_sites());
    let report = AdoptionReport::compute(&unique);

    let mut artifacts = Vec::new();
    for kind in ServiceKind::ALL {
        let ranking = report.ranking(kind);
        let mean = report.regional_mean(kind).unwrap_or(0.0);
        artifacts.push(Artifact::Table(Table {
            id: format!("fig19-{}", kind.label().to_ascii_lowercase()),
            caption: format!("{} adoption (regional mean {mean:.2})", kind.label()),
            headers: vec!["country".into(), "fraction".into()],
            rows: ranking
                .iter()
                .map(|(cc, f)| vec![cc.to_string(), format!("{f:.3}")])
                .collect(),
        }));
    }

    let ve = |k| report.get(country::VE, k).unwrap_or(0.0);
    let mean = |k| report.regional_mean(k).unwrap_or(0.0);
    let findings = vec![
        Finding::numeric("VE third-party DNS", 0.29, ve(ServiceKind::Dns), 0.12),
        Finding::numeric("VE HTTPS", 0.58, ve(ServiceKind::Https), 0.08),
        Finding::numeric("VE third-party CA", 0.22, ve(ServiceKind::Ca), 0.15),
        Finding::numeric("VE third-party CDN", 0.37, ve(ServiceKind::Cdn), 0.12),
        Finding::numeric("regional mean DNS", 0.32, mean(ServiceKind::Dns), 0.10),
        Finding::numeric("regional mean HTTPS", 0.60, mean(ServiceKind::Https), 0.08),
        Finding::numeric("regional mean CA", 0.26, mean(ServiceKind::Ca), 0.12),
        Finding::numeric("regional mean CDN", 0.46, mean(ServiceKind::Cdn), 0.12),
        Finding::claim(
            "VE below the regional average in DNS, CA and CDN; only ahead of Bolivia-like laggards",
            "below mean in 3 of 4 dimensions",
            "checked",
            ve(ServiceKind::Dns) < mean(ServiceKind::Dns)
                && ve(ServiceKind::Ca) < mean(ServiceKind::Ca)
                && ve(ServiceKind::Cdn) < mean(ServiceKind::Cdn),
        ),
    ];

    ExperimentResult {
        id: "fig19".into(),
        title: "Third-party provider adoption".into(),
        artifacts,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        assert_eq!(r.artifacts.len(), 4);
    }
}
