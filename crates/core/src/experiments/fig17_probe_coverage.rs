//! Fig. 17 (Appendix F) — RIPE Atlas probes per country over time.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_crisis::config::windows;
use lacnet_types::{country, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let start = windows::chaos_start();
    let end = src.config().end;
    let probes = &src.dns().probes;

    let mut series: BTreeMap<_, TimeSeries> = BTreeMap::new();
    for cc in country::lacnic_codes() {
        let s = probes.count_series(cc, start, end);
        if s.max_value().unwrap_or(0.0) > 0.0 {
            series.insert(cc, s);
        }
    }
    let total: TimeSeries = start
        .through(end)
        .map(|m| (m, probes.active_in(m).len() as f64))
        .collect();

    let ve = series[&country::VE].clone();
    let counts = probes.counts_by_country(MonthStamp::new(2023, 6));
    let mut ranked: Vec<(usize, _)> = counts.iter().map(|(&cc, &n)| (n, cc)).collect();
    ranked.sort_by_key(|r| std::cmp::Reverse(r.0));
    let ve_rank = ranked
        .iter()
        .position(|&(_, cc)| cc == country::VE)
        .map(|i| i + 1)
        .unwrap_or(0);

    let findings = vec![
        Finding::numeric(
            "VE probes in 2016",
            10.0,
            ve.first().map(|(_, v)| v).unwrap_or(0.0),
            0.05,
        ),
        Finding::numeric(
            "VE probes in 2024",
            30.0,
            ve.last().map(|(_, v)| v).unwrap_or(0.0),
            0.05,
        ),
        Finding::numeric(
            "VE probe-count rank in the region",
            6.0,
            ve_rank as f64,
            0.2,
        ),
        Finding::claim(
            "coverage grew from 10 to 30 in the last two years of the window",
            "late growth",
            format!(
                "{} at 2021-06 → {} at the end",
                ve.get(MonthStamp::new(2021, 6)).unwrap_or(0.0),
                ve.last().map(|(_, v)| v).unwrap_or(0.0)
            ),
            ve.last().map(|(_, v)| v).unwrap_or(0.0)
                > ve.get(MonthStamp::new(2021, 6)).unwrap_or(0.0),
        ),
        Finding::claim(
            "CANTV hosts only 8 probes",
            "8",
            format!(
                "{}",
                probes
                    .all()
                    .iter()
                    .filter(|p| p.asn == lacnet_types::Asn(8048))
                    .count()
            ),
            probes
                .all()
                .iter()
                .filter(|p| p.asn == lacnet_types::Asn(8048))
                .count()
                == 8,
        ),
    ];

    let figure = Figure {
        id: "fig17".into(),
        caption: "Number of probes per country in the CHAOS TXT measurements".into(),
        panels: vec![
            Panel::new("countries", common::country_lines(&series)),
            Panel::new("VE", vec![Line::new("VE", ve)]),
            Panel::new("LACNIC", vec![Line::new("total", total)]),
        ],
    };

    ExperimentResult {
        id: "fig17".into(),
        title: "RIPE Atlas footprint in Latin America".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
