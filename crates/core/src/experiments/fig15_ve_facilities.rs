//! Fig. 15 + Table 2 (Appendix D) — networks present at Venezuelan
//! peering facilities.

use crate::artifact::{Artifact, ExperimentResult, Finding, Heatmap, Table};
use crate::source::DataSource;
use lacnet_peeringdb::analytics;
use lacnet_types::country;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let fp = analytics::FacilityPresence::compute(src.peeringdb(), country::VE);

    let heat = Heatmap {
        id: "fig15".into(),
        caption: "Number of networks present at peering facilities in Venezuela".into(),
        rows: fp.facilities.iter().map(|(_, name)| name.clone()).collect(),
        cols: fp.months.iter().map(|m| m.to_string()).collect(),
        cells: fp
            .counts
            .iter()
            .map(|row| row.iter().map(|c| c.map(|n| n as f64)).collect())
            .collect(),
    };

    let roster = analytics::facility_roster(src.peeringdb(), country::VE);
    let mut rows = Vec::new();
    for (fac, asns) in &roster {
        for asn in asns {
            let name = src
                .operators()
                .by_asn(*asn)
                .map(|o| o.name.clone())
                .or_else(|| {
                    src.peeringdb()
                        .latest()
                        .and_then(|(_, s)| s.network_by_asn(*asn).map(|n| n.name.clone()))
                })
                .unwrap_or_else(|| "?".into());
            rows.push(vec![fac.clone(), asn.raw().to_string(), name]);
        }
    }
    let table = Table {
        id: "tab02".into(),
        caption: "Networks present at Venezuela's peering facilities".into(),
        headers: vec!["Facility".into(), "ASN".into(), "AS Name".into()],
        rows,
    };

    let findings = vec![
        Finding::numeric(
            // The presence matrix keys the row by its first registered
            // name; the facility was "Lumen La Urbina" before the 2022
            // Cirion rename.
            "La Urbina (Lumen→Cirion) networks (latest)",
            11.0,
            fp.latest_count("La Urbina").unwrap_or(0) as f64,
            0.01,
        ),
        Finding::numeric(
            "GigaPOP Maracaibo networks",
            0.0,
            fp.latest_count("GigaPOP").unwrap_or(99) as f64,
            0.01,
        ),
        Finding::numeric(
            "Daycohost networks (latest)",
            3.0,
            fp.latest_count("Daycohost").unwrap_or(0) as f64,
            0.01,
        ),
        Finding::numeric(
            "Globenet Maiquetia networks (latest)",
            2.0,
            fp.latest_count("Globenet").unwrap_or(0) as f64,
            0.01,
        ),
        Finding::claim(
            "Table 2 contains no hypergiants or large transits",
            "no Google/Cloudflare/tier-1 rows",
            "roster checked",
            !roster
                .values()
                .flatten()
                .any(|a| matches!(a.raw(), 15169 | 13335 | 701 | 1239 | 3356 | 7018 | 1299)),
        ),
    ];

    ExperimentResult {
        id: "fig15".into(),
        title: "Presence at Venezuelan peering facilities".into(),
        artifacts: vec![Artifact::Heatmap(heat), Artifact::Table(table)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Table(t) = &r.artifacts[1] else {
            panic!()
        };
        assert!(t.rows.len() >= 14, "Table 2 rows: {}", t.rows.len());
    }
}
