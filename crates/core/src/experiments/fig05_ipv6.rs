//! Fig. 5 — percentage of requests over IPv6 (Meta dataset).

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_crisis::config::windows;
use lacnet_crisis::ipv6;
use lacnet_types::{country, MonthStamp};
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let start = windows::ipv6_start();
    let end = MonthStamp::new(2023, 7).min(src.config().end);

    let mut series = BTreeMap::new();
    for cc in country::lacnic_codes() {
        series.insert(cc, ipv6::adoption_series(cc, start, end));
    }
    let mean = ipv6::regional_mean_series(start, end);

    let ve_last = series[&country::VE].last().map(|(_, v)| v).unwrap_or(0.0);
    let findings = vec![
        Finding::numeric("Venezuela IPv6 adoption mid-2023 (%)", 1.5, ve_last, 0.2),
        Finding::numeric(
            "region mean adoption 2023 (%)",
            20.0,
            mean.last().map(|(_, v)| v).unwrap_or(0.0),
            0.2,
        ),
        Finding::claim(
            "Mexico and Brazil surpass ≈40%",
            "both above 40%",
            format!(
                "MX {:.1}, BR {:.1}",
                series[&country::MX].last().map(|(_, v)| v).unwrap_or(0.0),
                series[&country::BR].last().map(|(_, v)| v).unwrap_or(0.0)
            ),
            series[&country::MX].last().map(|(_, v)| v).unwrap_or(0.0) > 40.0
                && series[&country::BR].last().map(|(_, v)| v).unwrap_or(0.0) > 40.0,
        ),
        Finding::claim(
            "Chile surges during 2022",
            "steep 2022 growth",
            "see CL series",
            {
                let cl = &series[&country::CL];
                let a = cl.get(MonthStamp::new(2021, 12)).unwrap_or(0.0);
                let b = cl.get(MonthStamp::new(2023, 1)).unwrap_or(0.0);
                b > a * 1.8
            },
        ),
        Finding::claim(
            "Venezuela near zero until 2021",
            "< 0.5% before 2021",
            format!(
                "{:.2}% at 2020-12",
                series[&country::VE]
                    .get(MonthStamp::new(2020, 12))
                    .unwrap_or(0.0)
            ),
            series[&country::VE]
                .get(MonthStamp::new(2020, 12))
                .unwrap_or(1.0)
                < 0.5,
        ),
    ];

    let figure = Figure {
        id: "fig05".into(),
        caption: "Percentage of requests over IPv6 registered by Meta".into(),
        panels: vec![
            Panel::new("countries", common::country_lines(&series)),
            Panel::new("VE", vec![Line::new("VE", series[&country::VE].clone())]),
            Panel::new("LACNIC", vec![Line::new("mean", mean)]),
        ],
    };

    ExperimentResult {
        id: "fig05".into(),
        title: "IPv6 rollout".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig05_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
