//! Fig. 20 (Appendix J) — Venezuelan probes coloured by their minimum
//! RTT to Google Public DNS.

use crate::artifact::{Artifact, ExperimentResult, Finding, Table};
use crate::source::DataSource;
use lacnet_atlas::gpdns::{GpdnsCampaign, LatencyModel, RttBucket};
use lacnet_types::country;

/// Run the experiment on the latest monthly snapshot.
pub fn run(src: &DataSource) -> ExperimentResult {
    let campaign = GpdnsCampaign::new(
        &src.dns().probes,
        &src.dns().gpdns_sites,
        LatencyModel::default(),
        src.config().seed,
    );
    let month = src.config().end;
    let mut ve: Vec<_> = campaign
        .run_month(month)
        .into_iter()
        .filter(|o| o.probe_country == country::VE)
        .collect();
    ve.sort_by(|a, b| a.rtt_ms.partial_cmp(&b.rtt_ms).expect("finite RTTs"));

    let bucket_name = |b: RttBucket| match b {
        RttBucket::Under10 => "<10ms (cyan)",
        RttBucket::From10To20 => "10-20ms (green)",
        RttBucket::From20To40 => "20-40ms (yellow)",
        RttBucket::Over40 => ">40ms (red)",
    };

    let table = Table {
        id: "fig20".into(),
        caption: format!("Venezuelan probes and their min-RTT to GPDNS, {month}"),
        headers: vec![
            "probe".into(),
            "lat".into(),
            "lon".into(),
            "rtt_ms".into(),
            "bucket".into(),
        ],
        rows: ve
            .iter()
            .map(|o| {
                vec![
                    o.probe.to_string(),
                    format!("{:.2}", o.location.lat_deg()),
                    format!("{:.2}", o.location.lon_deg()),
                    format!("{:.1}", o.rtt_ms),
                    bucket_name(RttBucket::of(o.rtt_ms)).into(),
                ]
            })
            .collect(),
    };

    // The paper's geographic gradient: fast probes sit in the west
    // (Colombian border / Maracaibo), slow ones in the east (Caracas).
    let fast: Vec<_> = ve.iter().filter(|o| o.rtt_ms < 20.0).collect();
    let slow: Vec<_> = ve.iter().filter(|o| o.rtt_ms > 30.0).collect();
    let fast_mean_lon =
        fast.iter().map(|o| o.location.lon_deg()).sum::<f64>() / fast.len().max(1) as f64;
    let slow_mean_lon =
        slow.iter().map(|o| o.location.lon_deg()).sum::<f64>() / slow.len().max(1) as f64;

    let findings = vec![
        Finding::claim(
            "fastest probes are at the Colombian border",
            "< 20 ms only in the west (lon < −70°)",
            format!("{} fast probes, mean lon {fast_mean_lon:.1}", fast.len()),
            !fast.is_empty() && fast.iter().all(|o| o.location.lon_deg() < -70.0),
        ),
        Finding::claim(
            "latency increases with distance from the border",
            "western mean lon < eastern mean lon",
            format!("fast {fast_mean_lon:.1}° vs slow {slow_mean_lon:.1}°"),
            fast_mean_lon < slow_mean_lon,
        ),
        Finding::claim(
            "no GPDNS server inside Venezuela",
            "even the fastest probe pays a border-crossing RTT",
            format!(
                "min RTT {:.1} ms",
                ve.first().map(|o| o.rtt_ms).unwrap_or(0.0)
            ),
            ve.first().map(|o| o.rtt_ms).unwrap_or(0.0) > 5.0,
        ),
        Finding::claim(
            "fast probes avoid CANTV as upstream",
            "none of the <20 ms probes are CANTV-hosted",
            "checked against the probe registry",
            fast.iter().all(|o| {
                src.dns()
                    .probes
                    .all()
                    .iter()
                    .find(|p| p.id == o.probe)
                    .map(|p| p.asn != lacnet_types::Asn(8048))
                    .unwrap_or(false)
            }),
        ),
    ];

    ExperimentResult {
        id: "fig20".into(),
        title: "Probe map: RTT to GPDNS across Venezuela".into(),
        artifacts: vec![Artifact::Table(table)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig20_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Table(t) = &r.artifacts[0] else {
            panic!()
        };
        assert_eq!(t.rows.len(), 30, "all 30 VE probes mapped");
    }
}
