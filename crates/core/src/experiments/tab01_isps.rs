//! Table 1 — the ten largest Internet service providers in Venezuela by
//! estimated Internet population.

use crate::artifact::{Artifact, ExperimentResult, Finding, Table};
use crate::source::DataSource;
use lacnet_types::{country, Asn};

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let pops = src.operators().populations();
    let ranked = pops.ranked(country::VE);
    let total = pops.country_total(country::VE);
    let top10: Vec<(Asn, u64)> = ranked.iter().take(10).copied().collect();
    let top10_sum: u64 = top10.iter().map(|&(_, u)| u).sum();

    let rows: Vec<Vec<String>> = top10
        .iter()
        .map(|&(asn, users)| {
            let name = src
                .operators()
                .by_asn(asn)
                .map(|o| o.name.clone())
                .unwrap_or_else(|| "?".into());
            vec![
                asn.raw().to_string(),
                name,
                users.to_string(),
                format!("{:.2}", users as f64 / total as f64 * 100.0),
            ]
        })
        .collect();

    let table = Table {
        id: "tab01".into(),
        caption: "Ten largest Internet service providers in Venezuela".into(),
        headers: vec!["ASN".into(), "AS Name".into(), "Users".into(), "%".into()],
        rows,
    };

    let cantv_share = top10
        .first()
        .map(|&(_, u)| u as f64 / total as f64 * 100.0)
        .unwrap_or(0.0);
    let findings = vec![
        Finding::claim(
            "CANTV-AS8048 leads the market",
            "rank 1",
            format!("rank 1 is AS{}", top10[0].0.raw()),
            top10[0].0 == Asn(8048),
        ),
        Finding::numeric("CANTV share (%)", 21.50, cantv_share, 0.01),
        Finding::numeric(
            "top-10 cumulative share (%)",
            77.18,
            top10_sum as f64 / total as f64 * 100.0,
            0.01,
        ),
        Finding::claim(
            "Telemic (Inter) is the closest competitor at roughly half",
            "AS21826 rank 2",
            format!("rank 2 is AS{}", top10[1].0.raw()),
            top10[1].0 == Asn(21826),
        ),
    ];

    ExperimentResult {
        id: "tab01".into(),
        title: "Composition of Venezuela's Internet user base".into(),
        artifacts: vec![Artifact::Table(table)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab01_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Table(t) = &r.artifacts[0] else {
            panic!()
        };
        assert_eq!(t.rows.len(), 10);
        assert_eq!(t.rows[0][0], "8048");
        assert_eq!(t.rows[0][2], "4330868");
    }
}
