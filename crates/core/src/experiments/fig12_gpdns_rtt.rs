//! Fig. 12 — median RTT to Google Public DNS per country.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_atlas::gpdns::{GpdnsCampaign, LatencyModel};
use lacnet_crisis::config::windows;
use lacnet_types::{country, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Run the experiment: the monthly min-RTT campaign, reduced to country
/// medians, with the paper's last-6-months comparisons.
pub fn run(src: &DataSource) -> ExperimentResult {
    let campaign = GpdnsCampaign::new(
        &src.dns().probes,
        &src.dns().gpdns_sites,
        LatencyModel::default(),
        src.config().seed,
    );
    let start = windows::gpdns_start();
    let end = src.config().end;
    let series: BTreeMap<_, TimeSeries> = campaign
        .median_series(start, end)
        .into_iter()
        .filter(|(cc, _)| country::in_lacnic(*cc))
        .collect();

    let trailing = |cc: lacnet_types::CountryCode| -> f64 {
        series
            .get(&cc)
            .and_then(|s| s.trailing_mean(6))
            .unwrap_or(0.0)
    };
    let ve = trailing(country::VE);
    let regional: Vec<f64> = series.keys().map(|&cc| trailing(cc)).collect();
    let region_mean = regional.iter().sum::<f64>() / regional.len().max(1) as f64;

    let findings = vec![
        Finding::numeric("VE latency, last 6 months (ms)", 36.56, ve, 0.2),
        Finding::numeric(
            "LACNIC average, last 6 months (ms)",
            17.74,
            region_mean,
            0.25,
        ),
        Finding::numeric("VE / region ratio", 2.06, ve / region_mean.max(1e-9), 0.25),
        Finding::claim(
            "Colombia's dramatic decline (48.48 → 16.10 ms)",
            "> 25 ms improvement 2016→2023",
            {
                let co = &series[&country::CO];
                format!(
                    "{:.1} → {:.1} ms",
                    co.window(MonthStamp::new(2016, 1), MonthStamp::new(2016, 6))
                        .mean()
                        .unwrap_or(0.0),
                    co.trailing_mean(6).unwrap_or(0.0)
                )
            },
            {
                let co = &series[&country::CO];
                let early = co
                    .window(MonthStamp::new(2016, 1), MonthStamp::new(2016, 6))
                    .mean()
                    .unwrap_or(0.0);
                early - co.trailing_mean(6).unwrap_or(early) > 25.0
            },
        ),
        Finding::claim(
            "VE latency several times its peers'",
            "≥ 2× BR, ≥ 1.5× MX",
            format!(
                "BR {:.1}, MX {:.1}, VE {ve:.1}",
                trailing(country::BR),
                trailing(country::MX)
            ),
            ve > 2.0 * trailing(country::BR) && ve > 1.2 * trailing(country::MX),
        ),
    ];

    let ve_series = series.get(&country::VE).cloned().unwrap_or_default();
    let region_series = {
        // Mean of country medians per month.
        let refs: Vec<&TimeSeries> = series.values().collect();
        lacnet_types::series::mean_of(&refs)
    };

    let figure = Figure {
        id: "fig12".into(),
        caption: "Median RTT to Google Public DNS in the LACNIC region".into(),
        panels: vec![
            Panel::new("countries", common::country_lines(&series)),
            Panel::new("VE", vec![Line::new("VE", ve_series)]),
            Panel::new("LACNIC", vec![Line::new("mean of medians", region_series)]),
        ],
    };

    ExperimentResult {
        id: "fig12".into(),
        title: "Access to Google Public DNS".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
