//! One module per paper artifact. [`all`] runs the full battery.

use crate::artifact::ExperimentResult;
use crate::source::DataSource;

pub mod fig01_macro;
pub mod fig02_address_space;
pub mod fig03_facilities;
pub mod fig04_cables;
pub mod fig05_ipv6;
pub mod fig06_roots;
pub mod fig07_offnets;
pub mod fig08_cantv_degree;
pub mod fig09_transit_heatmap;
pub mod fig10_ixp_matrix;
pub mod fig11_bandwidth;
pub mod fig12_gpdns_rtt;
pub mod fig13_gdp_ranks;
pub mod fig14_prefix_heatmap;
pub mod fig15_ve_facilities;
pub mod fig16_root_origins;
pub mod fig17_probe_coverage;
pub mod fig18_all_hypergiants;
pub mod fig19_third_party;
pub mod fig20_probe_map;
pub mod fig21_us_ixps;
pub mod tab01_isps;

/// Shared helpers for the experiment modules.
pub(crate) mod common {
    use crate::artifact::Line;
    use lacnet_types::{country, CountryCode, TimeSeries};
    use std::collections::BTreeMap;

    /// The comparable peers highlighted in vivid colours in most figures.
    pub fn peers() -> Vec<CountryCode> {
        country::COMPARABLE_PEERS.to_vec()
    }

    /// Build one line per country from a map of series, peers first.
    pub fn country_lines(series: &BTreeMap<CountryCode, TimeSeries>) -> Vec<Line> {
        let peers = peers();
        let mut lines: Vec<Line> = Vec::new();
        for &cc in &peers {
            if let Some(s) = series.get(&cc) {
                lines.push(Line::new(cc.as_str(), s.clone()));
            }
        }
        if let Some(s) = series.get(&country::VE) {
            lines.push(Line::new("VE", s.clone()));
        }
        for (cc, s) in series {
            if *cc != country::VE && !peers.contains(cc) {
                lines.push(Line::new(cc.as_str(), s.clone()));
            }
        }
        lines
    }
}

/// Run every experiment in paper order, distributing the battery across
/// worker threads. The battery itself lives in [`crate::registry`] — the
/// one list `vzla-report`, `lacnet-serve` and the golden suite all
/// consume. The result is identical — byte for byte once rendered — to
/// [`all_serial`]; `tests/parallel_equivalence.rs` holds that invariant.
pub fn all(source: &DataSource) -> Vec<ExperimentResult> {
    lacnet_types::sweep::parallel_map(&crate::registry::paper_battery(), |run| run(source))
}

/// Run every experiment in paper order on the calling thread — the
/// reference implementation the parallel battery is checked against.
pub fn all_serial(source: &DataSource) -> Vec<ExperimentResult> {
    crate::registry::paper_battery()
        .into_iter()
        .map(|run| run(source))
        .collect()
}

/// Shared lazily-generated world for the experiment test modules — world
/// generation takes seconds, so the test binary builds it once.
#[cfg(test)]
pub(crate) mod testworld {
    use crate::source::DataSource;
    use lacnet_crisis::{World, WorldConfig};
    use std::sync::OnceLock;

    static WORLD: OnceLock<World> = OnceLock::new();
    static SOURCE: OnceLock<DataSource<'static>> = OnceLock::new();

    /// The shared test world.
    pub fn world() -> &'static World {
        WORLD.get_or_init(|| World::generate(WorldConfig::test()))
    }

    /// The shared test world behind the in-memory [`DataSource`] the
    /// experiment tests run against.
    pub fn source() -> &'static DataSource<'static> {
        SOURCE.get_or_init(|| DataSource::in_memory(world()))
    }
}
