//! One module per paper artifact. [`all`] runs the full battery.

use crate::artifact::ExperimentResult;
use lacnet_crisis::World;

pub mod fig01_macro;
pub mod fig02_address_space;
pub mod fig03_facilities;
pub mod fig04_cables;
pub mod fig05_ipv6;
pub mod fig06_roots;
pub mod fig07_offnets;
pub mod fig08_cantv_degree;
pub mod fig09_transit_heatmap;
pub mod fig10_ixp_matrix;
pub mod fig11_bandwidth;
pub mod fig12_gpdns_rtt;
pub mod fig13_gdp_ranks;
pub mod fig14_prefix_heatmap;
pub mod fig15_ve_facilities;
pub mod fig16_root_origins;
pub mod fig17_probe_coverage;
pub mod fig18_all_hypergiants;
pub mod fig19_third_party;
pub mod fig20_probe_map;
pub mod fig21_us_ixps;
pub mod tab01_isps;

/// Shared helpers for the experiment modules.
pub(crate) mod common {
    use crate::artifact::Line;
    use lacnet_types::{country, CountryCode, TimeSeries};
    use std::collections::BTreeMap;

    /// The comparable peers highlighted in vivid colours in most figures.
    pub fn peers() -> Vec<CountryCode> {
        country::COMPARABLE_PEERS.to_vec()
    }

    /// Build one line per country from a map of series, peers first.
    pub fn country_lines(series: &BTreeMap<CountryCode, TimeSeries>) -> Vec<Line> {
        let mut lines: Vec<Line> = Vec::new();
        for cc in peers() {
            if let Some(s) = series.get(&cc) {
                lines.push(Line::new(cc.as_str(), s.clone()));
            }
        }
        if let Some(s) = series.get(&country::VE) {
            lines.push(Line::new("VE", s.clone()));
        }
        for (cc, s) in series {
            if *cc != country::VE && !peers().contains(cc) {
                lines.push(Line::new(cc.as_str(), s.clone()));
            }
        }
        lines
    }
}

/// Run every experiment in paper order.
pub fn all(world: &World) -> Vec<ExperimentResult> {
    vec![
        fig01_macro::run(world),
        fig02_address_space::run(world),
        fig03_facilities::run(world),
        fig04_cables::run(world),
        fig05_ipv6::run(world),
        fig06_roots::run(world),
        fig07_offnets::run(world),
        fig08_cantv_degree::run(world),
        fig09_transit_heatmap::run(world),
        fig10_ixp_matrix::run(world),
        fig11_bandwidth::run(world),
        fig12_gpdns_rtt::run(world),
        tab01_isps::run(world),
        fig13_gdp_ranks::run(world),
        fig14_prefix_heatmap::run(world),
        fig15_ve_facilities::run(world),
        fig16_root_origins::run(world),
        fig17_probe_coverage::run(world),
        fig18_all_hypergiants::run(world),
        fig19_third_party::run(world),
        fig20_probe_map::run(world),
        fig21_us_ixps::run(world),
    ]
}

/// Shared lazily-generated world for the experiment test modules — world
/// generation takes seconds, so the test binary builds it once.
#[cfg(test)]
pub(crate) mod testworld {
    use lacnet_crisis::{World, WorldConfig};
    use std::sync::OnceLock;

    static WORLD: OnceLock<World> = OnceLock::new();

    /// The shared test world.
    pub fn world() -> &'static World {
        WORLD.get_or_init(|| World::generate(WorldConfig::test()))
    }
}
