//! Fig. 1 — the domino effect: oil production (−81%), GDP per capita
//! (−71%), inflation (32,000% peak), population (−14%).

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::source::DataSource;
use lacnet_types::country;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let e = src.economy();
    let oil = e.oil_production_ve().clone();
    let gdp = e.gdp_per_capita(country::VE).cloned().unwrap_or_default();
    let inflation = e.inflation_ve().clone();
    let pop = e.population_ve().clone();

    // Peak-to-post-peak-trough change: the collapse the Fig. 1
    // annotations quote.
    let drop_pct = |s: &lacnet_types::TimeSeries| {
        let Some(peak) = s.max_value() else {
            return 0.0;
        };
        let peak_month = s
            .iter()
            .find(|&(_, v)| v == peak)
            .map(|(m, _)| m)
            .expect("max exists");
        let end = s.last().map(|(m, _)| m).expect("series non-empty");
        let trough = s.window(peak_month, end).min_value().unwrap_or(peak);
        if peak == 0.0 {
            0.0
        } else {
            (trough - peak) / peak * 100.0
        }
    };

    let findings = vec![
        Finding::numeric("oil production collapse (%)", -81.49, drop_pct(&oil), 0.05),
        Finding::numeric("GDP per capita decline (%)", -70.90, drop_pct(&gdp), 0.05),
        Finding::numeric(
            "inflation peak (%)",
            32_000.0,
            inflation.max_value().unwrap_or(0.0),
            0.05,
        ),
        Finding::numeric("population decline (%)", -13.85, drop_pct(&pop), 0.08),
    ];

    let figure = Figure {
        id: "fig01".into(),
        caption: "The domino effect of Venezuela's economic catastrophe".into(),
        panels: vec![
            Panel::new(
                "Oil production",
                vec![
                    Line::new("VE", oil.clone()),
                    Line::new("VE (norm)", oil.normalized_to_max()),
                ],
            ),
            Panel::new(
                "GDP per capita",
                vec![
                    Line::new("VE", gdp.clone()),
                    Line::new("VE (norm)", gdp.normalized_to_max()),
                ],
            ),
            Panel::new("Inflation rate", vec![Line::new("VE", inflation)]),
            Panel::new(
                "Population",
                vec![
                    Line::new("VE", pop.clone()),
                    Line::new("VE (norm)", pop.normalized_to_max()),
                ],
            ),
        ],
    };

    ExperimentResult {
        id: "fig01".into(),
        title: "Macro-economic collapse".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert_eq!(r.id, "fig01");
        assert_eq!(r.findings.len(), 4);
        assert!(r.all_match(), "{:#?}", r.findings);
        assert_eq!(r.artifacts.len(), 1);
    }
}
