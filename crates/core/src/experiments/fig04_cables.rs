//! Fig. 4 — expansion of submarine cable networks in the LACNIC region.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_types::{country, Date, MonthStamp};
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let map = src.cables();
    let start = MonthStamp::new(1990, 1);
    let end = src.config().end;

    let mut series = BTreeMap::new();
    for cc in country::lacnic_codes() {
        series.insert(cc, map.count_series(cc, start, end));
    }
    let region: Vec<_> = country::lacnic_codes().collect();
    let total = map.region_series(&region, start, end);

    let added_ve = map.added_between(country::VE, Date::ymd(2004, 1, 1), end.last_day());

    let findings = vec![
        Finding::numeric(
            "region cables in 2000",
            13.0,
            total.get(MonthStamp::new(2000, 12)).unwrap_or(0.0),
            0.01,
        ),
        Finding::numeric(
            "region cables in 2024",
            54.0,
            total.last().map(|(_, v)| v).unwrap_or(0.0),
            0.02,
        ),
        Finding::claim(
            "Venezuela's only addition in the past decade",
            "ALBA (to Cuba)",
            added_ve
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>()
                .join(", "),
            added_ve.len() == 1 && added_ve[0].lands_in(country::CU),
        ),
        Finding::numeric(
            "Brazil cables 2024",
            17.0,
            series[&country::BR].last().map(|(_, v)| v).unwrap_or(0.0),
            0.01,
        ),
        Finding::numeric(
            "Colombia cables 2024",
            13.0,
            series[&country::CO].last().map(|(_, v)| v).unwrap_or(0.0),
            0.01,
        ),
        Finding::numeric(
            "Chile cables 2024",
            9.0,
            series[&country::CL].last().map(|(_, v)| v).unwrap_or(0.0),
            0.01,
        ),
        Finding::numeric(
            "Argentina cables 2024",
            9.0,
            series[&country::AR].last().map(|(_, v)| v).unwrap_or(0.0),
            0.01,
        ),
    ];

    let figure = Figure {
        id: "fig04".into(),
        caption: "Expansion of Submarine Cable Networks in the LACNIC Region".into(),
        panels: vec![
            Panel::new("countries", common::country_lines(&series)),
            Panel::new(
                "Venezuela",
                vec![Line::new("VE", series[&country::VE].clone())],
            ),
            Panel::new("LACNIC", vec![Line::new("total", total)]),
        ],
    };

    ExperimentResult {
        id: "fig04".into(),
        title: "Submarine connectivity".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
    }
}
