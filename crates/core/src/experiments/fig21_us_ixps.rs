//! Fig. 21 (Appendix I) — Latin American networks at IXPs in the United
//! States: population share and AS counts.

use crate::artifact::{Artifact, ExperimentResult, Finding, Heatmap};
use crate::source::DataSource;
use lacnet_peeringdb::analytics;
use lacnet_types::{country, Asn, CountryCode};
use std::collections::BTreeSet;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let us_ixps = analytics::ixp_members_in(src.peeringdb(), country::US);
    let pops = src.operators().populations();
    let region: Vec<CountryCode> = country::lacnic_codes().collect();

    // Country of each member AS, from the operator cast.
    let country_of = |asn: Asn| src.operators().by_asn(asn).map(|o| o.country);

    let mut rows: Vec<CountryCode> = Vec::new();
    let mut share_cells: Vec<Vec<Option<f64>>> = Vec::new();
    let mut count_cells: Vec<Vec<Option<f64>>> = Vec::new();
    for &cc in &region {
        let mut share_row = Vec::new();
        let mut count_row = Vec::new();
        let mut any = false;
        for (_, members) in &us_ixps {
            let domestic: BTreeSet<Asn> = members
                .iter()
                .copied()
                .filter(|&a| country_of(a) == Some(cc))
                .collect();
            if domestic.is_empty() {
                share_row.push(None);
                count_row.push(None);
            } else {
                any = true;
                share_row.push(Some(pops.share_of(cc, &domestic) * 100.0));
                count_row.push(Some(domestic.len() as f64));
            }
        }
        if any {
            rows.push(cc);
            share_cells.push(share_row);
            count_cells.push(count_row);
        }
    }

    let cols: Vec<String> = us_ixps.iter().map(|(n, _)| n.clone()).collect();
    let shares = Heatmap {
        id: "fig21-eyeballs".into(),
        caption: "% of countries' Internet population at US IXPs".into(),
        rows: rows.iter().map(|c| c.to_string()).collect(),
        cols: cols.clone(),
        cells: share_cells,
    };
    let counts = Heatmap {
        id: "fig21-ases".into(),
        caption: "# of ASes per country at US IXPs".into(),
        rows: rows.iter().map(|c| c.to_string()).collect(),
        cols,
        cells: count_cells,
    };

    // Venezuela's aggregate presence.
    let mut ve_networks: BTreeSet<Asn> = BTreeSet::new();
    for (_, members) in &us_ixps {
        for &a in members {
            if country_of(a) == Some(country::VE) {
                ve_networks.insert(a);
            }
        }
    }
    let ve_share = pops.share_of(country::VE, &ve_networks) * 100.0;

    // Brazil and Mexico spread across most exchanges.
    let presence_breadth = |cc: CountryCode| -> usize {
        us_ixps
            .iter()
            .filter(|(_, members)| members.iter().any(|&a| country_of(a) == Some(cc)))
            .count()
    };

    let findings = vec![
        Finding::numeric(
            "VE networks at US IXPs",
            7.0,
            ve_networks.len() as f64,
            0.01,
        ),
        Finding::numeric("VE population share at US IXPs (%)", 7.0, ve_share, 0.15),
        Finding::claim(
            "BR/MX networks present across most US exchanges",
            "breadth > half the columns",
            format!(
                "BR at {}, MX at {} of {} exchanges",
                presence_breadth(country::BR),
                presence_breadth(country::MX),
                us_ixps.len()
            ),
            presence_breadth(country::BR) * 2 >= us_ixps.len()
                && presence_breadth(country::MX) * 2 >= us_ixps.len(),
        ),
        Finding::claim(
            "Uruguay: few exchanges, large population share",
            "UY present at ≤ 4 exchanges with > 40% share somewhere",
            "checked",
            {
                let breadth = presence_breadth(country::UY);
                let ri = rows.iter().position(|&r| r == country::UY);
                let max_share = ri
                    .map(|i| {
                        shares.cells[i]
                            .iter()
                            .flatten()
                            .fold(0.0f64, |a, &b| a.max(b))
                    })
                    .unwrap_or(0.0);
                breadth <= 4 && max_share > 40.0
            },
        ),
    ];

    ExperimentResult {
        id: "fig21".into(),
        title: "Latin American networks at US IXPs".into(),
        artifacts: vec![Artifact::Heatmap(shares), Artifact::Heatmap(counts)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig21_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        assert_eq!(r.artifacts.len(), 2);
    }
}
