//! Fig. 7 — population coverage of Google/Akamai/Facebook/Netflix
//! off-nets, 2013–2021.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::source::DataSource;
use lacnet_offnets::detect;
use lacnet_offnets::hypergiants::by_name;
use lacnet_types::country;

/// The figure's four providers.
pub const FIG7_PROVIDERS: [&str; 4] = ["Google", "Akamai", "Facebook", "Netflix"];

/// The figure's six countries.
fn fig7_countries() -> Vec<lacnet_types::CountryCode> {
    vec![
        country::AR,
        country::BR,
        country::CL,
        country::CO,
        country::MX,
        country::VE,
    ]
}

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let mut panels = Vec::new();
    let mut findings = Vec::new();

    for name in FIG7_PROVIDERS {
        let hg = by_name(name).expect("catalogued hypergiant");
        let mut lines = Vec::new();
        for cc in fig7_countries() {
            let series = detect::coverage_series(
                src.cert_scans(),
                hg,
                cc,
                src.operators().populations(),
                src.operators().as2org(),
            );
            lines.push(Line::new(cc.as_str(), series));
        }
        panels.push(Panel::new(name, lines));
    }

    // VE mean coverage per provider (§5.5's ranking metric).
    for (name, paper_mean, tol) in [
        ("Google", 56.88, 0.15),
        ("Akamai", 35.74, 0.15),
        ("Facebook", 28.33, 0.25),
        ("Netflix", 5.87, 0.4),
    ] {
        let measured =
            lacnet_crisis::cdn::ve_mean_coverage(src.operators(), src.cert_scans(), name);
        findings.push(Finding::numeric(
            format!("VE mean coverage, {name} (%)"),
            paper_mean,
            measured,
            tol,
        ));
    }
    // The dual trend: early providers in VE pre-crisis, late ones modest.
    let netflix = by_name("Netflix").unwrap();
    let google = by_name("Google").unwrap();
    let hosts_2014 = detect::detect_offnets(&src.cert_scans()[1], google);
    let ve_google_2014 = detect::population_coverage(
        &hosts_2014,
        country::VE,
        src.operators().populations(),
        src.operators().as2org(),
    );
    let hosts_2016 = detect::detect_offnets(&src.cert_scans()[3], netflix);
    let ve_netflix_2016 = detect::population_coverage(
        &hosts_2016,
        country::VE,
        src.operators().populations(),
        src.operators().as2org(),
    );
    findings.push(Finding::claim(
        "dual trend: Google established pre-crisis, Netflix delayed",
        "Google 2014 coverage high, Netflix 2016 ≈ 0",
        format!("Google 2014: {ve_google_2014:.1}%, Netflix 2016: {ve_netflix_2016:.1}%"),
        ve_google_2014 > 30.0 && ve_netflix_2016 < 1.0,
    ));

    ExperimentResult {
        id: "fig07".into(),
        title: "Hypergiant off-net population coverage".into(),
        artifacts: vec![Artifact::Figure(Figure {
            id: "fig07".into(),
            caption: "Share of each country's Internet population in networks hosting off-nets"
                .into(),
            panels,
        })],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig07_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Figure(fig) = &r.artifacts[0] else {
            panic!()
        };
        assert_eq!(fig.panels.len(), 4);
        assert_eq!(fig.panels[0].lines.len(), 6);
    }
}
