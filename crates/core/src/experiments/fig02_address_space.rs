//! Fig. 2 — CANTV vs Telefónica de Venezuela: share and absolute size of
//! the announced address space, monthly since 2008.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Line, Panel};
use crate::source::DataSource;
use lacnet_crisis::config::windows;
use lacnet_types::{sweep, Asn, TimeSeries};

/// Run the experiment. Joins monthly pfx2as snapshots (announced) against
/// the delegation ledger (allocated) the way §4 describes.
pub fn run(src: &DataSource) -> ExperimentResult {
    let start = windows::pfx2as_start();
    let end = src.config().end;
    let cantv = Asn(8048);
    let telefonica = Asn(6306);

    // The share denominator is Venezuela's announced space; in the
    // generated world all VE announcements come from VE-registered
    // holders, so the ledger's VE membership identifies them. The ledger
    // scan does not depend on the month, so it runs once.
    let ve_holders: Vec<Asn> = {
        let mut holders: Vec<Asn> = src
            .ledger()
            .entries()
            .iter()
            .filter(|a| a.country == lacnet_types::country::VE)
            .map(|a| a.holder)
            .collect();
        holders.sort_unstable();
        holders.dedup();
        holders
    };

    let monthly = sweep::month_range(start, end, |m| {
        let table = src.pfx2as_at(m);
        let ve_total: u64 = ve_holders.iter().map(|&h| table.address_space_of(h)).sum();
        (
            ve_total,
            table.address_space_of(cantv),
            table.address_space_of(telefonica),
        )
    });

    let mut cantv_share = TimeSeries::new();
    let mut telefonica_share = TimeSeries::new();
    let mut cantv_abs = TimeSeries::new();
    let mut telefonica_abs = TimeSeries::new();
    for (m, (ve_total, c, t)) in monthly {
        if ve_total > 0 {
            cantv_share.insert(m, c as f64 / ve_total as f64);
            telefonica_share.insert(m, t as f64 / ve_total as f64);
        }
        cantv_abs.insert(m, c as f64);
        telefonica_abs.insert(m, t as f64);
    }

    // Findings.
    let cantv_mean_share = cantv_share.mean().unwrap_or(0.0);
    let cantv_peak_share = cantv_share.max_value().unwrap_or(0.0);
    // Gap at Telefónica's closest approach (pre-withdrawal window).
    let gap = cantv_abs
        .window(
            start,
            lacnet_crisis::addressing::withdrawal_start().plus(-1),
        )
        .zip_with(
            &telefonica_abs,
            |c, t| if c > 0.0 { (c - t) / c } else { 1.0 },
        )
        .min_value()
        .unwrap_or(1.0);
    // Telefónica's announced-space contraction during the withdrawal.
    let before = telefonica_abs
        .get(lacnet_crisis::addressing::withdrawal_start().plus(-6))
        .unwrap_or(0.0);
    let during = telefonica_abs
        .get(lacnet_crisis::addressing::withdrawal_start().plus(12))
        .unwrap_or(0.0);
    let after = telefonica_abs
        .get(lacnet_crisis::addressing::withdrawal_end().plus(2))
        .unwrap_or(0.0);

    let findings = vec![
        Finding::numeric(
            "CANTV mean share of VE announced space",
            0.43,
            cantv_mean_share,
            0.35,
        ),
        Finding::numeric("CANTV peak share", 0.69, cantv_peak_share, 0.15),
        Finding::numeric("minimum CANTV−Telefónica gap (fraction)", 0.11, gap, 0.8),
        Finding::claim(
            "Telefónica announced-space contraction 2016→ and 2023 return",
            "shrinks then recovers",
            format!("{before:.0} → {during:.0} → {after:.0}"),
            during < before && after > during,
        ),
    ];

    let figure = Figure {
        id: "fig02".into(),
        caption: "Evolution of announced address space: CANTV-AS8048 vs Telefónica-AS6306".into(),
        panels: vec![
            Panel::new(
                "% addr. space",
                vec![
                    Line::new("CANTV-AS8048", cantv_share),
                    Line::new("Telefonica-AS6306", telefonica_share),
                ],
            ),
            Panel::new(
                "# addr. space",
                vec![
                    Line::new("CANTV-AS8048", cantv_abs),
                    Line::new("Telefonica-AS6306", telefonica_abs),
                ],
            ),
        ],
    };

    ExperimentResult {
        id: "fig02".into(),
        title: "CANTV vs Telefónica address space".into(),
        artifacts: vec![Artifact::Figure(figure)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig02_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Figure(fig) = &r.artifacts[0] else {
            panic!("figure expected")
        };
        assert_eq!(fig.panels.len(), 2);
        // Share series covers the window monthly.
        assert!(fig.panels[0].lines[0].series.len() > 150);
    }
}
