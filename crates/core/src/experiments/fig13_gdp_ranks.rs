//! Fig. 13 (Appendix B) — GDP per capita across the region with
//! Venezuela's rank annotated every five years.

use crate::artifact::{Artifact, ExperimentResult, Figure, Finding, Panel, Table};
use crate::experiments::common;
use crate::source::DataSource;
use lacnet_types::{country, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(src: &DataSource) -> ExperimentResult {
    let e = src.economy();
    let mut series: BTreeMap<_, TimeSeries> = BTreeMap::new();
    for &cc in e.imf_countries() {
        if let Some(s) = e.gdp_per_capita(cc) {
            series.insert(cc, s.clone());
        }
    }

    // Rank annotations every five years.
    let mut rank_rows = Vec::new();
    let mut ranks = BTreeMap::new();
    for year in (1980..=2020).step_by(5) {
        let m = MonthStamp::new(year, 1);
        if let Some(r) = e.gdp_rank(country::VE, m) {
            ranks.insert(year, r);
            rank_rows.push(vec![year.to_string(), r.to_string()]);
        }
    }

    let n = e.imf_countries().len();
    let findings =
        vec![
        Finding::numeric("VE rank 1980", 3.0, ranks.get(&1980).copied().unwrap_or(99) as f64, 0.01),
        Finding::claim(
            "VE second wealthiest by 1985",
            "rank 2",
            format!("rank {}", ranks.get(&1985).copied().unwrap_or(99)),
            ranks.get(&1985).copied().unwrap_or(99) <= 3,
        ),
        Finding::claim(
            "mid-pack through the 1990s–2000s",
            "ranks 6–9",
            format!("2005 rank {}", ranks.get(&2005).copied().unwrap_or(99)),
            (3..=10).contains(&ranks.get(&2005).copied().unwrap_or(99)),
        ),
        Finding::claim(
            "collapse after 2013 (18th by 2015, 23rd by 2020 in the paper's 29-country universe)",
            "bottom quartile by 2020",
            format!("2020 rank {} of {n}", ranks.get(&2020).copied().unwrap_or(0)),
            ranks.get(&2020).copied().unwrap_or(0) * 4 >= n * 3,
        ),
    ];

    let figure = Figure {
        id: "fig13".into(),
        caption: "GDP per capita in the LACNIC region since 1980".into(),
        panels: vec![Panel::new("countries", common::country_lines(&series))],
    };
    let table = Table {
        id: "fig13-ranks".into(),
        caption: "Venezuela's GDP-per-capita rank every five years".into(),
        headers: vec!["year".into(), "rank".into()],
        rows: rank_rows,
    };

    ExperimentResult {
        id: "fig13".into(),
        title: "GDP-per-capita ranks".into(),
        artifacts: vec![Artifact::Figure(figure), Artifact::Table(table)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        assert_eq!(r.artifacts.len(), 2);
    }
}
