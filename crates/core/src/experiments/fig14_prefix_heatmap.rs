//! Fig. 14 (Appendix C) — per-prefix visibility of Telefónica de
//! Venezuela's announcements, 2016–2024.

use crate::artifact::{Artifact, ExperimentResult, Finding, Heatmap};
use crate::source::DataSource;
use lacnet_crisis::addressing;
use lacnet_types::{sweep, Asn, Ipv4Net, MonthStamp};
use std::collections::BTreeMap;

/// Run the experiment. Columns are quarterly to match the paper's
/// rendering; visibility is read from the monthly pfx2as snapshots.
pub fn run(src: &DataSource) -> ExperimentResult {
    let telefonica = Asn(6306);
    let start = MonthStamp::new(2016, 1);
    let end = src.config().end;
    let months: Vec<MonthStamp> = start
        .through(end)
        .filter(|m| matches!(m.month(), 3 | 6 | 9 | 12))
        .collect();

    // Union of all prefixes ever announced by Telefónica over the window:
    // read each column's snapshot across worker threads, then merge in
    // column order.
    let columns = sweep::months_sweep(&months, |m| src.pfx2as_at(m).prefixes_of(telefonica));
    let mut prefixes: BTreeMap<Ipv4Net, Vec<bool>> = BTreeMap::new();
    for (col, (_, announced)) in columns.into_iter().enumerate() {
        for p in announced {
            prefixes
                .entry(p)
                .or_insert_with(|| vec![false; months.len()])[col] = true;
        }
    }
    // Rows created late start with `false` columns, which is correct.
    let rows: Vec<Ipv4Net> = prefixes.keys().copied().collect();
    let cells: Vec<Vec<Option<f64>>> = prefixes
        .values()
        .map(|row| {
            row.iter()
                .map(|&b| if b { Some(1.0) } else { None })
                .collect()
        })
        .collect();

    let heat = Heatmap {
        id: "fig14".into(),
        caption: "Prefixes announced by Telefónica de Venezuela (AS6306), 2016–2024".into(),
        rows: rows.iter().map(|p| p.to_string()).collect(),
        cols: months.iter().map(|m| m.to_string()).collect(),
        cells,
    };

    // Findings: /17s disappear around June 2016 and the space returns in
    // 2023 as larger blocks.
    let col_of = |m: MonthStamp| months.iter().position(|&x| x == m);
    let visible_17s_at = |m: MonthStamp| -> usize {
        col_of(m)
            .map(|c| {
                prefixes
                    .iter()
                    .filter(|(p, row)| p.len() == 17 && row[c])
                    .count()
            })
            .unwrap_or(0)
    };
    let visible_aggregates_at = |m: MonthStamp| -> usize {
        col_of(m)
            .map(|c| {
                prefixes
                    .iter()
                    .filter(|(p, row)| p.len() < 17 && row[c])
                    .count()
            })
            .unwrap_or(0)
    };

    let pre = visible_17s_at(MonthStamp::new(2016, 3));
    let mid = visible_17s_at(MonthStamp::new(2019, 3));
    let post_aggr = visible_aggregates_at(
        end.plus(-(end.month() as i32 % 3))
            .max(MonthStamp::new(2023, 9)),
    );

    let findings = vec![
        Finding::claim(
            "several /17s vanish around June 2016",
            "fewer /17s visible after mid-2016",
            format!("{pre} /17s in 2016-03 → {mid} in 2019-03"),
            mid < pre && pre > 0,
        ),
        Finding::claim(
            "blocks reappear in June 2023 as larger aggregates",
            "aggregate (< /17) announcements in late 2023",
            format!("{post_aggr} aggregate prefixes visible"),
            post_aggr > 0,
        ),
        Finding::claim(
            "allocated space unchanged during the gap",
            "ledger shows no contraction",
            "ledger is append-only",
            {
                let l = src.ledger();
                l.space_of_holder(telefonica, addressing::withdrawal_end().first_day())
                    >= l.space_of_holder(telefonica, addressing::withdrawal_start().first_day())
            },
        ),
    ];

    ExperimentResult {
        id: "fig14".into(),
        title: "Telefónica prefix visibility".into(),
        artifacts: vec![Artifact::Heatmap(heat)],
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_reproduces() {
        let src = crate::experiments::testworld::source();
        let r = run(src);
        assert!(r.all_match(), "{:#?}", r.findings);
        let Artifact::Heatmap(h) = &r.artifacts[0] else {
            panic!()
        };
        assert!(h.rows.len() >= 15, "rows: {}", h.rows.len());
    }
}
