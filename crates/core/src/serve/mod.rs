//! `lacnet-serve`: the battery as a long-running query service.
//!
//! A hand-rolled, zero-dependency HTTP/1.1 server — `std::net::TcpListener`
//! plus a fixed pool of scoped worker threads — holding a resident
//! [`DataSource`] and serving every figure series, table row and
//! extension output as a JSON (or canonical-TSV) endpoint. Routing goes
//! through [`crate::registry`], the same list `vzla-report` runs, so the
//! serving path and the batch path cannot drift; `tests/serve_http.rs`
//! proves their bytes identical against the golden fixtures.
//!
//! Responses flow through an [`LruCache`] keyed on
//! `(endpoint, query, archive fingerprint)` — the fingerprint is the
//! FNV-1a hash of `mlab/manifest.tsv`, so a re-dump invalidates every
//! cached body naturally. `/metrics` exposes per-endpoint request
//! counts, cache hit/miss counters and P²-estimated latency quantiles
//! in Prometheus text format.

pub mod metrics;

use crate::render::{canonical_tsv, result_json};
use crate::source::DataSource;
use crate::{datasets, registry};
use lacnet_types::codec;
use lacnet_types::http::{self, Limits, Request, Response};
use lacnet_types::json::Json;
use lacnet_types::lru::LruCache;
use metrics::{Metrics, Outcome};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Response-cache capacity (bodies).
    pub cache_capacity: usize,
    /// Socket read timeout — the slow-loris guard; a stalled client is
    /// dropped, never waited on forever.
    pub read_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            threads: 4,
            cache_capacity: 128,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// One cached response body.
#[derive(Clone)]
struct CachedBody {
    status: u16,
    content_type: &'static str,
    bytes: Arc<Vec<u8>>,
}

/// Everything the worker threads share: the resident data source, the
/// response cache, the metrics registry and the precomputed info bodies.
pub struct ServerState {
    source: Arc<DataSource<'static>>,
    fingerprint: String,
    cache: LruCache<(String, String, String), CachedBody>,
    metrics: Metrics,
    archive_body: String,
    endpoints_body: String,
    scenarios_body: String,
    /// Lazily generated worlds backing `/scenario/{name}/…` routes for
    /// scenarios other than the resident one, keyed by scenario name.
    /// Each entry carries its own fingerprint, so scenario-scoped
    /// responses occupy distinct LRU slots.
    scenario_sources: Mutex<std::collections::BTreeMap<String, (Arc<DataSource<'static>>, String)>>,
}

/// The archive fingerprint a source serves under: the FNV-1a hash of
/// `mlab/manifest.tsv` for archive backends (a re-dump rewrites the
/// manifest, so the fingerprint — and every cache key — changes; a
/// scenario switch rewrites every shard fingerprint in it), the hash of
/// the generating config — folded with the scenario fingerprint for
/// non-default scenarios — for in-memory backends.
pub fn source_fingerprint(source: &DataSource) -> String {
    match source {
        DataSource::Archive(a) => {
            let manifest =
                std::fs::read(a.root().join(datasets::MLAB_MANIFEST)).unwrap_or_default();
            format!("{:016x}", codec::fnv1a64(&manifest))
        }
        DataSource::InMemory(w) => {
            let mut key = w.config.to_text();
            if !w.scenario.is_default() {
                key.push_str(&format!("scenario\t{:016x}\n", w.scenario.fingerprint()));
            }
            format!("{:016x}", codec::fnv1a64(key.as_bytes()))
        }
    }
}

/// NDT shard inventory of a source: total shard count and per-format
/// breakdown (`text`/`columnar` from the manifest for archives; the
/// shard plan, counted as in-memory, otherwise).
fn shard_inventory(source: &DataSource) -> Vec<(String, usize)> {
    match source {
        DataSource::Archive(a) => {
            let manifest =
                std::fs::read_to_string(a.root().join(datasets::MLAB_MANIFEST)).unwrap_or_default();
            let mut text = 0usize;
            let mut columnar = 0usize;
            for line in manifest.lines() {
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                match line.rsplit('\t').next() {
                    Some(path) if path.ends_with(".ndtc") => columnar += 1,
                    Some(_) => text += 1,
                    None => {}
                }
            }
            vec![("text".into(), text), ("columnar".into(), columnar)]
        }
        DataSource::InMemory(w) => {
            let plan = lacnet_crisis::bandwidth::shard_plan(
                lacnet_crisis::config::windows::mlab_start(),
                w.config.end,
            );
            vec![("in-memory".into(), plan.len())]
        }
    }
}

impl ServerState {
    /// Build the shared state around a resident source.
    pub fn new(source: Arc<DataSource<'static>>, cache_capacity: usize) -> Self {
        let fingerprint = source_fingerprint(&source);
        let shards = shard_inventory(&source);
        let archive_body = Json::Obj(vec![
            ("backend".into(), Json::Str(source.backend().into())),
            (
                "seed".into(),
                Json::Str(format!("{:#x}", source.config().seed)),
            ),
            ("end".into(), Json::Str(source.config().end.to_string())),
            ("fingerprint".into(), Json::Str(fingerprint.clone())),
            (
                "endpoints".into(),
                Json::Num(registry::ENDPOINTS.len() as f64),
            ),
            (
                "ndt_shards".into(),
                Json::Num(shards.iter().map(|(_, n)| n).sum::<usize>() as f64),
            ),
            (
                "shard_formats".into(),
                Json::Obj(
                    shards
                        .into_iter()
                        .map(|(fmt, n)| (fmt, Json::Num(n as f64)))
                        .collect(),
                ),
            ),
            (
                "ndt_query".into(),
                Json::Str(registry::NDT_MONTH_ROUTE.into()),
            ),
            (
                "ndt_range".into(),
                Json::Str(registry::NDT_RANGE_ROUTE.into()),
            ),
        ])
        .to_text();
        let endpoints_body = Json::Arr(
            registry::ENDPOINTS
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("id".into(), Json::Str(e.id.into())),
                        ("path".into(), Json::Str(e.http_path())),
                        (
                            "kind".into(),
                            Json::Str(
                                match e.kind {
                                    registry::Kind::Paper => "paper",
                                    registry::Kind::Extension => "extension",
                                }
                                .into(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
        .to_text();
        let resident = source.scenario().name.clone();
        let mut scenario_rows: Vec<Json> = Vec::new();
        let mut listed_resident = false;
        for name in lacnet_crisis::Scenario::builtin_names() {
            let s = lacnet_crisis::Scenario::builtin(name).expect("builtin scenario parses");
            listed_resident |= s.name == resident;
            scenario_rows.push(Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("description".into(), Json::Str(s.description.clone())),
                (
                    "fingerprint".into(),
                    Json::Str(format!("{:016x}", s.fingerprint())),
                ),
                ("default".into(), Json::Bool(s.is_default())),
                ("resident".into(), Json::Bool(s.name == resident)),
            ]));
        }
        if !listed_resident {
            // The resident source runs a custom (file-loaded) scenario:
            // list it too, so the inventory always covers every routable
            // name.
            let s = source.scenario();
            scenario_rows.push(Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("description".into(), Json::Str(s.description.clone())),
                (
                    "fingerprint".into(),
                    Json::Str(format!("{:016x}", s.fingerprint())),
                ),
                ("default".into(), Json::Bool(s.is_default())),
                ("resident".into(), Json::Bool(true)),
            ]));
        }
        let scenarios_body = Json::Arr(scenario_rows).to_text();
        ServerState {
            source,
            fingerprint,
            cache: LruCache::new(cache_capacity),
            metrics: Metrics::new(),
            archive_body,
            endpoints_body,
            scenarios_body,
            scenario_sources: Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The fingerprint responses are currently keyed under.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The metrics registry (exposed for tests and benches).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resolve the source serving `/scenario/{name}/…`. The resident
    /// scenario answers from the resident source (sharing its cache
    /// slots — the bytes are the same); any other built-in scenario gets
    /// an in-memory world generated lazily at the resident configuration
    /// on first touch and kept for the server's lifetime. The map lock
    /// doubles as single-flight: two racing first requests generate once.
    /// Unknown names resolve to `None` (a 404).
    fn resolve_scenario(&self, name: &str) -> Option<(Arc<DataSource<'static>>, String)> {
        if name == self.source.scenario().name {
            return Some((Arc::clone(&self.source), self.fingerprint.clone()));
        }
        let scenario = lacnet_crisis::Scenario::builtin(name).ok()?;
        let mut map = self.scenario_sources.lock().expect("scenario source lock");
        if let Some((source, fingerprint)) = map.get(name) {
            return Some((Arc::clone(source), fingerprint.clone()));
        }
        let world: &'static lacnet_crisis::World = Box::leak(Box::new(
            lacnet_crisis::World::generate_with(*self.source.config(), scenario),
        ));
        let source = Arc::new(DataSource::in_memory(world));
        let fingerprint = source_fingerprint(&source);
        map.insert(name.to_owned(), (Arc::clone(&source), fingerprint.clone()));
        Some((source, fingerprint))
    }
}

fn json_error(status: u16, message: &str) -> Response {
    let body = Json::Obj(vec![("error".into(), Json::Str(message.into()))]).to_text();
    Response::new(status, "application/json", body.into_bytes())
}

/// Compute the response for one parsed request — the pure routing core,
/// shared by the socket workers, the unit tests and the benches.
pub fn respond(state: &ServerState, request: &Request) -> Response {
    let t0 = Instant::now();
    if request.method != "GET" {
        state
            .metrics
            .record("unmatched", Outcome::Uncached, t0.elapsed().as_secs_f64());
        return json_error(405, "only GET is supported");
    }
    match request.path.as_str() {
        "/healthz" => {
            state
                .metrics
                .record("healthz", Outcome::Uncached, t0.elapsed().as_secs_f64());
            Response::new(200, "application/json", b"{\"status\":\"ok\"}".to_vec())
        }
        "/metrics" => {
            let body = state.metrics.render();
            state
                .metrics
                .record("metrics", Outcome::Uncached, t0.elapsed().as_secs_f64());
            Response::new(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                body.into_bytes(),
            )
        }
        "/archive" => {
            state
                .metrics
                .record("archive", Outcome::Uncached, t0.elapsed().as_secs_f64());
            Response::new(
                200,
                "application/json",
                state.archive_body.clone().into_bytes(),
            )
        }
        "/endpoints" => {
            state
                .metrics
                .record("endpoints", Outcome::Uncached, t0.elapsed().as_secs_f64());
            Response::new(
                200,
                "application/json",
                state.endpoints_body.clone().into_bytes(),
            )
        }
        "/scenarios" => {
            state
                .metrics
                .record("scenarios", Outcome::Uncached, t0.elapsed().as_secs_f64());
            Response::new(
                200,
                "application/json",
                state.scenarios_body.clone().into_bytes(),
            )
        }
        path => {
            if let Some(rest) = path.strip_prefix("/scenario/") {
                let (name, sub) = match rest.split_once('/') {
                    Some((name, sub)) => (name, format!("/{sub}")),
                    None => (rest, String::new()),
                };
                let Some((source, fingerprint)) = state.resolve_scenario(name) else {
                    state.metrics.record(
                        "unmatched",
                        Outcome::Uncached,
                        t0.elapsed().as_secs_f64(),
                    );
                    return json_error(404, "no such scenario; see /scenarios");
                };
                if sub.is_empty() {
                    let s = source.scenario();
                    let body = Json::Obj(vec![
                        ("name".into(), Json::Str(s.name.clone())),
                        ("description".into(), Json::Str(s.description.clone())),
                        ("fingerprint".into(), Json::Str(fingerprint)),
                        ("default".into(), Json::Bool(s.is_default())),
                        ("backend".into(), Json::Str(source.backend().into())),
                    ])
                    .to_text();
                    state.metrics.record(
                        "scenarios",
                        Outcome::Uncached,
                        t0.elapsed().as_secs_f64(),
                    );
                    return Response::new(200, "application/json", body.into_bytes());
                }
                return route_data(state, &source, &fingerprint, &sub, &request.query, t0);
            }
            route_data(
                state,
                &state.source,
                &state.fingerprint,
                path,
                &request.query,
                t0,
            )
        }
    }
}

/// Route one data path (`/ndt/…` or a registry endpoint) against an
/// explicit source and cache-key fingerprint — the shared core of the
/// unscoped routes and the `/scenario/{name}/…` scoped ones. Scoped
/// requests pass their scenario source's own fingerprint, so their
/// responses occupy distinct LRU slots from the resident scenario's.
fn route_data(
    state: &ServerState,
    source: &Arc<DataSource<'static>>,
    fingerprint: &str,
    path: &str,
    query: &str,
    t0: Instant,
) -> Response {
    if let Some(rest) = path.strip_prefix("/ndt/") {
        return ndt_query(state, source, fingerprint, rest, query, t0);
    }
    match registry::find_by_path(path) {
        Some(endpoint) => {
            // Normalize before anything touches the query: strict
            // percent-decoding (malformed escapes are a typed 400,
            // not a silently mangled value), duplicate keys
            // resolved last-key-wins, keys sorted — so every
            // spelling of one query shares one cache slot.
            let Some(pairs) = http::normalize_query(query) else {
                state
                    .metrics
                    .record(endpoint.id, Outcome::Uncached, t0.elapsed().as_secs_f64());
                return json_error(400, "malformed percent-escape in query");
            };
            let format = pairs
                .iter()
                .find(|(k, _)| k == "format")
                .map(|(_, v)| v.as_str())
                .unwrap_or("json");
            let (content_type, tsv) = match format {
                "json" => ("application/json", false),
                "tsv" => ("text/tab-separated-values; charset=utf-8", true),
                _ => {
                    state.metrics.record(
                        endpoint.id,
                        Outcome::Uncached,
                        t0.elapsed().as_secs_f64(),
                    );
                    return json_error(400, "format must be `json` or `tsv`");
                }
            };
            let canonical: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let key = (
                endpoint.id.to_owned(),
                canonical.join("&"),
                fingerprint.to_owned(),
            );
            let (cached, hit) = state.cache.get_or_compute(key, || {
                let result = (endpoint.run)(source);
                let bytes = if tsv {
                    canonical_tsv(&result).into_bytes()
                } else {
                    result_json(&result).to_text().into_bytes()
                };
                CachedBody {
                    status: 200,
                    content_type,
                    bytes: Arc::new(bytes),
                }
            });
            state.metrics.record(
                endpoint.id,
                if hit { Outcome::Hit } else { Outcome::Miss },
                t0.elapsed().as_secs_f64(),
            );
            Response::new(
                cached.status,
                cached.content_type,
                cached.bytes.as_ref().clone(),
            )
        }
        None => {
            state
                .metrics
                .record("unmatched", Outcome::Uncached, t0.elapsed().as_secs_f64());
            json_error(404, "no such endpoint; see /endpoints")
        }
    }
}

/// The `read` object every NDT response carries: how much of the
/// backing archive the query actually touched.
fn read_stats_json(read: &lacnet_mlab::ReadStats) -> Json {
    Json::Obj(vec![
        ("blocks_total".into(), Json::Num(read.blocks_total as f64)),
        (
            "blocks_decoded".into(),
            Json::Num(read.blocks_decoded as f64),
        ),
        ("bytes_decoded".into(), Json::Num(read.bytes_decoded as f64)),
        (
            "columns_decoded".into(),
            Json::Num(read.columns_decoded as f64),
        ),
    ])
}

/// Serve the `/ndt/` prefix. A path with a month segment —
/// `/ndt/{CC}/{YYYY-MM}` — is one `(country, month)` query routed
/// through [`DataSource::ndt_month_stats`]; on a v2 columnar archive
/// that decodes only the matching blocks' download column, and the
/// response reports exactly how much of the shard was touched. A bare
/// country — `/ndt/{CC}?from=YYYY-MM&to=YYYY-MM` — is a range query
/// through [`DataSource::ndt_range_stats`]: the shard plan is pruned on
/// the resident index, fanned across workers, and merged in
/// deterministic plan order. Results (including 404s: shard absence is
/// a property of the fingerprinted archive generation) are cached under
/// the normalized range, so every spelling of one window shares one LRU
/// slot; malformed or reversed or out-of-dataset ranges are typed 400s
/// that never occupy a computed slot; backend I/O errors are not cached.
fn ndt_query(
    state: &ServerState,
    source: &Arc<DataSource<'static>>,
    fingerprint: &str,
    rest: &str,
    query: &str,
    t0: Instant,
) -> Response {
    use lacnet_types::{CountryCode, MonthStamp};
    if !rest.contains('/') {
        return ndt_range_query(state, source, fingerprint, rest, query, t0);
    }
    let parsed = rest.split_once('/').and_then(|(cc, month)| {
        Some((
            CountryCode::new(cc).ok()?,
            month.parse::<MonthStamp>().ok()?,
        ))
    });
    let Some((cc, month)) = parsed else {
        state
            .metrics
            .record("ndt", Outcome::Uncached, t0.elapsed().as_secs_f64());
        return json_error(400, "ndt query path must be /ndt/{CC}/{YYYY-MM}");
    };
    let key = (
        "ndt".to_owned(),
        format!("{cc}/{month}"),
        fingerprint.to_owned(),
    );
    if let Some(cached) = state.cache.get(&key) {
        state
            .metrics
            .record("ndt", Outcome::Hit, t0.elapsed().as_secs_f64());
        return Response::new(
            cached.status,
            cached.content_type,
            cached.bytes.as_ref().clone(),
        );
    }
    let response = match source.ndt_month_stats(cc, month) {
        Err(e) => {
            state
                .metrics
                .record("ndt", Outcome::Uncached, t0.elapsed().as_secs_f64());
            return json_error(500, &e.to_string());
        }
        Ok(None) => json_error(404, "no NDT shard for that country and month"),
        Ok(Some(stats)) => {
            let body = Json::Obj(vec![
                ("country".into(), Json::Str(cc.to_string())),
                ("month".into(), Json::Str(month.to_string())),
                ("rows".into(), Json::Num(stats.rows as f64)),
                (
                    "median_download_mbps".into(),
                    stats.median_download.map_or(Json::Null, Json::Num),
                ),
                ("format".into(), Json::Str(stats.format.into())),
                ("read".into(), read_stats_json(&stats.read)),
            ])
            .to_text();
            Response::new(200, "application/json", body.into_bytes())
        }
    };
    state.cache.insert(
        key,
        CachedBody {
            status: response.status,
            content_type: response.content_type,
            bytes: Arc::new(response.body.clone()),
        },
    );
    state
        .metrics
        .record("ndt", Outcome::Miss, t0.elapsed().as_secs_f64());
    response
}

/// Serve `/ndt/{CC}?from=YYYY-MM&to=YYYY-MM` — the range form of the
/// NDT query. Validation happens entirely before the cache: the query
/// string is strictly normalized (so `?to=…&from=…` and percent-escaped
/// spellings collapse to one canonical `{cc}/{from}/{to}` key), months
/// must parse, `from` must not exceed `to`, and the window must
/// intersect the dataset's NDT months. Only validated ranges can occupy
/// an LRU slot.
fn ndt_range_query(
    state: &ServerState,
    source: &Arc<DataSource<'static>>,
    fingerprint: &str,
    rest: &str,
    query: &str,
    t0: Instant,
) -> Response {
    use lacnet_types::{CountryCode, MonthStamp};
    let reject = |message: &str| -> Response {
        state
            .metrics
            .record("ndt-range", Outcome::Uncached, t0.elapsed().as_secs_f64());
        json_error(400, message)
    };
    let Ok(cc) = CountryCode::new(rest) else {
        return reject("ndt range path must be /ndt/{CC}?from=YYYY-MM&to=YYYY-MM");
    };
    let Some(pairs) = http::normalize_query(query) else {
        return reject("malformed percent-escape in query");
    };
    let month_param = |key: &str| -> Option<Result<MonthStamp, ()>> {
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.parse::<MonthStamp>().map_err(|_| ()))
    };
    let (from, to) = match (month_param("from"), month_param("to")) {
        (Some(Ok(from)), Some(Ok(to))) => (from, to),
        (None, _) | (_, None) => {
            return reject("ndt range query needs both from=YYYY-MM and to=YYYY-MM")
        }
        _ => return reject("from/to must be YYYY-MM months"),
    };
    if from > to {
        return reject("ndt range: from month after to month");
    }
    let (first, last) = source.ndt_month_bounds();
    if to < first || from > last {
        return reject("ndt range lies outside the dataset months");
    }
    let key = (
        "ndt-range".to_owned(),
        format!("{cc}/{from}/{to}"),
        fingerprint.to_owned(),
    );
    if let Some(cached) = state.cache.get(&key) {
        state
            .metrics
            .record("ndt-range", Outcome::Hit, t0.elapsed().as_secs_f64());
        return Response::new(
            cached.status,
            cached.content_type,
            cached.bytes.as_ref().clone(),
        );
    }
    let response = match source.ndt_range_stats(cc, from, to) {
        Err(e) => {
            state
                .metrics
                .record("ndt-range", Outcome::Uncached, t0.elapsed().as_secs_f64());
            return json_error(500, &e.to_string());
        }
        Ok(stats) if stats.months.is_empty() => {
            json_error(404, "no NDT shards for that country in that range")
        }
        Ok(stats) => {
            let months = stats
                .months
                .iter()
                .map(|(month, m)| {
                    Json::Obj(vec![
                        ("month".into(), Json::Str(month.to_string())),
                        ("rows".into(), Json::Num(m.rows as f64)),
                        (
                            "median_download_mbps".into(),
                            m.median_download.map_or(Json::Null, Json::Num),
                        ),
                        ("format".into(), Json::Str(m.format.into())),
                    ])
                })
                .collect();
            let body = Json::Obj(vec![
                ("country".into(), Json::Str(cc.to_string())),
                ("from".into(), Json::Str(from.to_string())),
                ("to".into(), Json::Str(to.to_string())),
                (
                    "months_queried".into(),
                    Json::Num(stats.months_queried as f64),
                ),
                (
                    "shards_pruned".into(),
                    Json::Num(stats.shards_pruned as f64),
                ),
                ("rows".into(), Json::Num(stats.rows as f64)),
                (
                    "mean_monthly_median_mbps".into(),
                    stats.mean_monthly_median.map_or(Json::Null, Json::Num),
                ),
                ("months".into(), Json::Arr(months)),
                ("read".into(), read_stats_json(&stats.read)),
            ])
            .to_text();
            Response::new(200, "application/json", body.into_bytes())
        }
    };
    state.cache.insert(
        key,
        CachedBody {
            status: response.status,
            content_type: response.content_type,
            bytes: Arc::new(response.body.clone()),
        },
    );
    state
        .metrics
        .record("ndt-range", Outcome::Miss, t0.elapsed().as_secs_f64());
    response
}

/// Serve one accepted connection: keep-alive loop, pipelining via the
/// buffered reader, typed error responses, read timeout as the hang
/// guard.
fn handle_connection(
    state: &ServerState,
    stream: TcpStream,
    limits: &Limits,
    read_timeout: Duration,
) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() {
        return;
    }
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, limits) {
            Ok(request) => {
                let close = request.wants_close();
                let response = respond(state, &request);
                if response.write_to(&mut writer, close).is_err() || close {
                    return;
                }
            }
            Err(error) => {
                if let Some(status) = error.status() {
                    let _ = json_error(status, &error.to_string()).write_to(&mut writer, true);
                }
                return;
            }
        }
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    options: ServeOptions,
    shutdown: Arc<AtomicBool>,
}

/// Remote control for a running [`Server`] — cloneable across threads.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the accept loop to stop; in-flight connections finish first.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // A wake-up connection unblocks the blocking `accept`.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) around a
    /// resident source. The server does not accept until [`Server::run`].
    pub fn bind(
        source: Arc<DataSource<'static>>,
        addr: &str,
        options: ServeOptions,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            state: Arc::new(ServerState::new(source, options.cache_capacity.max(1))),
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared state (fingerprint, metrics), for tests and tooling.
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// A handle that can stop [`Server::run`] from another thread.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
            addr: self.listener.local_addr()?,
        })
    }

    /// Accept and serve until the handle asks for shutdown. Connections
    /// are fanned out to a fixed pool of scoped worker threads over an
    /// mpsc channel; every worker holds the shared state by reference.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            state,
            options,
            shutdown,
        } = self;
        let limits = Limits::default();
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..options.threads.max(1) {
                scope.spawn(|| loop {
                    // Hold the receiver lock only while dequeuing, so the
                    // pool drains connections concurrently.
                    let conn = rx.lock().expect("pool lock").recv();
                    match conn {
                        Ok(stream) => {
                            handle_connection(&state, stream, &limits, options.read_timeout)
                        }
                        Err(_) => break,
                    }
                });
            }
            for conn in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            drop(tx);
        });
        Ok(())
    }
}

/// Compile-time proof that the shared state crosses threads safely.
#[allow(dead_code)]
fn _assert_thread_safe() {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<ServerState>();
    assert_sync::<DataSource<'static>>();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state() -> &'static ServerState {
        use std::sync::OnceLock;
        static STATE: OnceLock<ServerState> = OnceLock::new();
        STATE.get_or_init(|| {
            let source = Arc::new(DataSource::in_memory(crate::experiments::testworld::world()));
            ServerState::new(source, 8)
        })
    }

    fn get(state: &ServerState, target: &str) -> Response {
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_owned(), q.to_owned()),
            None => (target.to_owned(), String::new()),
        };
        respond(
            state,
            &Request {
                method: "GET".into(),
                path,
                query,
                http11: true,
                headers: Vec::new(),
                body: Vec::new(),
            },
        )
    }

    #[test]
    fn healthz_archive_endpoints_and_errors() {
        let state = test_state();
        assert_eq!(get(state, "/healthz").status, 200);
        let archive = get(state, "/archive");
        assert_eq!(archive.status, 200);
        let info = Json::parse(std::str::from_utf8(&archive.body).unwrap()).unwrap();
        assert_eq!(
            info.get("backend").and_then(|v| v.as_str()),
            Some("in-memory")
        );
        assert_eq!(
            info.get("fingerprint").and_then(|v| v.as_str()),
            Some(state.fingerprint())
        );
        let endpoints = get(state, "/endpoints");
        assert!(std::str::from_utf8(&endpoints.body)
            .unwrap()
            .contains("\"path\":\"/fig/11\""));
        assert_eq!(get(state, "/nope").status, 404);
        assert_eq!(get(state, "/fig/11?format=xml").status, 400);
        let post = respond(
            state,
            &Request {
                method: "POST".into(),
                path: "/healthz".into(),
                query: String::new(),
                http11: true,
                headers: Vec::new(),
                body: Vec::new(),
            },
        );
        assert_eq!(post.status, 405);
    }

    #[test]
    fn data_endpoint_serves_both_formats_through_the_cache() {
        let state = test_state();
        let tsv = get(state, "/tab01?format=tsv");
        assert_eq!(tsv.status, 200);
        assert!(tsv.content_type.starts_with("text/tab-separated-values"));
        let again = get(state, "/tab01?format=tsv");
        assert_eq!(tsv.body, again.body, "cached body is byte-identical");
        let json = get(state, "/tab01");
        assert!(json.content_type.starts_with("application/json"));
        let parsed = Json::parse(std::str::from_utf8(&json.body).unwrap()).unwrap();
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("tab01"));
        // The TSV body is exactly the canonical render of the result.
        let direct = canonical_tsv(&(registry::find("tab01").unwrap().run)(&state.source));
        assert_eq!(tsv.body, direct.into_bytes());
        // Metrics saw one miss and one hit for the TSV key.
        let text = state.metrics().render();
        assert!(text.contains("lacnet_cache_hits_total{endpoint=\"tab01\"} 1"));
    }

    /// A fresh (non-shared) state, so cache and metrics counters are
    /// exactly one test's traffic.
    fn fresh_state() -> ServerState {
        let source = Arc::new(DataSource::in_memory(crate::experiments::testworld::world()));
        ServerState::new(source, 8)
    }

    #[test]
    fn query_normalization_makes_escape_spellings_share_a_cache_slot() {
        let state = fresh_state();
        // Three spellings of `format=tsv`: plain, hex-escaped, and a
        // duplicate key resolved last-wins. One compute, two hits.
        let plain = get(&state, "/fig/01?format=tsv");
        assert_eq!(plain.status, 200);
        let escaped = get(&state, "/fig/01?format=%74sv");
        let duplicated = get(&state, "/fig/01?format=json&format=tsv");
        assert!(escaped
            .content_type
            .starts_with("text/tab-separated-values"));
        assert_eq!(plain.body, escaped.body);
        assert_eq!(plain.body, duplicated.body);
        let text = state.metrics().render();
        assert!(
            text.contains("lacnet_cache_misses_total{endpoint=\"fig01\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lacnet_cache_hits_total{endpoint=\"fig01\"} 2"),
            "{text}"
        );
        // A malformed escape is a typed 400, not a mangled cache key.
        let bad = get(&state, "/fig/01?format=%zzv");
        assert_eq!(bad.status, 400);
        assert!(String::from_utf8(bad.body)
            .unwrap()
            .contains("percent-escape"));
    }

    #[test]
    fn ndt_query_routes_through_the_source_and_caches() {
        use lacnet_types::country;
        let state = fresh_state();
        let (month, median) = state
            .source
            .mlab()
            .median_series(country::VE)
            .last()
            .expect("test world has VE data");
        let ok = get(&state, &format!("/ndt/VE/{month}"));
        assert_eq!(ok.status, 200, "{:?}", String::from_utf8_lossy(&ok.body));
        let body = Json::parse(std::str::from_utf8(&ok.body).unwrap()).unwrap();
        assert_eq!(body.get("country").and_then(|v| v.as_str()), Some("VE"));
        assert_eq!(
            body.get("month").and_then(|v| v.as_str()),
            Some(month.to_string().as_str())
        );
        assert_eq!(
            body.get("format").and_then(|v| v.as_str()),
            Some("in-memory")
        );
        assert!(body.get("rows").and_then(|v| v.as_f64()).unwrap() > 0.0);
        assert_eq!(
            body.get("median_download_mbps").and_then(|v| v.as_f64()),
            Some(median)
        );
        // The repeat is a cache hit serving identical bytes.
        let again = get(&state, &format!("/ndt/VE/{month}"));
        assert_eq!(ok.body, again.body);
        let text = state.metrics().render();
        assert!(
            text.contains("lacnet_cache_hits_total{endpoint=\"ndt\"} 1"),
            "{text}"
        );
        // Absent month → 404; malformed country or month → 400.
        assert_eq!(get(&state, "/ndt/VE/1805-12").status, 404);
        assert_eq!(get(&state, "/ndt/VEN/2020-01").status, 400);
        assert_eq!(get(&state, "/ndt/VE/whenever").status, 400);
        assert_eq!(get(&state, "/ndt/VE").status, 400);
    }

    #[test]
    fn ndt_range_query_validates_normalizes_and_caches() {
        use lacnet_types::country;
        let state = fresh_state();
        let series: Vec<_> = state
            .source
            .mlab()
            .median_series(country::VE)
            .iter()
            .collect();
        assert!(series.len() >= 4, "test world spans years");
        let (from, _) = series[series.len() - 4];
        let (to, _) = *series.last().unwrap();

        let ok = get(&state, &format!("/ndt/VE?from={from}&to={to}"));
        assert_eq!(ok.status, 200, "{:?}", String::from_utf8_lossy(&ok.body));
        let body = Json::parse(std::str::from_utf8(&ok.body).unwrap()).unwrap();
        assert_eq!(body.get("country").and_then(|v| v.as_str()), Some("VE"));
        assert_eq!(
            body.get("from").and_then(|v| v.as_str()),
            Some(from.to_string().as_str())
        );
        assert_eq!(
            body.get("months_queried").and_then(|v| v.as_f64()),
            Some(4.0)
        );
        assert!(body.get("rows").and_then(|v| v.as_f64()).unwrap() > 0.0);
        let months = match body.get("months") {
            Some(Json::Arr(rows)) => rows.clone(),
            other => panic!("months must be an array, got {other:?}"),
        };
        assert_eq!(months.len(), 4);
        // The range body agrees with the single-month endpoint per month.
        for m in &months {
            let month = m.get("month").and_then(|v| v.as_str()).unwrap().to_owned();
            let single = get(&state, &format!("/ndt/VE/{month}"));
            let single = Json::parse(std::str::from_utf8(&single.body).unwrap()).unwrap();
            assert_eq!(
                m.get("rows").and_then(|v| v.as_f64()),
                single.get("rows").and_then(|v| v.as_f64()),
                "{month}"
            );
            assert_eq!(
                m.get("median_download_mbps").and_then(|v| v.as_f64()),
                single.get("median_download_mbps").and_then(|v| v.as_f64()),
                "{month}"
            );
        }

        // Reordered and percent-escaped spellings of the same window are
        // cache hits serving identical bytes — one slot, not three.
        let reordered = get(&state, &format!("/ndt/VE?to={to}&from={from}"));
        assert_eq!(ok.body, reordered.body);
        let escaped = get(&state, &format!("/ndt/VE?from={from}&%74o={to}"));
        assert_eq!(ok.body, escaped.body);
        let text = state.metrics().render();
        assert!(
            text.contains("lacnet_cache_misses_total{endpoint=\"ndt-range\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lacnet_cache_hits_total{endpoint=\"ndt-range\"} 2"),
            "{text}"
        );

        // Typed 400s: reversed, out-of-dataset, missing or malformed
        // months, malformed escapes, malformed country.
        assert_eq!(
            get(&state, &format!("/ndt/VE?from={to}&to={from}")).status,
            400
        );
        assert_eq!(get(&state, "/ndt/VE?from=1805-01&to=1806-01").status, 400);
        assert_eq!(get(&state, "/ndt/VE?from=2020-01").status, 400);
        assert_eq!(get(&state, "/ndt/VE?to=2020-01").status, 400);
        assert_eq!(get(&state, "/ndt/VE?from=whenever&to=2020-01").status, 400);
        assert_eq!(get(&state, "/ndt/VE?from=%zz&to=2020-01").status, 400);
        assert_eq!(get(&state, "/ndt/VEN?from=2020-01&to=2020-02").status, 400);
        // None of the rejects computed or occupied a cache slot.
        let text = state.metrics().render();
        assert!(
            text.contains("lacnet_cache_misses_total{endpoint=\"ndt-range\"} 1"),
            "{text}"
        );
    }
}
