//! Request metrics with a Prometheus-style text exposition.
//!
//! Per endpoint: request count, response-cache hits/misses, and latency
//! quantiles (p50/p90/p99) tracked with the workspace's own streaming
//! [`P2Quantile`] estimator — the same five-marker sketch the M-Lab
//! aggregation runs on hundreds of millions of rows, eating our own
//! dogfood at O(1) memory per endpoint.

use lacnet_types::stats::P2Quantile;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Streaming per-endpoint counters and latency sketches.
struct EndpointMetrics {
    requests: u64,
    hits: u64,
    misses: u64,
    latency: [P2Quantile; 3],
}

/// The latency quantiles exposed per endpoint.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Observations a sketch needs before its quantiles are exposed. Below
/// this the five-marker P² estimator has not initialized and `value()`
/// echoes raw early samples — on a fresh boot that would publish the
/// very first request's latency as "p99". Until warm-up, the quantile
/// series is simply absent from the exposition (counters still render).
const QUANTILE_WARMUP: usize = 5;

impl EndpointMetrics {
    fn new() -> Self {
        EndpointMetrics {
            requests: 0,
            hits: 0,
            misses: 0,
            latency: [
                P2Quantile::new(QUANTILES[0].0),
                P2Quantile::new(QUANTILES[1].0),
                P2Quantile::new(QUANTILES[2].0),
            ],
        }
    }
}

/// Thread-safe metrics registry, keyed by endpoint label.
#[derive(Default)]
pub struct Metrics {
    endpoints: Mutex<BTreeMap<String, EndpointMetrics>>,
}

/// Cache outcome of one request, for [`Metrics::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the response cache (including single-flight waiters).
    Hit,
    /// Computed fresh.
    Miss,
    /// Not a cacheable endpoint (`/healthz`, `/metrics`, errors).
    Uncached,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Record one request against `endpoint` with its cache `outcome` and
    /// wall-clock latency in seconds.
    pub fn record(&self, endpoint: &str, outcome: Outcome, seconds: f64) {
        let mut endpoints = self.endpoints.lock().expect("metrics lock");
        let m = endpoints
            .entry(endpoint.to_owned())
            .or_insert_with(EndpointMetrics::new);
        m.requests += 1;
        match outcome {
            Outcome::Hit => m.hits += 1,
            Outcome::Miss => m.misses += 1,
            Outcome::Uncached => {}
        }
        for q in &mut m.latency {
            q.observe(seconds);
        }
    }

    /// Total (hits, misses) over every endpoint.
    pub fn cache_totals(&self) -> (u64, u64) {
        let endpoints = self.endpoints.lock().expect("metrics lock");
        endpoints
            .values()
            .fold((0, 0), |(h, m), e| (h + e.hits, m + e.misses))
    }

    /// Render the Prometheus text exposition.
    pub fn render(&self) -> String {
        let endpoints = self.endpoints.lock().expect("metrics lock");
        let mut out = String::new();
        out.push_str("# HELP lacnet_requests_total Requests served, per endpoint.\n");
        out.push_str("# TYPE lacnet_requests_total counter\n");
        for (id, m) in endpoints.iter() {
            let _ = writeln!(
                out,
                "lacnet_requests_total{{endpoint=\"{id}\"}} {}",
                m.requests
            );
        }
        out.push_str("# HELP lacnet_cache_hits_total Response-cache hits, per endpoint.\n");
        out.push_str("# TYPE lacnet_cache_hits_total counter\n");
        for (id, m) in endpoints.iter() {
            let _ = writeln!(
                out,
                "lacnet_cache_hits_total{{endpoint=\"{id}\"}} {}",
                m.hits
            );
        }
        out.push_str("# HELP lacnet_cache_misses_total Response-cache misses, per endpoint.\n");
        out.push_str("# TYPE lacnet_cache_misses_total counter\n");
        for (id, m) in endpoints.iter() {
            let _ = writeln!(
                out,
                "lacnet_cache_misses_total{{endpoint=\"{id}\"}} {}",
                m.misses
            );
        }
        let (hits, misses) = endpoints
            .values()
            .fold((0u64, 0u64), |(h, mi), e| (h + e.hits, mi + e.misses));
        out.push_str(
            "# HELP lacnet_cache_hit_ratio Hits over hits+misses across all cacheable endpoints.\n",
        );
        out.push_str("# TYPE lacnet_cache_hit_ratio gauge\n");
        let ratio = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        let _ = writeln!(out, "lacnet_cache_hit_ratio {ratio}");
        out.push_str(
            "# HELP lacnet_request_latency_seconds Request latency (P\u{00b2} streaming estimate).\n",
        );
        out.push_str("# TYPE lacnet_request_latency_seconds summary\n");
        for (id, m) in endpoints.iter() {
            if m.latency[0].count() < QUANTILE_WARMUP {
                continue;
            }
            for (i, (_, label)) in QUANTILES.iter().enumerate() {
                if let Some(v) = m.latency[i].value() {
                    let _ = writeln!(
                        out,
                        "lacnet_request_latency_seconds{{endpoint=\"{id}\",quantile=\"{label}\"}} {v}",
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let metrics = Metrics::new();
        metrics.record("fig11", Outcome::Miss, 0.030);
        metrics.record("fig11", Outcome::Hit, 0.001);
        metrics.record("fig11", Outcome::Hit, 0.002);
        metrics.record("healthz", Outcome::Uncached, 0.0001);
        let text = metrics.render();
        assert!(text.contains("lacnet_requests_total{endpoint=\"fig11\"} 3"));
        assert!(text.contains("lacnet_cache_hits_total{endpoint=\"fig11\"} 2"));
        assert!(text.contains("lacnet_cache_misses_total{endpoint=\"fig11\"} 1"));
        assert!(text.contains("lacnet_requests_total{endpoint=\"healthz\"} 1"));
        assert!(text.contains("lacnet_cache_hit_ratio 0.666666"));
        // Three observations have not warmed the P² sketches up yet, so
        // the quantile series is withheld from this scrape.
        assert!(!text.contains("lacnet_request_latency_seconds{endpoint=\"fig11\""));
        metrics.record("fig11", Outcome::Uncached, 0.003);
        metrics.record("fig11", Outcome::Uncached, 0.004);
        let text = metrics.render();
        assert!(text.contains("lacnet_requests_total{endpoint=\"fig11\"} 5"));
        assert!(
            text.contains("lacnet_request_latency_seconds{endpoint=\"fig11\",quantile=\"0.5\"}")
        );
        assert_eq!(metrics.cache_totals(), (2, 1));
    }

    #[test]
    fn quantiles_are_withheld_until_the_sketch_initializes() {
        // The fresh-boot first scrape: a single request must not be
        // echoed back as every latency quantile.
        let metrics = Metrics::new();
        metrics.record("e", Outcome::Miss, 7.0);
        let text = metrics.render();
        assert!(text.contains("lacnet_requests_total{endpoint=\"e\"} 1"));
        assert!(
            !text.contains("lacnet_request_latency_seconds{endpoint=\"e\""),
            "one observation leaked into the quantile exposition:\n{text}"
        );
        for _ in 0..3 {
            metrics.record("e", Outcome::Hit, 0.001);
        }
        assert!(
            !metrics
                .render()
                .contains("lacnet_request_latency_seconds{endpoint=\"e\""),
            "four observations are still below warm-up"
        );
        metrics.record("e", Outcome::Hit, 0.001);
        assert!(metrics
            .render()
            .contains("lacnet_request_latency_seconds{endpoint=\"e\",quantile=\"0.99\"}"));
    }

    #[test]
    fn latency_quantiles_use_p2_estimates() {
        let metrics = Metrics::new();
        for i in 0..1000 {
            metrics.record("e", Outcome::Miss, i as f64 / 1000.0);
        }
        let text = metrics.render();
        let p50 = text
            .lines()
            .find(|l| l.contains("endpoint=\"e\",quantile=\"0.5\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .expect("p50 exposed");
        assert!((p50 - 0.5).abs() < 0.05, "p50 {p50}");
        let p99 = text
            .lines()
            .find(|l| l.contains("endpoint=\"e\",quantile=\"0.99\""))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .expect("p99 exposed");
        assert!((p99 - 0.99).abs() < 0.05, "p99 {p99}");
    }

    #[test]
    fn empty_registry_renders_zero_ratio() {
        let text = Metrics::new().render();
        assert!(text.contains("lacnet_cache_hit_ratio 0\n"));
    }
}
