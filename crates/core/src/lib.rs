//! # lacnet-core
//!
//! The paper, as a library: one experiment module per figure and table of
//! *"Ten years of the Venezuelan crisis — An Internet perspective"*
//! (SIGCOMM 2024). Each experiment consumes the datasets of a generated
//! (or real) world through the substrate crates and emits
//! [`artifact::Artifact`]s — figure series, tables, heatmaps — plus
//! [`artifact::Finding`]s that compare the paper's quoted numbers with
//! the measured ones (the content of EXPERIMENTS.md).
//!
//! The `vzla-report` binary runs the whole battery:
//!
//! ```text
//! cargo run -p lacnet-core --bin vzla-report --release
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod datasets;
pub mod experiments;
pub mod extensions;
pub mod markdown;
pub mod registry;
pub mod render;
pub mod serve;
pub mod source;

pub use artifact::{Artifact, ExperimentResult, Figure, Finding, Heatmap, Line, Panel, Table};
pub use datasets::{DumpOptions, DumpSummary};
pub use source::{ArchiveWorld, DataSource};
