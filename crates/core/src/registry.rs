//! The single registry of every artifact the pipeline can produce: the
//! 22 paper experiments and the 3 extensions, each with its stable id,
//! its runner, and its HTTP route.
//!
//! This is the one place figure naming lives. `vzla-report` assembles
//! its battery from it, `lacnet-serve` routes requests through it, the
//! golden suite derives its expected fixture set from it — so an
//! endpoint cannot exist in one surface and silently miss the others.

use crate::artifact::ExperimentResult;
use crate::source::DataSource;
use crate::{experiments, extensions};
use lacnet_mlab::{ColumnSet, MonthlyAggregator};

/// Which battery an endpoint belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// One of the paper's 22 figures/tables, in paper order.
    Paper,
    /// A beyond-the-paper extension analysis.
    Extension,
}

/// One runnable endpoint.
pub struct Endpoint {
    /// Stable artifact id — also the golden fixture stem (`fig11`,
    /// `tab01`, `ext-blackouts`).
    pub id: &'static str,
    /// Paper battery or extension.
    pub kind: Kind,
    /// The experiment, a pure function of its [`DataSource`].
    pub run: fn(&DataSource) -> ExperimentResult,
    /// Which `.ndtc` columns the runner's NDT consumption needs. Most
    /// endpoints never touch the M-Lab substrate and declare
    /// [`ColumnSet::NONE`]; an archive load decodes only the union of
    /// these declarations (plus the resident aggregate's own needs), so
    /// adding an NDT-hungry endpoint here is what widens the decode.
    pub ndt_columns: ColumnSet,
}

impl Endpoint {
    /// The HTTP route `lacnet-serve` exposes this endpoint under:
    /// `fig11` → `/fig/11`, `tab01` → `/tab01`,
    /// `ext-blackouts` → `/ext/blackouts`.
    pub fn http_path(&self) -> String {
        if let Some(n) = self.id.strip_prefix("fig") {
            format!("/fig/{n}")
        } else if let Some(name) = self.id.strip_prefix("ext-") {
            format!("/ext/{name}")
        } else {
            format!("/{}", self.id)
        }
    }
}

/// The single-month NDT query route `lacnet-serve` exposes alongside the
/// registry endpoints: one `(country, month)` shard query with selective
/// column decode on v2 archives.
pub const NDT_MONTH_ROUTE: &str = "/ndt/{CC}/{YYYY-MM}";

/// The NDT range-query route: an inclusive month window fanned across
/// shards in parallel and merged deterministically. Served by the same
/// `/ndt/` prefix — a path with no month segment selects the range form.
pub const NDT_RANGE_ROUTE: &str = "/ndt/{CC}?from=YYYY-MM&to=YYYY-MM";

/// Every endpoint, paper battery first (in paper order — `tab01` sits
/// between figs 12 and 13, as in the study), then the extensions.
pub const ENDPOINTS: [Endpoint; 25] = [
    Endpoint {
        id: "fig01",
        kind: Kind::Paper,
        run: experiments::fig01_macro::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig02",
        kind: Kind::Paper,
        run: experiments::fig02_address_space::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig03",
        kind: Kind::Paper,
        run: experiments::fig03_facilities::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig04",
        kind: Kind::Paper,
        run: experiments::fig04_cables::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig05",
        kind: Kind::Paper,
        run: experiments::fig05_ipv6::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig06",
        kind: Kind::Paper,
        run: experiments::fig06_roots::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig07",
        kind: Kind::Paper,
        run: experiments::fig07_offnets::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig08",
        kind: Kind::Paper,
        run: experiments::fig08_cantv_degree::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig09",
        kind: Kind::Paper,
        run: experiments::fig09_transit_heatmap::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig10",
        kind: Kind::Paper,
        run: experiments::fig10_ixp_matrix::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig11",
        kind: Kind::Paper,
        run: experiments::fig11_bandwidth::run,
        ndt_columns: MonthlyAggregator::REQUIRED_COLUMNS,
    },
    Endpoint {
        id: "fig12",
        kind: Kind::Paper,
        run: experiments::fig12_gpdns_rtt::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "tab01",
        kind: Kind::Paper,
        run: experiments::tab01_isps::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig13",
        kind: Kind::Paper,
        run: experiments::fig13_gdp_ranks::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig14",
        kind: Kind::Paper,
        run: experiments::fig14_prefix_heatmap::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig15",
        kind: Kind::Paper,
        run: experiments::fig15_ve_facilities::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig16",
        kind: Kind::Paper,
        run: experiments::fig16_root_origins::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig17",
        kind: Kind::Paper,
        run: experiments::fig17_probe_coverage::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig18",
        kind: Kind::Paper,
        run: experiments::fig18_all_hypergiants::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig19",
        kind: Kind::Paper,
        run: experiments::fig19_third_party::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig20",
        kind: Kind::Paper,
        run: experiments::fig20_probe_map::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "fig21",
        kind: Kind::Paper,
        run: experiments::fig21_us_ixps::run,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "ext-blackouts",
        kind: Kind::Extension,
        run: extensions::ext_blackouts,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "ext-inference",
        kind: Kind::Extension,
        run: extensions::ext_inference,
        ndt_columns: ColumnSet::NONE,
    },
    Endpoint {
        id: "ext-network-split",
        kind: Kind::Extension,
        run: extensions::ext_network_split,
        ndt_columns: ColumnSet::NONE,
    },
];

/// The runners of the paper battery, in paper order.
pub fn paper_battery() -> Vec<fn(&DataSource) -> ExperimentResult> {
    ENDPOINTS
        .iter()
        .filter(|e| e.kind == Kind::Paper)
        .map(|e| e.run)
        .collect()
}

/// The runners of the extension battery, in registry order.
pub fn extension_battery() -> Vec<fn(&DataSource) -> ExperimentResult> {
    ENDPOINTS
        .iter()
        .filter(|e| e.kind == Kind::Extension)
        .map(|e| e.run)
        .collect()
}

/// The union of every registered endpoint's declared NDT column needs,
/// plus what the resident [`MonthlyAggregator`] itself reads — the
/// [`ColumnSelection`](lacnet_mlab::ColumnSelection) an archive load
/// must decode. Today that is exactly [`ColumnSet::AGGREGATE`]; an
/// endpoint declaring, say, loss-rate needs would widen it here and
/// nowhere else.
pub fn ndt_column_union() -> ColumnSet {
    ENDPOINTS
        .iter()
        .fold(MonthlyAggregator::REQUIRED_COLUMNS, |set, e| {
            set.union(e.ndt_columns)
        })
}

/// The endpoint with artifact id `id`.
pub fn find(id: &str) -> Option<&'static Endpoint> {
    ENDPOINTS.iter().find(|e| e.id == id)
}

/// The endpoint served under HTTP route `path`.
pub fn find_by_path(path: &str) -> Option<&'static Endpoint> {
    ENDPOINTS.iter().find(|e| e.http_path() == path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_and_routes_are_unique_and_round_trip() {
        let ids: BTreeSet<&str> = ENDPOINTS.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), ENDPOINTS.len(), "duplicate artifact id");
        let paths: BTreeSet<String> = ENDPOINTS.iter().map(|e| e.http_path()).collect();
        assert_eq!(paths.len(), ENDPOINTS.len(), "duplicate HTTP route");
        for e in &ENDPOINTS {
            assert_eq!(find(e.id).unwrap().id, e.id);
            assert_eq!(find_by_path(&e.http_path()).unwrap().id, e.id);
        }
        assert_eq!(find_by_path("/fig/11").unwrap().id, "fig11");
        assert_eq!(find_by_path("/tab01").unwrap().id, "tab01");
        assert_eq!(find_by_path("/ext/blackouts").unwrap().id, "ext-blackouts");
        assert!(find_by_path("/fig/99").is_none());
    }

    #[test]
    fn battery_split_covers_everything() {
        assert_eq!(paper_battery().len(), 22);
        assert_eq!(extension_battery().len(), 3);
        // Every endpoint id is reachable through exactly one battery.
        assert_eq!(ENDPOINTS.len(), 25);
    }

    #[test]
    fn ndt_column_union_covers_the_aggregate_and_nothing_more_today() {
        assert_eq!(ndt_column_union(), ColumnSet::AGGREGATE);
        assert_eq!(find("fig11").unwrap().ndt_columns, ColumnSet::AGGREGATE);
        // Only the bandwidth figure consumes the NDT substrate directly.
        for e in ENDPOINTS.iter().filter(|e| e.id != "fig11") {
            assert_eq!(e.ndt_columns, ColumnSet::NONE, "{}", e.id);
        }
    }

    #[test]
    fn endpoint_ids_match_what_the_runners_produce() {
        // The registry id must be the id the experiment stamps on its
        // result — the property that keeps URLs, fixtures and artifact
        // ids in lockstep.
        let src = crate::experiments::testworld::source();
        for e in &ENDPOINTS {
            assert_eq!(
                (e.run)(src).id,
                e.id,
                "registry id diverges from artifact id"
            );
        }
    }
}
