//! Experiment outputs: figures, tables, heatmaps, and paper-vs-measured
//! findings.

use lacnet_types::TimeSeries;

/// One plotted line: a labelled time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Line {
    /// Legend label (usually a country code or ASN).
    pub label: String,
    /// The series.
    pub series: TimeSeries,
}

impl Line {
    /// Construct a line.
    pub fn new(label: impl Into<String>, series: TimeSeries) -> Self {
        Line {
            label: label.into(),
            series,
        }
    }
}

/// One panel of a figure (the paper's figures are multi-panel).
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    /// Panel title (e.g. `"VE"`, `"LACNIC"`).
    pub title: String,
    /// The lines plotted in the panel.
    pub lines: Vec<Line>,
}

impl Panel {
    /// Construct a panel.
    pub fn new(title: impl Into<String>, lines: Vec<Line>) -> Self {
        Panel {
            title: title.into(),
            lines,
        }
    }
}

/// A multi-panel figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Artifact id, e.g. `"fig11"`.
    pub id: String,
    /// Caption summarising what the figure shows.
    pub caption: String,
    /// The panels.
    pub panels: Vec<Panel>,
}

/// A table artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Artifact id, e.g. `"tab01"`.
    pub id: String,
    /// Caption.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells, already formatted.
    pub rows: Vec<Vec<String>>,
}

/// A heatmap artifact (`None` cells are "not present / not registered").
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    /// Artifact id, e.g. `"fig09"`.
    pub id: String,
    /// Caption.
    pub caption: String,
    /// Row labels.
    pub rows: Vec<String>,
    /// Column labels.
    pub cols: Vec<String>,
    /// Cell values, row-major.
    pub cells: Vec<Vec<Option<f64>>>,
}

/// Any experiment output.
#[derive(Debug, Clone, PartialEq)]
pub enum Artifact {
    /// A multi-panel figure.
    Figure(Figure),
    /// A table.
    Table(Table),
    /// A heatmap.
    Heatmap(Heatmap),
}

impl Artifact {
    /// The artifact id.
    pub fn id(&self) -> &str {
        match self {
            Artifact::Figure(f) => &f.id,
            Artifact::Table(t) => &t.id,
            Artifact::Heatmap(h) => &h.id,
        }
    }

    /// The artifact caption.
    pub fn caption(&self) -> &str {
        match self {
            Artifact::Figure(f) => &f.caption,
            Artifact::Table(t) => &t.caption,
            Artifact::Heatmap(h) => &h.caption,
        }
    }
}

/// One paper-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What is being compared.
    pub metric: String,
    /// The paper's value, as quoted.
    pub paper: String,
    /// The measured value in this world.
    pub measured: String,
    /// Whether the measured value is within the experiment's tolerance.
    pub matches: bool,
}

impl Finding {
    /// A numeric finding with relative tolerance.
    pub fn numeric(metric: impl Into<String>, paper: f64, measured: f64, rel_tol: f64) -> Self {
        let matches = if paper == 0.0 {
            measured.abs() < rel_tol
        } else {
            ((measured - paper) / paper).abs() <= rel_tol
        };
        Finding {
            metric: metric.into(),
            paper: format!("{paper:.2}"),
            measured: format!("{measured:.2}"),
            matches,
        }
    }

    /// A boolean/qualitative finding.
    pub fn claim(
        metric: impl Into<String>,
        expected: impl Into<String>,
        observed: impl Into<String>,
        matches: bool,
    ) -> Self {
        Finding {
            metric: metric.into(),
            paper: expected.into(),
            measured: observed.into(),
            matches,
        }
    }
}

/// The full output of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Experiment id (`fig01` … `fig21`, `tab01`, `tab02`).
    pub id: String,
    /// What the experiment reproduces.
    pub title: String,
    /// The artifacts.
    pub artifacts: Vec<Artifact>,
    /// Paper-vs-measured findings.
    pub findings: Vec<Finding>,
}

impl ExperimentResult {
    /// Whether every finding matched.
    pub fn all_match(&self) -> bool {
        self.findings.iter().all(|f| f.matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::MonthStamp;

    #[test]
    fn numeric_finding_tolerance() {
        assert!(Finding::numeric("x", 100.0, 104.0, 0.05).matches);
        assert!(!Finding::numeric("x", 100.0, 110.0, 0.05).matches);
        assert!(Finding::numeric("neg", -81.49, -80.0, 0.05).matches);
        assert!(Finding::numeric("zero", 0.0, 0.001, 0.01).matches);
        assert!(!Finding::numeric("zero", 0.0, 0.5, 0.01).matches);
    }

    #[test]
    fn artifact_accessors() {
        let fig = Artifact::Figure(Figure {
            id: "fig01".into(),
            caption: "macro".into(),
            panels: vec![Panel::new(
                "VE",
                vec![Line::new(
                    "oil",
                    TimeSeries::from_points([(MonthStamp::new(2013, 1), 1.0)]),
                )],
            )],
        });
        assert_eq!(fig.id(), "fig01");
        assert_eq!(fig.caption(), "macro");
        let tab = Artifact::Table(Table {
            id: "tab01".into(),
            caption: "isps".into(),
            headers: vec![],
            rows: vec![],
        });
        assert_eq!(tab.id(), "tab01");
        let heat = Artifact::Heatmap(Heatmap {
            id: "fig09".into(),
            caption: "h".into(),
            rows: vec![],
            cols: vec![],
            cells: vec![],
        });
        assert_eq!(heat.caption(), "h");
    }

    #[test]
    fn result_all_match() {
        let mut r = ExperimentResult {
            id: "x".into(),
            title: "t".into(),
            artifacts: vec![],
            findings: vec![],
        };
        assert!(r.all_match());
        r.findings.push(Finding::numeric("a", 1.0, 1.0, 0.1));
        assert!(r.all_match());
        r.findings.push(Finding::numeric("b", 1.0, 2.0, 0.1));
        assert!(!r.all_match());
    }
}
