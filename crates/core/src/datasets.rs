//! Dataset export: write a generated world to disk as an archive tree in
//! each dataset's native format — the shape of the artifact bundle the
//! paper publishes ("we make available all datasets and code").
//!
//! ```text
//! <out>/
//!   serial1/19980101.as-rel.txt …        CAIDA serial-1, yearly
//!   pfx2as/routeviews-rv2-20080101.pfx2as …  RouteViews pfx2as, yearly
//!   delegations/delegated-lacnic-20080101 …  NRO delegation files, yearly
//!   peeringdb/peeringdb_2_dump_2018_04_01.json …  schema-v2 dumps, yearly
//!   cables/cable-map.json                Telegeography-style export
//!   offnets/scan-2013.json …             yearly TLS scans
//!   topsites/VE.json …                   per-country scrapes
//!   mlab/ndt-2023-07.tsv                 one month of NDT rows
//!   atlas/reachability-VE-2019.tsv       daily connected probes
//!   MANIFEST.txt
//! ```

use lacnet_crisis::{bandwidth, blackouts, World};
use lacnet_types::rng::Rng;
use lacnet_types::{country, Date, MonthStamp, Result};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Summary of one export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpSummary {
    /// Files written, with their archive-relative paths.
    pub files: Vec<String>,
    /// Total bytes written.
    pub bytes: u64,
}

fn write(root: &Path, rel: &str, contents: &str, summary: &mut DumpSummary) -> io::Result<()> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(&path, contents)?;
    summary.files.push(rel.to_owned());
    summary.bytes += contents.len() as u64;
    Ok(())
}

/// Export the world's datasets under `root`. Yearly sampling for the
/// monthly archives keeps the tree a few megabytes.
pub fn dump(world: &World, root: &Path) -> io::Result<DumpSummary> {
    let mut summary = DumpSummary {
        files: Vec::new(),
        bytes: 0,
    };
    let end = world.config.end;

    // serial-1, one file per January.
    for (m, graph) in world.topology.iter() {
        if m.month() != 1 {
            continue;
        }
        let rel = format!("serial1/{}0101.as-rel.txt", m.year());
        let text = lacnet_bgp::serial1::to_text(&graph.edges(), &format!("lacnet world {m}"));
        write(root, &rel, &text, &mut summary)?;
    }

    // pfx2as + delegations, one per January from 2008.
    for year in 2008..=end.year() {
        let m = MonthStamp::new(year, 1);
        if m > end {
            break;
        }
        let table = world.pfx2as_at(m);
        write(
            root,
            &format!("pfx2as/routeviews-rv2-{year}0101.pfx2as"),
            &table.to_text(),
            &mut summary,
        )?;
        let file = world.addressing.delegation_file(Date::ymd(year, 1, 1));
        write(
            root,
            &format!("delegations/delegated-lacnic-{year}0101"),
            &file.to_text(Date::ymd(year, 1, 1)),
            &mut summary,
        )?;
    }

    // PeeringDB dumps, one per April (the schema-v2 anniversary month).
    for (m, snap) in world.peeringdb.iter() {
        if m.month() != 4 {
            continue;
        }
        write(
            root,
            &format!(
                "peeringdb/peeringdb_2_dump_{}_{:02}_01.json",
                m.year(),
                m.month()
            ),
            &snap.to_json(),
            &mut summary,
        )?;
    }

    // Cable map.
    write(
        root,
        "cables/cable-map.json",
        &world.cables.to_json(),
        &mut summary,
    )?;

    // Off-net scans.
    for scan in &world.cert_scans {
        write(
            root,
            &format!("offnets/scan-{}.json", scan.month.year()),
            &scan.to_json(),
            &mut summary,
        )?;
    }

    // Top sites.
    for list in &world.top_sites {
        write(
            root,
            &format!("topsites/{}.json", list.country),
            &list.to_json(),
            &mut summary,
        )?;
    }

    // One month of raw NDT rows (July 2023, the paper's comparison
    // month), rendered by the sharded archive builder — the exported
    // bytes are exactly the `(country, 2023-07)` shards of the same
    // stream `world.mlab` aggregates.
    let m = MonthStamp::new(2023, 7);
    let rows = bandwidth::build_archive(
        &world.operators,
        world.config.seed,
        world.config.mlab_volume_scale,
        m,
        m,
    );
    write(root, "mlab/ndt-2023-07.tsv", &rows, &mut summary)?;

    // A traceroute archive sample: every Venezuelan probe's path to
    // GPDNS at the final month (the raw form of MSM 1591146).
    {
        use lacnet_atlas::anycast::{AnycastFleet, AnycastSite, SiteScope};
        use lacnet_atlas::gpdns::LatencyModel;
        use lacnet_atlas::traceroute;
        let month = end;
        let fleet = AnycastFleet::new(
            world
                .dns
                .gpdns_sites
                .iter()
                .filter(|s| s.active_in(month))
                .map(|s| AnycastSite {
                    id: s.id.clone(),
                    location: s.location,
                    scope: SiteScope::Global,
                })
                .collect(),
        );
        let model = LatencyModel::default();
        let transits = [
            lacnet_types::Asn(23520),
            lacnet_types::Asn(6762),
            lacnet_types::Asn(52320),
            lacnet_types::Asn(3356),
        ];
        let mut text = String::new();
        let rng_root = Rng::seeded(world.config.seed);
        for probe in world.dns.probes.active_in_country(month, country::VE) {
            if let Some(site) = fleet.catch(probe) {
                let path = traceroute::gpdns_path(probe, site, &transits);
                let mut rng = rng_root.fork(&format!("dump/traceroute/{}", probe.id));
                let tr = traceroute::simulate(probe, site, &model, &path, month, &mut rng);
                text.push_str(&tr.to_text());
            }
        }
        write(root, "atlas/traceroutes-ve.txt", &text, &mut summary)?;
    }

    // Daily reachability for the blackout year.
    let reach = blackouts::daily_reachability(
        &world.dns,
        Date::ymd(2019, 1, 1),
        Date::ymd(2019, 12, 31),
        world.config.seed,
    );
    let mut text = String::new();
    for (day, n) in reach[&country::VE].iter() {
        let _ = writeln!(text, "{day}\t{n}");
    }
    write(root, "atlas/reachability-VE-2019.tsv", &text, &mut summary)?;

    // Manifest.
    let mut manifest = String::new();
    let _ = writeln!(
        manifest,
        "# lacnet dataset dump (seed {:#x})",
        world.config.seed
    );
    for f in &summary.files {
        let _ = writeln!(manifest, "{f}");
    }
    // The manifest lists itself so `verify` covers the whole tree.
    let _ = writeln!(manifest, "MANIFEST.txt");
    write(root, "MANIFEST.txt", &manifest, &mut summary)?;
    Ok(summary)
}

/// Re-parse every exported file, proving the tree is consumable by the
/// substrate parsers alone (no access to the in-memory world).
///
/// NDT shards are the one archive that is unbounded at real scale, so
/// they are *streamed* through `ndt::stream_rows` into an aggregator —
/// verification never materializes an mlab file in memory.
pub fn verify(root: &Path) -> Result<usize> {
    let mut checked = 0usize;
    let read = |rel: &str| -> String { fs::read_to_string(root.join(rel)).unwrap_or_default() };
    let manifest = read("MANIFEST.txt");
    for rel in manifest.lines().filter(|l| !l.starts_with('#')) {
        if rel.starts_with("mlab/") {
            let file = fs::File::open(root.join(rel))
                .map_err(|_| lacnet_types::Error::missing("NDT archive shard", rel))?;
            let mut agg = lacnet_mlab::aggregate::MonthlyAggregator::new(
                lacnet_mlab::aggregate::Mode::Streaming,
            );
            agg.observe_reader(io::BufReader::new(file))?;
            checked += 1;
            continue;
        }
        let text = read(rel);
        if rel.starts_with("serial1/") {
            lacnet_bgp::serial1::parse(&text)?;
        } else if rel.starts_with("pfx2as/") {
            lacnet_bgp::PfxToAs::parse(&text)?;
        } else if rel.starts_with("delegations/") {
            lacnet_registry::DelegationFile::parse(&text)?;
        } else if rel.starts_with("peeringdb/") {
            lacnet_peeringdb::Snapshot::from_json(&text)?.validate()?;
        } else if rel.starts_with("cables/") {
            lacnet_telegeo::CableMap::from_json(&text)?;
        } else if rel.starts_with("offnets/") {
            lacnet_offnets::CertScan::from_json(&text)?;
        } else if rel.starts_with("topsites/") {
            lacnet_webmeas::CountryTopSites::from_json(&text)?;
        } else if rel.starts_with("atlas/traceroutes") {
            lacnet_atlas::traceroute::parse_traceroutes(&text)?;
        } else if rel.starts_with("atlas/") || rel == "MANIFEST.txt" {
            // Plain TSV / manifest: nothing structured to validate.
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_and_verify_roundtrip() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-dump-{}", std::process::id()));
        let summary = dump(world, &dir).expect("dump succeeds");
        assert!(summary.files.len() > 50, "{} files", summary.files.len());
        assert!(summary.bytes > 1_000_000, "{} bytes", summary.bytes);
        let checked = verify(&dir).expect("every file parses");
        assert_eq!(checked, summary.files.len());
        // Spot-check a known file exists with plausible content.
        let serial = std::fs::read_to_string(dir.join("serial1/20130101.as-rel.txt")).unwrap();
        assert!(serial.contains("|8048|-1"), "CANTV has providers in 2013");
        std::fs::remove_dir_all(&dir).ok();
    }
}
