//! Dataset export: write a generated world to disk as an archive tree in
//! each dataset's native format — the shape of the artifact bundle the
//! paper publishes ("we make available all datasets and code").
//!
//! The tree is complete enough to *reload*: [`crate::source::ArchiveWorld`]
//! rebuilds every dataset the battery consumes from these files alone,
//! and the round-trip suite proves the reloaded battery byte-identical to
//! the in-memory one.
//!
//! ```text
//! <out>/
//!   world/config.tsv                     the generating configuration
//!   serial1/19980101.as-rel.txt …        CAIDA serial-1, monthly
//!   pfx2as/routeviews-rv2-20080101.pfx2as …  RouteViews pfx2as, monthly
//!   delegations/delegated-lacnic-20080101 …  NRO delegation files, yearly
//!                                        plus one full-history snapshot
//!   peeringdb/peeringdb_2_dump_2018_04_01.json …  schema-v2 dumps, monthly
//!   cables/cable-map.json                Telegeography-style export
//!   offnets/scan-2013.json …             yearly TLS scans
//!   topsites/VE.json …                   per-country scrapes
//!   mlab/VE/ndt-2007-07.tsv …            per-(country, month) NDT shards
//!   atlas/reachability-VE-2019.tsv …     daily connected probes, per country
//!   MANIFEST.txt
//! ```

use lacnet_crisis::config::windows;
use lacnet_crisis::{bandwidth, blackouts, World};
use lacnet_types::rng::Rng;
use lacnet_types::{country, sweep, Date, MonthStamp, Result};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Summary of one export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpSummary {
    /// Files written, with their archive-relative paths.
    pub files: Vec<String>,
    /// Total bytes written.
    pub bytes: u64,
}

fn write(root: &Path, rel: &str, contents: &str, summary: &mut DumpSummary) -> io::Result<()> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(&path, contents)?;
    summary.files.push(rel.to_owned());
    summary.bytes += contents.len() as u64;
    Ok(())
}

/// The archive-relative path of one NDT shard.
pub fn mlab_shard_path(shard: bandwidth::NdtShard) -> String {
    let (cc, month) = shard;
    format!("mlab/{cc}/ndt-{month}.tsv")
}

/// Export the world's datasets under `root`. Monthly resolution for every
/// archive the battery reads monthly (serial-1, pfx2as, PeeringDB, NDT
/// shards), so an [`crate::source::ArchiveWorld`] reload reproduces the
/// in-memory battery byte for byte.
pub fn dump(world: &World, root: &Path) -> io::Result<DumpSummary> {
    let mut summary = DumpSummary {
        files: Vec::new(),
        bytes: 0,
    };
    let end = world.config.end;

    // The config sidecar: the loader regenerates the model roots
    // (economy, operators, DNS world) from exactly this configuration.
    write(
        root,
        "world/config.tsv",
        &world.config.to_text(),
        &mut summary,
    )?;

    // Derive the monthly pfx2as tables across workers before the
    // sequential write loop below reads them one by one.
    world.prewarm(windows::pfx2as_start(), end);

    // serial-1, one file per month of the archive.
    for (m, graph) in world.topology.iter() {
        let rel = format!("serial1/{}{:02}01.as-rel.txt", m.year(), m.month());
        let text = lacnet_bgp::serial1::to_text(&graph.edges(), &format!("lacnet world {m}"));
        write(root, &rel, &text, &mut summary)?;
    }

    // pfx2as, one file per month since 2008.
    for m in windows::pfx2as_start().through(end) {
        let table = world.pfx2as_at(m);
        write(
            root,
            &format!(
                "pfx2as/routeviews-rv2-{}{:02}01.pfx2as",
                m.year(),
                m.month()
            ),
            &table.to_text(),
            &mut summary,
        )?;
    }

    // Delegations: yearly snapshots as the registry publishes them, plus
    // one full-history file at the archive's end date — the snapshot the
    // loader rebuilds the allocation ledger from (it reads the *last*
    // delegations entry in the manifest).
    for year in 2008..=end.year() {
        let m = MonthStamp::new(year, 1);
        if m > end {
            break;
        }
        let file = world.addressing.delegation_file(Date::ymd(year, 1, 1));
        write(
            root,
            &format!("delegations/delegated-lacnic-{year}0101"),
            &file.to_text(Date::ymd(year, 1, 1)),
            &mut summary,
        )?;
    }
    let last_day = end.last_day();
    let file = world.addressing.delegation_file(last_day);
    write(
        root,
        &format!(
            "delegations/delegated-lacnic-{:04}{:02}{:02}",
            last_day.year(),
            last_day.month(),
            last_day.day()
        ),
        &file.to_text(last_day),
        &mut summary,
    )?;

    // PeeringDB dumps, one per month of the schema-v2 era.
    for (m, snap) in world.peeringdb.iter() {
        write(
            root,
            &format!(
                "peeringdb/peeringdb_2_dump_{}_{:02}_01.json",
                m.year(),
                m.month()
            ),
            &snap.to_json(),
            &mut summary,
        )?;
    }

    // Cable map.
    write(
        root,
        "cables/cable-map.json",
        &world.cables.to_json(),
        &mut summary,
    )?;

    // Off-net scans.
    for scan in &world.cert_scans {
        write(
            root,
            &format!("offnets/scan-{}.json", scan.month.year()),
            &scan.to_json(),
            &mut summary,
        )?;
    }

    // Top sites.
    for list in &world.top_sites {
        write(
            root,
            &format!("topsites/{}.json", list.country),
            &list.to_json(),
            &mut summary,
        )?;
    }

    // The full per-(country, month) NDT shard set — the same substreams
    // `world.mlab` aggregated, rendered on sweep workers and written in
    // plan order. Streaming the files back in this order replays the
    // exact observation sequence into the P² estimators.
    let plan = bandwidth::shard_plan(windows::mlab_start(), end);
    let shards = sweep::parallel_map_with(sweep::worker_count(plan.len()), &plan, |&shard| {
        let mut text = String::new();
        for test in bandwidth::generate_shard(
            &world.operators,
            world.config.seed,
            world.config.mlab_volume_scale,
            shard,
        ) {
            text.push_str(&test.to_row());
            text.push('\n');
        }
        text
    });
    for (&shard, text) in plan.iter().zip(&shards) {
        write(root, &mlab_shard_path(shard), text, &mut summary)?;
    }

    // A traceroute archive sample: every Venezuelan probe's path to
    // GPDNS at the final month (the raw form of MSM 1591146).
    {
        use lacnet_atlas::anycast::{AnycastFleet, AnycastSite, SiteScope};
        use lacnet_atlas::gpdns::LatencyModel;
        use lacnet_atlas::traceroute;
        let month = end;
        let fleet = AnycastFleet::new(
            world
                .dns
                .gpdns_sites
                .iter()
                .filter(|s| s.active_in(month))
                .map(|s| AnycastSite {
                    id: s.id.clone(),
                    location: s.location,
                    scope: SiteScope::Global,
                })
                .collect(),
        );
        let model = LatencyModel::default();
        let transits = [
            lacnet_types::Asn(23520),
            lacnet_types::Asn(6762),
            lacnet_types::Asn(52320),
            lacnet_types::Asn(3356),
        ];
        let mut text = String::new();
        let rng_root = Rng::seeded(world.config.seed);
        for probe in world.dns.probes.active_in_country(month, country::VE) {
            if let Some(site) = fleet.catch(probe) {
                let path = traceroute::gpdns_path(probe, site, &transits);
                let mut rng = rng_root.fork(&format!("dump/traceroute/{}", probe.id));
                let tr = traceroute::simulate(probe, site, &model, &path, month, &mut rng);
                text.push_str(&tr.to_text());
            }
        }
        write(root, "atlas/traceroutes-ve.txt", &text, &mut summary)?;
    }

    // Daily reachability for the blackout year, one file per country.
    let reach = blackouts::daily_reachability(
        &world.dns,
        Date::ymd(2019, 1, 1),
        Date::ymd(2019, 12, 31),
        world.config.seed,
    );
    for (cc, series) in &reach {
        write(
            root,
            &format!("atlas/reachability-{cc}-2019.tsv"),
            &series.to_tsv(),
            &mut summary,
        )?;
    }

    // Manifest.
    let mut manifest = String::new();
    let _ = writeln!(
        manifest,
        "# lacnet dataset dump (seed {:#x})",
        world.config.seed
    );
    for f in &summary.files {
        let _ = writeln!(manifest, "{f}");
    }
    // The manifest lists itself so `verify` covers the whole tree.
    let _ = writeln!(manifest, "MANIFEST.txt");
    write(root, "MANIFEST.txt", &manifest, &mut summary)?;
    Ok(summary)
}

/// Re-parse every exported file, proving the tree is consumable by the
/// substrate parsers alone (no access to the in-memory world).
///
/// NDT shards are the one archive that is unbounded at real scale, so
/// they are *streamed* through `ndt::stream_rows` into an aggregator —
/// verification never materializes an mlab file in memory.
pub fn verify(root: &Path) -> Result<usize> {
    let mut checked = 0usize;
    let read = |rel: &str| -> String { fs::read_to_string(root.join(rel)).unwrap_or_default() };
    let manifest = read("MANIFEST.txt");
    let mut agg =
        lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
    for rel in manifest.lines().filter(|l| !l.starts_with('#')) {
        if rel.starts_with("mlab/") {
            let file = fs::File::open(root.join(rel))
                .map_err(|_| lacnet_types::Error::missing("NDT archive shard", rel))?;
            agg.observe_reader(io::BufReader::new(file))?;
            checked += 1;
            continue;
        }
        let text = read(rel);
        if rel.starts_with("serial1/") {
            lacnet_bgp::serial1::parse(&text)?;
        } else if rel.starts_with("pfx2as/") {
            lacnet_bgp::PfxToAs::parse(&text)?;
        } else if rel.starts_with("delegations/") {
            lacnet_registry::DelegationFile::parse(&text)?;
        } else if rel.starts_with("peeringdb/") {
            lacnet_peeringdb::Snapshot::from_json(&text)?.validate()?;
        } else if rel.starts_with("cables/") {
            lacnet_telegeo::CableMap::from_json(&text)?;
        } else if rel.starts_with("offnets/") {
            lacnet_offnets::CertScan::from_json(&text)?;
        } else if rel.starts_with("topsites/") {
            lacnet_webmeas::CountryTopSites::from_json(&text)?;
        } else if rel.starts_with("atlas/traceroutes") {
            lacnet_atlas::traceroute::parse_traceroutes(&text)?;
        } else if rel.starts_with("atlas/reachability") {
            lacnet_atlas::outages::ReachabilitySeries::parse_tsv(&text)?;
        } else if rel.starts_with("world/") {
            lacnet_crisis::WorldConfig::parse(&text)?;
        } else if rel.starts_with("atlas/") || rel == "MANIFEST.txt" {
            // Plain TSV / manifest: nothing structured to validate.
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_and_verify_roundtrip() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-dump-{}", std::process::id()));
        let summary = dump(world, &dir).expect("dump succeeds");
        assert!(summary.files.len() > 2000, "{} files", summary.files.len());
        assert!(summary.bytes > 1_000_000, "{} bytes", summary.bytes);
        let checked = verify(&dir).expect("every file parses");
        assert_eq!(checked, summary.files.len());
        // Spot-check a known file exists with plausible content.
        let serial = std::fs::read_to_string(dir.join("serial1/20130101.as-rel.txt")).unwrap();
        assert!(serial.contains("|8048|-1"), "CANTV has providers in 2013");
        // The shard tree covers the full per-(country, month) plan.
        let ve_july = std::fs::read_to_string(dir.join("mlab/VE/ndt-2023-07.tsv")).unwrap();
        assert!(ve_july.lines().count() > 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
