//! Dataset export: write a generated world to disk as an archive tree in
//! each dataset's native format — the shape of the artifact bundle the
//! paper publishes ("we make available all datasets and code").
//!
//! The tree is complete enough to *reload*: [`crate::source::ArchiveWorld`]
//! rebuilds every dataset the battery consumes from these files alone,
//! and the round-trip suite proves the reloaded battery byte-identical to
//! the in-memory one.
//!
//! ```text
//! <out>/
//!   world/config.tsv                     the generating configuration
//!   serial1/19980101.as-rel.txt …        CAIDA serial-1, monthly
//!   pfx2as/routeviews-rv2-20080101.pfx2as …  RouteViews pfx2as, monthly
//!   delegations/delegated-lacnic-20080101 …  NRO delegation files, yearly
//!                                        plus one full-history snapshot
//!   peeringdb/peeringdb_2_dump_2018_04_01.json …  schema-v2 dumps, monthly
//!   cables/cable-map.json                Telegeography-style export
//!   offnets/scan-2013.json …             yearly TLS scans
//!   topsites/VE.json …                   per-country scrapes
//!   mlab/VE/ndt-2007-07.tsv …            per-(country, month) NDT shards
//!                                        (`.ndtc` under `--shard-format
//!                                        columnar`)
//!   mlab/manifest.tsv                    per-shard (label, fingerprint,
//!                                        content hash) — incremental
//!                                        refresh skips unchanged shards
//!   mlab/index.tsv                       archive-level shard index:
//!                                        (country, month) → shard path,
//!                                        row count, block count
//!   atlas/reachability-VE-2019.tsv …     daily connected probes, per country
//!   MANIFEST.txt
//! ```
//!
//! NDT shards are the bulk of the tree, so they get two optimisations:
//! a binary columnar encoding ([`lacnet_mlab::columnar`]) selected via
//! [`DumpOptions::shard_format`], and *incremental refresh* — each dump
//! records every shard's input fingerprint (seed, effective per-country
//! volume scale, format) in `mlab/manifest.tsv`, and a re-dump over the
//! same tree regenerates only the shards whose fingerprints changed.

use lacnet_crisis::config::windows;
use lacnet_crisis::{bandwidth, blackouts, World, WorldConfig};
use lacnet_mlab::columnar::{self, ShardFormat};
use lacnet_types::rng::Rng;
use lacnet_types::{codec, country, sweep, Date, MonthStamp, Result};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Summary of one export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpSummary {
    /// Files in the tree, with their archive-relative paths (skipped
    /// shards included — they are part of the tree even when untouched).
    pub files: Vec<String>,
    /// Total bytes written (skipped shards excluded).
    pub bytes: u64,
    /// NDT shard files (re)written this dump.
    pub shards_written: usize,
    /// NDT shard files skipped because the manifest proved their inputs
    /// unchanged.
    pub shards_skipped: usize,
}

/// Options for one export.
#[derive(Debug, Clone, Copy, Default)]
pub struct DumpOptions {
    /// On-disk NDT shard encoding (`text` `.tsv` rows by default).
    pub shard_format: ShardFormat,
    /// Rewrite every shard even when the manifest says its inputs are
    /// unchanged.
    pub force: bool,
    /// Write columnar shards in the legacy v1 container instead of the
    /// indexed v2 one (`lacnet-gen --ndtc-v1`). Exists so compatibility
    /// trees for the version matrix can be produced on purpose; ignored
    /// for text dumps.
    pub columnar_v1: bool,
}

impl DumpOptions {
    /// The codec tag folded into shard fingerprints: distinguishes the
    /// two columnar container versions, so flipping `--ndtc-v1` rewrites
    /// shards like any other generator-input change.
    fn codec_tag(self) -> &'static str {
        match (self.shard_format, self.columnar_v1) {
            (ShardFormat::Text, _) => "text",
            (ShardFormat::Columnar, false) => "columnar",
            (ShardFormat::Columnar, true) => "columnar-v1",
        }
    }
}

fn write_bytes(
    root: &Path,
    rel: &str,
    contents: &[u8],
    summary: &mut DumpSummary,
) -> io::Result<()> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(&path, contents)?;
    summary.files.push(rel.to_owned());
    summary.bytes += contents.len() as u64;
    Ok(())
}

fn write(root: &Path, rel: &str, contents: &str, summary: &mut DumpSummary) -> io::Result<()> {
    write_bytes(root, rel, contents.as_bytes(), summary)
}

/// The archive-relative path of one NDT shard in the (default) text
/// format.
pub fn mlab_shard_path(shard: bandwidth::NdtShard) -> String {
    mlab_shard_path_with(shard, ShardFormat::Text)
}

/// The archive-relative path of one NDT shard in `format`.
pub fn mlab_shard_path_with(shard: bandwidth::NdtShard, format: ShardFormat) -> String {
    let (cc, month) = shard;
    format!("mlab/{cc}/ndt-{month}.{}", format.extension())
}

/// The archive-relative path of the NDT shard manifest.
pub const MLAB_MANIFEST: &str = "mlab/manifest.tsv";

/// The archive-relative path of the archive-level NDT shard index:
/// one record per `(country, month)` shard with its path, row count and
/// decodable-block count, derived from the manifest at dump time. The
/// serve layer resolves single-shard queries through it without probing
/// the filesystem or decoding anything.
pub const MLAB_INDEX: &str = "mlab/index.tsv";

/// One `mlab/index.tsv` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndexRecord {
    /// Archive-relative shard path.
    pub path: String,
    /// Rows in the shard.
    pub rows: u64,
    /// Independently decodable blocks (1 for text and v1 containers).
    pub blocks: u64,
    /// Min/max test day (days since epoch) across the shard's rows —
    /// the range-query pruning summary. `None` for empty shards, for v1
    /// columnar containers (no footer index to consult cheaply) and for
    /// records read back from a pre-PR-10 four-column index; a `None`
    /// shard is never pruned, only ever decoded.
    pub days: Option<(i64, i64)>,
}

/// Parse the shard index of a dumped tree, keyed by `CC/YYYY-MM` label.
/// A missing or malformed index yields an empty map — it is an
/// accelerator derived from the tree, never a source of truth, so
/// consumers must fall back to probing shard files. Four-column records
/// from older dumps parse fine with an unknown day span.
pub fn read_shard_index(root: &Path) -> BTreeMap<String, ShardIndexRecord> {
    let mut map = BTreeMap::new();
    let Ok(text) = fs::read_to_string(root.join(MLAB_INDEX)) else {
        return map;
    };
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(label), Some(path), Some(rows), Some(blocks)) =
            (cols.next(), cols.next(), cols.next(), cols.next())
        else {
            continue;
        };
        let (Ok(rows), Ok(blocks)) = (rows.parse(), blocks.parse()) else {
            continue;
        };
        let days = match (cols.next(), cols.next()) {
            (Some(min), Some(max)) => match (min.parse(), max.parse()) {
                (Ok(min), Ok(max)) if min <= max => Some((min, max)),
                _ => None,
            },
            _ => None,
        };
        map.insert(
            label.to_owned(),
            ShardIndexRecord {
                path: path.to_owned(),
                rows,
                blocks,
                days,
            },
        );
    }
    map
}

/// One shard's index record payload: rows, blocks, and the
/// `(min_day, max_day)` span when the encoding can state it.
type ShardCensus = (u64, u64, Option<(i64, i64)>);

/// Row/block/day-span census of one encoded shard, for the shard index.
/// Text shards scan the date field per row; v2 containers answer from
/// the footer index alone; v1 containers report an unknown span.
fn shard_census(bytes: &[u8], format: ShardFormat) -> io::Result<ShardCensus> {
    match format {
        ShardFormat::Text => {
            let mut rows = 0u64;
            let mut days: Option<(i64, i64)> = None;
            for line in bytes
                .split(|&b| b == b'\n')
                .filter(|l| !l.is_empty() && l[0] != b'#')
            {
                rows += 1;
                let date_field = line.split(|&b| b == b'\t').next().unwrap_or(&[]);
                let d = std::str::from_utf8(date_field)
                    .ok()
                    .and_then(|s| s.parse::<lacnet_types::Date>().ok())
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, "ndt text shard date field")
                    })?
                    .days_since_epoch();
                days = Some(match days {
                    None => (d, d),
                    Some((lo, hi)) => (lo.min(d), hi.max(d)),
                });
            }
            Ok((rows, 1, days))
        }
        ShardFormat::Columnar => {
            let (rows, blocks) = columnar::container_stats(bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            let days = columnar::container_day_span(bytes)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            Ok((rows, blocks, days))
        }
    }
}

/// Version tag folded into every shard fingerprint. Bump it whenever the
/// shard *generator* changes behaviour, so stale trees refresh fully
/// instead of trusting fingerprints computed for the old generator.
/// ("v2": the columnar writer switched to the indexed v2 container.)
const SHARD_GEN_VERSION: &str = "v2";

/// The fingerprint of everything a shard's bytes depend on: generator
/// version, on-disk codec (text / columnar v2 / columnar v1), seed, the
/// country's effective volume scale (plus the shard label itself), and —
/// for non-default scenarios only — the scenario fingerprint. The default
/// (Venezuela) scenario adds nothing, so trees dumped before the scenario
/// layer existed stay fresh under it; switching scenarios changes every
/// shard's fingerprint and forces a full rewrite.
fn shard_fingerprint(
    config: &WorldConfig,
    scenario: &lacnet_crisis::Scenario,
    codec_tag: &str,
    shard: bandwidth::NdtShard,
) -> u64 {
    let (cc, month) = shard;
    let mut key = format!(
        "ndt-shard/{SHARD_GEN_VERSION}/{codec_tag}/{}/{}/{cc}/{month}",
        config.seed,
        config.mlab_scale_for(cc),
    );
    if !scenario.is_default() {
        let _ = write!(key, "/scn{:016x}", scenario.fingerprint());
    }
    codec::fnv1a64(key.as_bytes())
}

/// One `mlab/manifest.tsv` record.
struct ShardRecord {
    fingerprint: u64,
    content_hash: u64,
    path: String,
}

/// Parse a shard manifest written by a previous dump. Unreadable or
/// malformed manifests yield an empty map — the dump then rewrites
/// everything, which is always safe.
fn read_shard_manifest(root: &Path) -> BTreeMap<String, ShardRecord> {
    let mut map = BTreeMap::new();
    let Ok(text) = fs::read_to_string(root.join(MLAB_MANIFEST)) else {
        return map;
    };
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(label), Some(fp), Some(hash), Some(path)) =
            (cols.next(), cols.next(), cols.next(), cols.next())
        else {
            continue;
        };
        let (Ok(fingerprint), Ok(content_hash)) =
            (u64::from_str_radix(fp, 16), u64::from_str_radix(hash, 16))
        else {
            continue;
        };
        map.insert(
            label.to_owned(),
            ShardRecord {
                fingerprint,
                content_hash,
                path: path.to_owned(),
            },
        );
    }
    map
}

/// Export the world's datasets under `root` with default options (text
/// NDT shards, incremental refresh on). See [`dump_with`].
pub fn dump(world: &World, root: &Path) -> io::Result<DumpSummary> {
    dump_with(world, root, DumpOptions::default())
}

/// Export the world's datasets under `root`. Monthly resolution for every
/// archive the battery reads monthly (serial-1, pfx2as, PeeringDB, NDT
/// shards), so an [`crate::source::ArchiveWorld`] reload reproduces the
/// in-memory battery byte for byte.
///
/// NDT shards refresh incrementally: shards whose `mlab/manifest.tsv`
/// fingerprint matches the current configuration (and whose file still
/// exists) are neither regenerated nor rewritten unless
/// [`DumpOptions::force`] is set.
pub fn dump_with(world: &World, root: &Path, options: DumpOptions) -> io::Result<DumpSummary> {
    let mut summary = DumpSummary {
        files: Vec::new(),
        bytes: 0,
        shards_written: 0,
        shards_skipped: 0,
    };
    let end = world.config.end;

    // The config sidecar: the loader regenerates the model roots
    // (economy, operators, DNS world) from exactly this configuration.
    write(
        root,
        "world/config.tsv",
        &world.config.to_text(),
        &mut summary,
    )?;

    // The scenario sidecar — written only for non-default scenarios, so
    // default trees keep their historical file set byte for byte. The
    // loader applies the sidecar's overlays when regenerating; a missing
    // sidecar means the default (Venezuela) scenario. A stale sidecar
    // from a previous non-default dump is removed.
    if world.scenario.is_default() {
        let _ = fs::remove_file(root.join("world/scenario.toml"));
    } else {
        write(
            root,
            "world/scenario.toml",
            &world.scenario.to_toml(),
            &mut summary,
        )?;
    }

    // Derive the monthly pfx2as tables across workers before the
    // sequential write loop below reads them one by one.
    world.prewarm(windows::pfx2as_start(), end);

    // serial-1, one file per month of the archive.
    for (m, graph) in world.topology.iter() {
        let rel = format!("serial1/{}{:02}01.as-rel.txt", m.year(), m.month());
        let text = lacnet_bgp::serial1::to_text(&graph.edges(), &format!("lacnet world {m}"));
        write(root, &rel, &text, &mut summary)?;
    }

    // pfx2as, one file per month since 2008.
    for m in windows::pfx2as_start().through(end) {
        let table = world.pfx2as_at(m);
        write(
            root,
            &format!(
                "pfx2as/routeviews-rv2-{}{:02}01.pfx2as",
                m.year(),
                m.month()
            ),
            &table.to_text(),
            &mut summary,
        )?;
    }

    // Delegations: yearly snapshots as the registry publishes them, plus
    // one full-history file at the archive's end date — the snapshot the
    // loader rebuilds the allocation ledger from (it reads the *last*
    // delegations entry in the manifest).
    for year in 2008..=end.year() {
        let m = MonthStamp::new(year, 1);
        if m > end {
            break;
        }
        let file = world.addressing.delegation_file(Date::ymd(year, 1, 1));
        write(
            root,
            &format!("delegations/delegated-lacnic-{year}0101"),
            &file.to_text(Date::ymd(year, 1, 1)),
            &mut summary,
        )?;
    }
    let last_day = end.last_day();
    let file = world.addressing.delegation_file(last_day);
    write(
        root,
        &format!(
            "delegations/delegated-lacnic-{:04}{:02}{:02}",
            last_day.year(),
            last_day.month(),
            last_day.day()
        ),
        &file.to_text(last_day),
        &mut summary,
    )?;

    // PeeringDB dumps, one per month of the schema-v2 era.
    for (m, snap) in world.peeringdb.iter() {
        write(
            root,
            &format!(
                "peeringdb/peeringdb_2_dump_{}_{:02}_01.json",
                m.year(),
                m.month()
            ),
            &snap.to_json(),
            &mut summary,
        )?;
    }

    // Cable map.
    write(
        root,
        "cables/cable-map.json",
        &world.cables.to_json(),
        &mut summary,
    )?;

    // Off-net scans.
    for scan in &world.cert_scans {
        write(
            root,
            &format!("offnets/scan-{}.json", scan.month.year()),
            &scan.to_json(),
            &mut summary,
        )?;
    }

    // Top sites.
    for list in &world.top_sites {
        write(
            root,
            &format!("topsites/{}.json", list.country),
            &list.to_json(),
            &mut summary,
        )?;
    }

    // The full per-(country, month) NDT shard set — the same substreams
    // `world.mlab` aggregated, encoded on sweep workers and written in
    // plan order. Reading the files back in this order replays the exact
    // observation sequence into the P² estimators. Only shards whose
    // manifest fingerprint changed (or whose file is gone) are rebuilt.
    let plan = bandwidth::shard_plan(windows::mlab_start(), end);
    let previous = read_shard_manifest(root);
    let previous_index = read_shard_index(root);
    let fmt = options.shard_format;
    let codec_tag = options.codec_tag();
    let jobs: Vec<(bandwidth::NdtShard, bool)> = plan
        .iter()
        .map(|&shard| {
            let (cc, month) = shard;
            let fingerprint = shard_fingerprint(&world.config, &world.scenario, codec_tag, shard);
            let rel = mlab_shard_path_with(shard, fmt);
            let fresh = !options.force
                && previous.get(&format!("{cc}/{month}")).is_some_and(|rec| {
                    rec.fingerprint == fingerprint && rec.path == rel && root.join(&rel).exists()
                });
            (shard, !fresh)
        })
        .collect();
    let encoded = sweep::parallel_map_with(
        sweep::worker_count(plan.len()),
        &jobs,
        |&(shard, rebuild)| -> Option<Vec<u8>> {
            if !rebuild {
                return None;
            }
            let (cc, month) = shard;
            let scale = world.config.mlab_scale_for(cc) * world.scenario.mlab_factor(cc, month);
            let rows = bandwidth::generate_shard(&world.operators, world.config.seed, scale, shard);
            Some(match fmt {
                ShardFormat::Text => {
                    let mut text = String::new();
                    for test in &rows {
                        text.push_str(&test.to_row());
                        text.push('\n');
                    }
                    text.into_bytes()
                }
                ShardFormat::Columnar => {
                    if options.columnar_v1 {
                        columnar::encode_rows(&rows)
                    } else {
                        columnar::encode_rows_v2(&rows)
                    }
                }
            })
        },
    );
    let mut shard_manifest = format!("# lacnet NDT shard manifest ({SHARD_GEN_VERSION})\n");
    let mut shard_index = format!(
        "# lacnet NDT shard index ({SHARD_GEN_VERSION}): \
         label\tpath\trows\tblocks\tmin_day\tmax_day\n"
    );
    for (&(shard, _), bytes) in jobs.iter().zip(&encoded) {
        let (cc, month) = shard;
        let label = format!("{cc}/{month}");
        let rel = mlab_shard_path_with(shard, fmt);
        let (content_hash, rows, blocks, days) = match bytes {
            Some(bytes) => {
                write_bytes(root, &rel, bytes, &mut summary)?;
                // Drop a stale sibling left by a dump in the other format
                // so the tree never holds two encodings of one shard.
                let stale = mlab_shard_path_with(
                    shard,
                    match fmt {
                        ShardFormat::Text => ShardFormat::Columnar,
                        ShardFormat::Columnar => ShardFormat::Text,
                    },
                );
                let _ = fs::remove_file(root.join(stale));
                summary.shards_written += 1;
                let (rows, blocks, days) = shard_census(bytes, fmt)?;
                (codec::fnv1a64(bytes), rows, blocks, days)
            }
            None => {
                summary.files.push(rel.clone());
                summary.shards_skipped += 1;
                // Reuse the previous index record for untouched shards;
                // a pre-index tree (no index.tsv yet) — or a pre-day-span
                // index whose non-empty record can't say what it covers —
                // is censused from the file it proved exists during the
                // freshness check.
                let (rows, blocks, days) = match previous_index.get(&label) {
                    Some(rec) if rec.path == rel && (rec.days.is_some() || rec.rows == 0) => {
                        (rec.rows, rec.blocks, rec.days)
                    }
                    _ => shard_census(&fs::read(root.join(&rel))?, fmt)?,
                };
                (previous[&label].content_hash, rows, blocks, days)
            }
        };
        let _ = writeln!(
            shard_manifest,
            "{label}\t{:016x}\t{content_hash:016x}\t{rel}",
            shard_fingerprint(&world.config, &world.scenario, codec_tag, shard),
        );
        let (min_day, max_day) = match days {
            Some((lo, hi)) => (lo.to_string(), hi.to_string()),
            None => ("-".to_owned(), "-".to_owned()),
        };
        let _ = writeln!(
            shard_index,
            "{label}\t{rel}\t{rows}\t{blocks}\t{min_day}\t{max_day}"
        );
    }
    write(root, MLAB_MANIFEST, &shard_manifest, &mut summary)?;
    write(root, MLAB_INDEX, &shard_index, &mut summary)?;

    // A traceroute archive sample: every Venezuelan probe's path to
    // GPDNS at the final month (the raw form of MSM 1591146).
    {
        use lacnet_atlas::anycast::{AnycastFleet, AnycastSite, SiteScope};
        use lacnet_atlas::gpdns::LatencyModel;
        use lacnet_atlas::traceroute;
        let month = end;
        let fleet = AnycastFleet::new(
            world
                .dns
                .gpdns_sites
                .iter()
                .filter(|s| s.active_in(month))
                .map(|s| AnycastSite {
                    id: s.id.clone(),
                    location: s.location,
                    scope: SiteScope::Global,
                })
                .collect(),
        );
        let model = LatencyModel::default();
        let transits = [
            lacnet_types::Asn(23520),
            lacnet_types::Asn(6762),
            lacnet_types::Asn(52320),
            lacnet_types::Asn(3356),
        ];
        let mut text = String::new();
        let rng_root = Rng::seeded(world.config.seed);
        for probe in world.dns.probes.active_in_country(month, country::VE) {
            if let Some(site) = fleet.catch(probe) {
                let path = traceroute::gpdns_path(probe, site, &transits);
                let mut rng = rng_root.fork(&format!("dump/traceroute/{}", probe.id));
                let tr = traceroute::simulate(probe, site, &model, &path, month, &mut rng);
                text.push_str(&tr.to_text());
            }
        }
        write(root, "atlas/traceroutes-ve.txt", &text, &mut summary)?;
    }

    // Daily reachability for the blackout year, one file per country.
    let reach = blackouts::daily_reachability_with(
        &world.dns,
        Date::ymd(2019, 1, 1),
        Date::ymd(2019, 12, 31),
        world.config.seed,
        &world.scenario,
    );
    for (cc, series) in &reach {
        write(
            root,
            &format!("atlas/reachability-{cc}-2019.tsv"),
            &series.to_tsv(),
            &mut summary,
        )?;
    }

    // Manifest.
    let mut manifest = String::new();
    let _ = writeln!(
        manifest,
        "# lacnet dataset dump (seed {:#x})",
        world.config.seed
    );
    for f in &summary.files {
        let _ = writeln!(manifest, "{f}");
    }
    // The manifest lists itself so `verify` covers the whole tree.
    let _ = writeln!(manifest, "MANIFEST.txt");
    write(root, "MANIFEST.txt", &manifest, &mut summary)?;
    Ok(summary)
}

/// Re-parse every exported file, proving the tree is consumable by the
/// substrate parsers alone (no access to the in-memory world).
///
/// NDT shards are the one archive that is unbounded at real scale, so
/// text shards are *streamed* through `ndt::stream_rows` into an
/// aggregator without materializing the file; columnar `.ndtc` shards
/// are read whole — their CRC-32 footer covers the full container — and
/// decoded with every structural check applied. The shard manifest is
/// verified structurally: every shard it lists must exist.
pub fn verify(root: &Path) -> Result<usize> {
    let mut checked = 0usize;
    let read = |rel: &str| -> String { fs::read_to_string(root.join(rel)).unwrap_or_default() };
    let manifest = read("MANIFEST.txt");
    let mut agg =
        lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
    for rel in manifest.lines().filter(|l| !l.starts_with('#')) {
        if rel == MLAB_MANIFEST {
            // Structural check: every listed shard file must exist.
            for (label, rec) in read_shard_manifest(root) {
                if !root.join(&rec.path).exists() {
                    return Err(lacnet_types::Error::missing(
                        "NDT shard from manifest",
                        &label,
                    ));
                }
            }
            checked += 1;
            continue;
        }
        if rel == MLAB_INDEX {
            // Structural check: every indexed shard file must exist.
            for (label, rec) in read_shard_index(root) {
                if !root.join(&rec.path).exists() {
                    return Err(lacnet_types::Error::missing("NDT shard from index", &label));
                }
            }
            checked += 1;
            continue;
        }
        if rel.starts_with("mlab/") {
            if rel.ends_with(".ndtc") {
                let bytes = fs::read(root.join(rel))
                    .map_err(|_| lacnet_types::Error::missing("NDT archive shard", rel))?;
                agg.observe_columns(&columnar::decode(&bytes)?);
            } else {
                let file = fs::File::open(root.join(rel))
                    .map_err(|_| lacnet_types::Error::missing("NDT archive shard", rel))?;
                agg.observe_reader(io::BufReader::new(file))?;
            }
            checked += 1;
            continue;
        }
        let text = read(rel);
        if rel.starts_with("serial1/") {
            lacnet_bgp::serial1::parse(&text)?;
        } else if rel.starts_with("pfx2as/") {
            lacnet_bgp::PfxToAs::parse(&text)?;
        } else if rel.starts_with("delegations/") {
            lacnet_registry::DelegationFile::parse(&text)?;
        } else if rel.starts_with("peeringdb/") {
            lacnet_peeringdb::Snapshot::from_json(&text)?.validate()?;
        } else if rel.starts_with("cables/") {
            lacnet_telegeo::CableMap::from_json(&text)?;
        } else if rel.starts_with("offnets/") {
            lacnet_offnets::CertScan::from_json(&text)?;
        } else if rel.starts_with("topsites/") {
            lacnet_webmeas::CountryTopSites::from_json(&text)?;
        } else if rel.starts_with("atlas/traceroutes") {
            lacnet_atlas::traceroute::parse_traceroutes(&text)?;
        } else if rel.starts_with("atlas/reachability") {
            lacnet_atlas::outages::ReachabilitySeries::parse_tsv(&text)?;
        } else if rel == "world/scenario.toml" {
            lacnet_crisis::Scenario::parse(&text).map_err(lacnet_types::Error::from)?;
        } else if rel.starts_with("world/") {
            lacnet_crisis::WorldConfig::parse(&text)?;
        } else if rel.starts_with("atlas/") || rel == "MANIFEST.txt" {
            // Plain TSV / manifest: nothing structured to validate.
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_and_verify_roundtrip() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-dump-{}", std::process::id()));
        let summary = dump(world, &dir).expect("dump succeeds");
        assert!(summary.files.len() > 2000, "{} files", summary.files.len());
        assert!(summary.bytes > 1_000_000, "{} bytes", summary.bytes);
        let checked = verify(&dir).expect("every file parses");
        assert_eq!(checked, summary.files.len());
        // Spot-check a known file exists with plausible content.
        let serial = std::fs::read_to_string(dir.join("serial1/20130101.as-rel.txt")).unwrap();
        assert!(serial.contains("|8048|-1"), "CANTV has providers in 2013");
        // The shard tree covers the full per-(country, month) plan.
        let ve_july = std::fs::read_to_string(dir.join("mlab/VE/ndt-2023-07.tsv")).unwrap();
        assert!(ve_july.lines().count() > 10);
        // A fresh dump writes every shard; a re-dump of the same config
        // skips every one.
        let plan = bandwidth::shard_plan(windows::mlab_start(), world.config.end);
        assert_eq!(summary.shards_written, plan.len());
        assert_eq!(summary.shards_skipped, 0);
        let again = dump(world, &dir).expect("re-dump succeeds");
        assert_eq!(again.shards_written, 0);
        assert_eq!(again.shards_skipped, plan.len());
        assert_eq!(again.files, summary.files);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn columnar_dump_verifies_and_switches_formats_cleanly() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-dump-col-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let columnar = DumpOptions {
            shard_format: ShardFormat::Columnar,
            ..DumpOptions::default()
        };
        let summary = dump_with(world, &dir, columnar).expect("columnar dump succeeds");
        assert!(summary.shards_written > 0);
        let checked = verify(&dir).expect("columnar tree verifies");
        assert_eq!(checked, summary.files.len());
        let ve_july = dir.join("mlab/VE/ndt-2023-07.ndtc");
        assert!(ve_july.exists());
        // Re-dumping in text format rewrites everything (fingerprints
        // change with the format) and removes the columnar siblings.
        let text = dump_with(world, &dir, DumpOptions::default()).expect("text re-dump");
        assert_eq!(text.shards_skipped, 0);
        assert!(!ve_july.exists(), "stale columnar sibling removed");
        assert!(dir.join("mlab/VE/ndt-2023-07.tsv").exists());
        // `--force` rewrites even an up-to-date tree.
        let forced = dump_with(
            world,
            &dir,
            DumpOptions {
                shard_format: ShardFormat::Text,
                force: true,
                ..DumpOptions::default()
            },
        )
        .expect("forced re-dump");
        assert_eq!(forced.shards_skipped, 0);
        assert_eq!(forced.shards_written, text.shards_written);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_index_tracks_the_tree_and_v1_dumps_write_legacy_containers() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-dump-idx-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let columnar = DumpOptions {
            shard_format: ShardFormat::Columnar,
            ..DumpOptions::default()
        };
        dump_with(world, &dir, columnar).expect("v2 dump succeeds");
        let plan = bandwidth::shard_plan(windows::mlab_start(), world.config.end);
        let index = read_shard_index(&dir);
        assert_eq!(index.len(), plan.len());
        let total_rows: u64 = index.values().map(|r| r.rows).sum();
        assert!(total_rows > 0);
        for rec in index.values() {
            assert!(dir.join(&rec.path).exists(), "{} missing", rec.path);
            assert!(rec.blocks >= 1);
        }
        let ve_july = std::fs::read(dir.join("mlab/VE/ndt-2023-07.ndtc")).unwrap();
        assert_eq!(ve_july[4], 2, "the default columnar writer emits v2");
        // A no-op re-dump reproduces the index from reused records.
        dump_with(world, &dir, columnar).expect("re-dump succeeds");
        assert_eq!(read_shard_index(&dir), index);
        // `--ndtc-v1` is a distinct codec: everything rewrites as legacy
        // single-block containers, and the tree still verifies.
        let v1 = dump_with(
            world,
            &dir,
            DumpOptions {
                shard_format: ShardFormat::Columnar,
                columnar_v1: true,
                ..DumpOptions::default()
            },
        )
        .expect("v1 dump succeeds");
        assert_eq!(v1.shards_skipped, 0);
        let ve_july = std::fs::read(dir.join("mlab/VE/ndt-2023-07.ndtc")).unwrap();
        assert_eq!(ve_july[4], 1, "--ndtc-v1 emits the legacy container");
        let v1_index = read_shard_index(&dir);
        assert!(v1_index.values().all(|r| r.blocks == 1));
        assert_eq!(v1_index.values().map(|r| r.rows).sum::<u64>(), total_rows);
        verify(&dir).expect("v1 tree verifies");
        std::fs::remove_dir_all(&dir).ok();
    }
}
