//! `lacnet-gen` — generate a world and export every dataset to disk in
//! its native archive format.
//!
//! ```text
//! lacnet-gen --out DIR [--seed N] [--test-world] [--scenario NAME|FILE]
//!            [--shard-format text|columnar] [--ndtc-v1] [--force] [--verify]
//! lacnet-gen --list-scenarios
//! ```
//!
//! `--scenario` selects a built-in scenario by name (`--list-scenarios`
//! prints the inventory) or loads a `.toml` sidecar from a path. The
//! default is the paper's Venezuela storyline, whose tree is
//! byte-identical to a no-flag dump; non-default scenarios stamp their
//! fingerprint into every `mlab/manifest.tsv` shard record and write a
//! `world/scenario.toml` sidecar the loader reapplies.
//!
//! `--ndtc-v1` writes columnar shards in the frozen v1 single-block
//! container instead of the footer-indexed v2 layout — for producing
//! legacy trees that exercise the version-dispatch read path.
//!
//! `--test-world` dumps the reduced fixed-seed world the test suites
//! run on — a mini archive that generates and parses in seconds (the CI
//! serve job's fixture). Flags compose left to right, so a `--seed`
//! after `--test-world` overrides the test seed.
//!
//! Re-running over an existing tree refreshes incrementally: NDT shards
//! whose inputs (seed, per-country volume scale, scenario, format) are
//! unchanged per `mlab/manifest.tsv` are left untouched unless `--force`
//! is given. `mlab/index.tsv` records each shard's row/block census plus
//! its min/max day span, which the serve layer's range queries use to
//! prune shards without opening them; re-running upgrades older
//! four-column index records to the day-span form in place.

use lacnet_core::datasets::{self, DumpOptions};
use lacnet_crisis::{Scenario, World, WorldConfig};
use lacnet_mlab::ShardFormat;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = WorldConfig::default();
    let mut scenario = Scenario::venezuela();
    let mut out: Option<PathBuf> = None;
    let mut verify = false;
    let mut options = DumpOptions::default();

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--scenario" => {
                i += 1;
                let spec = args
                    .get(i)
                    .unwrap_or_else(|| die("--scenario needs a built-in name or a .toml path"));
                scenario =
                    Scenario::load(spec).unwrap_or_else(|e| die(&format!("--scenario: {e}")));
            }
            "--list-scenarios" => {
                for name in Scenario::builtin_names() {
                    let s = Scenario::builtin(name).expect("builtin scenario parses");
                    println!("{name}\t{}", s.description);
                }
                return;
            }
            "--shard-format" => {
                i += 1;
                options.shard_format = args
                    .get(i)
                    .and_then(|s| ShardFormat::parse_flag(s))
                    .unwrap_or_else(|| die("--shard-format needs `text` or `columnar`"));
            }
            "--test-world" => config = WorldConfig::test(),
            "--ndtc-v1" => options.columnar_v1 = true,
            "--force" => options.force = true,
            "--verify" => verify = true,
            "--help" | "-h" => {
                println!(
                    "usage: lacnet-gen --out DIR [--seed N] [--test-world] [--scenario NAME|FILE] [--shard-format text|columnar] [--ndtc-v1] [--force] [--verify]\n       lacnet-gen --list-scenarios"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| die("--out is required"));

    eprintln!(
        "generating world (seed {:#x}, scenario {}) …",
        config.seed, scenario.name
    );
    let world = World::generate_with(config, scenario);
    let summary = datasets::dump_with(&world, &out, options)
        .unwrap_or_else(|e| die(&format!("dump failed: {e}")));
    println!(
        "wrote {} files, {:.1} MiB, under {} ({} NDT shards written, {} up to date)",
        summary.files.len(),
        summary.bytes as f64 / (1024.0 * 1024.0),
        out.display(),
        summary.shards_written,
        summary.shards_skipped,
    );
    if verify {
        let checked =
            datasets::verify(&out).unwrap_or_else(|e| die(&format!("verify failed: {e}")));
        println!("re-parsed {checked} files successfully.");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
