//! `lacnet-gen` — generate a world and export every dataset to disk in
//! its native archive format.
//!
//! ```text
//! lacnet-gen --out DIR [--seed N] [--verify]
//! ```

use lacnet_core::datasets;
use lacnet_crisis::{World, WorldConfig};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = WorldConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut verify = false;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--verify" => verify = true,
            "--help" | "-h" => {
                println!("usage: lacnet-gen --out DIR [--seed N] [--verify]");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    let out = out.unwrap_or_else(|| die("--out is required"));

    eprintln!("generating world (seed {:#x}) …", config.seed);
    let world = World::generate(config);
    let summary =
        datasets::dump(&world, &out).unwrap_or_else(|e| die(&format!("dump failed: {e}")));
    println!(
        "wrote {} files, {:.1} MiB, under {}",
        summary.files.len(),
        summary.bytes as f64 / (1024.0 * 1024.0),
        out.display()
    );
    if verify {
        let checked =
            datasets::verify(&out).unwrap_or_else(|e| die(&format!("verify failed: {e}")));
        println!("re-parsed {checked} files successfully.");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
