//! `vzla-report` — reproduce every figure and table of the study, from a
//! generated world or from a dumped archive tree.
//!
//! ```text
//! vzla-report [--seed N] [--from-archive DIR] [--shard-format auto|text|columnar]
//!             [--csv DIR] [--only figNN[,figMM…]]
//! ```

use lacnet_core::{experiments, render, DataSource};
use lacnet_crisis::{World, WorldConfig};
use lacnet_mlab::ShardFormat;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = WorldConfig::default();
    let mut csv_dir: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut only: Option<Vec<String>> = None;
    let mut archive: Option<std::path::PathBuf> = None;
    let mut shard_format: Option<ShardFormat> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--from-archive" => {
                i += 1;
                archive = Some(std::path::PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--from-archive needs a directory")),
                ));
            }
            "--shard-format" => {
                i += 1;
                shard_format = match args.get(i).map(String::as_str) {
                    Some("auto") => None,
                    Some(flag) => Some(ShardFormat::parse_flag(flag).unwrap_or_else(|| {
                        die("--shard-format needs `auto`, `text` or `columnar`")
                    })),
                    None => die("--shard-format needs `auto`, `text` or `columnar`"),
                };
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                );
            }
            "--markdown" => {
                i += 1;
                markdown = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--markdown needs a file")),
                );
            }
            "--only" => {
                i += 1;
                only = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--only needs ids"))
                        .split(',')
                        .map(str::to_owned)
                        .collect(),
                );
            }
            "--help" | "-h" => {
                println!("usage: vzla-report [--seed N] [--from-archive DIR] [--shard-format auto|text|columnar] [--csv DIR] [--markdown FILE] [--only figNN,...]");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    // Either backend feeds the identical battery: the world held in
    // memory, or the same datasets parsed back from a `lacnet-gen` dump.
    let world; // keeps the borrowed backend alive across the run
    let source = match &archive {
        Some(dir) => {
            eprintln!("loading archive from {} …", dir.display());
            let t0 = std::time::Instant::now();
            let src = DataSource::from_archive_with(dir, shard_format)
                .unwrap_or_else(|e| die(&format!("archive load failed: {e}")));
            eprintln!(
                "archive parsed in {:.1?} (seed {:#x}); running experiments …",
                t0.elapsed(),
                src.config().seed
            );
            src
        }
        None => {
            eprintln!("generating world (seed {:#x}) …", config.seed);
            let t0 = std::time::Instant::now();
            world = World::generate(config);
            eprintln!(
                "world ready in {:.1?}; prewarming pfx2as snapshots and CANTV cones …",
                t0.elapsed()
            );
            // Fig. 2, Fig. 14 and any dataset export all read the same
            // monthly tables, and Figs. 8/9 the same CANTV cones; deriving
            // both cache sets across worker threads up front means every
            // later sweep is a cache hit.
            let t1 = std::time::Instant::now();
            world.prewarm(lacnet_crisis::config::windows::pfx2as_start(), config.end);
            eprintln!(
                "{} tables + {} cones cached in {:.1?}; running experiments …",
                world.pfx2as_computations(),
                world.cone_computations(),
                t1.elapsed()
            );
            DataSource::in_memory(&world)
        }
    };

    let seed = source.config().seed;
    let mut results = experiments::all(&source);
    results.extend(lacnet_core::extensions::all(&source));
    let mut ok = 0usize;
    let mut diverged = 0usize;
    for result in &results {
        if let Some(filter) = &only {
            if !filter.iter().any(|f| f == &result.id) {
                continue;
            }
        }
        print!("{}", render::render_result(result));
        if result.all_match() {
            ok += 1;
        } else {
            diverged += 1;
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for artifact in &result.artifacts {
                let path = format!("{dir}/{}.csv", artifact.id());
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(render::to_csv(artifact).as_bytes())
                    .expect("write csv");
            }
        }
    }
    if let Some(path) = &markdown {
        let md = lacnet_core::markdown::experiments_markdown(&results, seed);
        std::fs::write(path, md).expect("write markdown");
        eprintln!("wrote {path}");
    }
    println!("\n{ok} experiments matched (22 paper artifacts + extensions), {diverged} diverged.");
    if diverged > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
