//! `vzla-report` — reproduce every figure and table of the study, from a
//! generated world or from a dumped archive tree.
//!
//! ```text
//! vzla-report [--seed N] [--test-world] [--from-archive DIR]
//!             [--shard-format auto|text|columnar] [--scenario NAME|FILE]
//!             [--matrix NAME|FILE,NAME|FILE,…]
//!             [--csv DIR] [--markdown FILE] [--only figNN[,figMM…]]
//! ```
//!
//! `--scenario` runs the battery on one non-default world; `--matrix`
//! generates one world per listed scenario on sweep workers and prints a
//! per-scenario summary table. The paper's match tolerances describe the
//! Venezuela storyline only, so divergence gates the exit status only
//! for the default scenario — counterfactual worlds are *expected* to
//! diverge from the paper's endpoints.

use lacnet_core::{experiments, render, DataSource};
use lacnet_crisis::{Scenario, World, WorldConfig};
use lacnet_mlab::ShardFormat;
use lacnet_types::sweep;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = WorldConfig::default();
    let mut scenario = Scenario::venezuela();
    let mut matrix: Option<Vec<Scenario>> = None;
    let mut csv_dir: Option<String> = None;
    let mut markdown: Option<String> = None;
    let mut only: Option<Vec<String>> = None;
    let mut archive: Option<std::path::PathBuf> = None;
    let mut shard_format: Option<ShardFormat> = None;

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--test-world" => config = WorldConfig::test(),
            "--from-archive" => {
                i += 1;
                archive = Some(std::path::PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--from-archive needs a directory")),
                ));
            }
            "--scenario" => {
                i += 1;
                let spec = args
                    .get(i)
                    .unwrap_or_else(|| die("--scenario needs a built-in name or a .toml path"));
                scenario =
                    Scenario::load(spec).unwrap_or_else(|e| die(&format!("--scenario: {e}")));
            }
            "--matrix" => {
                i += 1;
                let list = args
                    .get(i)
                    .unwrap_or_else(|| die("--matrix needs a comma-separated scenario list"));
                matrix = Some(
                    list.split(',')
                        .map(|spec| {
                            Scenario::load(spec.trim())
                                .unwrap_or_else(|e| die(&format!("--matrix: {e}")))
                        })
                        .collect(),
                );
            }
            "--shard-format" => {
                i += 1;
                shard_format = match args.get(i).map(String::as_str) {
                    Some("auto") => None,
                    Some(flag) => Some(ShardFormat::parse_flag(flag).unwrap_or_else(|| {
                        die("--shard-format needs `auto`, `text` or `columnar`")
                    })),
                    None => die("--shard-format needs `auto`, `text` or `columnar`"),
                };
            }
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                );
            }
            "--markdown" => {
                i += 1;
                markdown = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--markdown needs a file")),
                );
            }
            "--only" => {
                i += 1;
                only = Some(
                    args.get(i)
                        .unwrap_or_else(|| die("--only needs ids"))
                        .split(',')
                        .map(str::to_owned)
                        .collect(),
                );
            }
            "--help" | "-h" => {
                println!("usage: vzla-report [--seed N] [--test-world] [--from-archive DIR] [--shard-format auto|text|columnar] [--scenario NAME|FILE] [--matrix LIST] [--csv DIR] [--markdown FILE] [--only figNN,...]");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }
    if archive.is_some() && (!scenario.is_default() || matrix.is_some()) {
        die("--scenario/--matrix apply to generated worlds; an archive carries its own world/scenario.toml sidecar");
    }

    // Matrix mode: one world per scenario, generated and measured on
    // sweep workers, reported as a summary table. The exit status gates
    // only on the default scenario — the counterfactuals diverge from
    // the paper's endpoints by construction.
    if let Some(scenarios) = matrix {
        eprintln!(
            "scenario matrix: {} worlds (seed {:#x}) …",
            scenarios.len(),
            config.seed
        );
        let t0 = std::time::Instant::now();
        let rows = sweep::parallel_map_with(
            sweep::worker_count(scenarios.len()),
            &scenarios,
            |sc: &Scenario| {
                let world = World::generate_with(config, sc.clone());
                let source = DataSource::in_memory(&world);
                let mut results = experiments::all(&source);
                results.extend(lacnet_core::extensions::all(&source));
                let ok = results.iter().filter(|r| r.all_match()).count();
                (sc.name.clone(), sc.is_default(), ok, results.len() - ok)
            },
        );
        println!("scenario\tdefault\tmatched\tdiverged");
        for (name, is_default, ok, diverged) in &rows {
            println!("{name}\t{is_default}\t{ok}\t{diverged}");
        }
        eprintln!("matrix done in {:.1?}", t0.elapsed());
        if rows
            .iter()
            .any(|(_, is_default, _, d)| *is_default && *d > 0)
        {
            std::process::exit(1);
        }
        return;
    }

    // Either backend feeds the identical battery: the world held in
    // memory, or the same datasets parsed back from a `lacnet-gen` dump.
    let world; // keeps the borrowed backend alive across the run
    let source = match &archive {
        Some(dir) => {
            eprintln!("loading archive from {} …", dir.display());
            let t0 = std::time::Instant::now();
            let src = DataSource::from_archive_with(dir, shard_format)
                .unwrap_or_else(|e| die(&format!("archive load failed: {e}")));
            eprintln!(
                "archive parsed in {:.1?} (seed {:#x}, scenario {}); running experiments …",
                t0.elapsed(),
                src.config().seed,
                src.scenario().name,
            );
            src
        }
        None => {
            eprintln!(
                "generating world (seed {:#x}, scenario {}) …",
                config.seed, scenario.name
            );
            let t0 = std::time::Instant::now();
            world = World::generate_with(config, scenario);
            eprintln!(
                "world ready in {:.1?}; prewarming pfx2as snapshots and CANTV cones …",
                t0.elapsed()
            );
            // Fig. 2, Fig. 14 and any dataset export all read the same
            // monthly tables, and Figs. 8/9 the same CANTV cones; deriving
            // both cache sets across worker threads up front means every
            // later sweep is a cache hit.
            let t1 = std::time::Instant::now();
            world.prewarm(lacnet_crisis::config::windows::pfx2as_start(), config.end);
            eprintln!(
                "{} tables + {} cones cached in {:.1?}; running experiments …",
                world.pfx2as_computations(),
                world.cone_computations(),
                t1.elapsed()
            );
            DataSource::in_memory(&world)
        }
    };

    let seed = source.config().seed;
    let default_scenario = source.scenario().is_default();
    let mut results = experiments::all(&source);
    results.extend(lacnet_core::extensions::all(&source));
    let mut ok = 0usize;
    let mut diverged = 0usize;
    for result in &results {
        if let Some(filter) = &only {
            if !filter.iter().any(|f| f == &result.id) {
                continue;
            }
        }
        print!("{}", render::render_result(result));
        if result.all_match() {
            ok += 1;
        } else {
            diverged += 1;
        }
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            for artifact in &result.artifacts {
                let path = format!("{dir}/{}.csv", artifact.id());
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(render::to_csv(artifact).as_bytes())
                    .expect("write csv");
            }
        }
    }
    if let Some(path) = &markdown {
        let md = lacnet_core::markdown::experiments_markdown(&results, seed);
        std::fs::write(path, md).expect("write markdown");
        eprintln!("wrote {path}");
    }
    println!("\n{ok} experiments matched (22 paper artifacts + extensions), {diverged} diverged.");
    if diverged > 0 && default_scenario {
        std::process::exit(1);
    }
    if diverged > 0 {
        eprintln!(
            "note: divergence under a non-default scenario is expected; exit status not gated"
        );
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
