//! `lacnet-serve` — the battery as a long-running HTTP query service.
//!
//! ```text
//! lacnet-serve --archive DIR [--port N] [--addr HOST] [--threads N]
//!              [--cache N] [--port-file PATH]
//! lacnet-serve --in-memory [--seed N] [...]
//! ```
//!
//! Holds a resident [`DataSource`] (an archive tree dumped by
//! `lacnet-gen`, or a freshly generated world with `--in-memory`) and
//! serves every figure, table and extension as JSON under the routes
//! listed at `/endpoints`. Append `?format=tsv` for the canonical TSV
//! render the golden suite byte-checks. `/healthz`, `/archive` and
//! `/metrics` cover liveness, archive identity and observability.
//! `--port 0` binds an ephemeral port; `--port-file` writes the bound
//! port for scripts (the CI serve job's handshake).

use lacnet_core::serve::{ServeOptions, Server};
use lacnet_core::DataSource;
use lacnet_crisis::{World, WorldConfig};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut archive: Option<std::path::PathBuf> = None;
    let mut in_memory = false;
    let mut config = WorldConfig::default();
    let mut addr = "127.0.0.1".to_owned();
    let mut port: u16 = 8348;
    let mut port_file: Option<String> = None;
    let mut options = ServeOptions::default();

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--archive" => {
                i += 1;
                archive = Some(std::path::PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--archive needs a directory")),
                ));
            }
            "--in-memory" => in_memory = true,
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--addr" => {
                i += 1;
                addr = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--addr needs a host"));
            }
            "--port" => {
                i += 1;
                port = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--port needs a number (0 = ephemeral)"));
            }
            "--port-file" => {
                i += 1;
                port_file = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--port-file needs a path")),
                );
            }
            "--threads" => {
                i += 1;
                options.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--threads needs a positive number"));
            }
            "--cache" => {
                i += 1;
                options.cache_capacity = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--cache needs a positive capacity"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: lacnet-serve --archive DIR | --in-memory [--seed N] \
                     [--addr HOST] [--port N] [--threads N] [--cache N] [--port-file PATH]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
        i += 1;
    }

    let source: Arc<DataSource<'static>> = match (&archive, in_memory) {
        (Some(_), true) => die("--archive and --in-memory are mutually exclusive"),
        (Some(dir), false) => {
            eprintln!("loading archive from {} …", dir.display());
            let t0 = std::time::Instant::now();
            let src = DataSource::from_archive(dir)
                .unwrap_or_else(|e| die(&format!("archive load failed: {e}")));
            eprintln!(
                "archive parsed in {:.1?} (seed {:#x})",
                t0.elapsed(),
                src.config().seed
            );
            Arc::new(src)
        }
        (None, true) => {
            eprintln!("generating world (seed {:#x}) …", config.seed);
            let t0 = std::time::Instant::now();
            // A server lives for the process; leaking the world gives the
            // borrowed backend the 'static lifetime it needs.
            let world: &'static World = Box::leak(Box::new(World::generate(config)));
            eprintln!("world ready in {:.1?}", t0.elapsed());
            Arc::new(DataSource::in_memory(world))
        }
        (None, false) => die("pass --archive DIR or --in-memory"),
    };

    let server = Server::bind(source, &format!("{addr}:{port}"), options)
        .unwrap_or_else(|e| die(&format!("bind failed: {e}")));
    let bound = server
        .local_addr()
        .unwrap_or_else(|e| die(&format!("no local addr: {e}")));
    if let Some(path) = &port_file {
        std::fs::write(path, format!("{}\n", bound.port()))
            .unwrap_or_else(|e| die(&format!("cannot write port file {path}: {e}")));
    }
    eprintln!(
        "serving {} endpoints on http://{bound}/ ({} workers, cache {})",
        lacnet_core::registry::ENDPOINTS.len(),
        options.threads,
        options.cache_capacity
    );
    eprintln!(
        "NDT queries: {} and {}",
        lacnet_core::registry::NDT_MONTH_ROUTE,
        lacnet_core::registry::NDT_RANGE_ROUTE
    );
    if let Err(e) = server.run() {
        die(&format!("server failed: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
