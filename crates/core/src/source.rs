//! The `DataSource` abstraction: one access surface for the experiment
//! battery, served by two interchangeable backends.
//!
//! * [`DataSource::InMemory`] borrows a generated [`World`] — the fast
//!   path every unit test and the default `vzla-report` run use.
//! * [`DataSource::Archive`] owns an [`ArchiveWorld`] reloaded from a
//!   [`crate::datasets::dump`] tree: every dataset is rebuilt by parsing
//!   the dumped native-format files (serial-1 relationship files,
//!   RouteViews pfx2as, NRO delegations, PeeringDB v2 JSON dumps, the
//!   Telegeography cable map, yearly TLS scans, top-site scrapes,
//!   streamed M-Lab NDT shards, Atlas reachability TSVs), exactly as the
//!   pipeline would parse the real archives.
//!
//! Both backends carry their own pfx2as `SnapshotCache` and `ConeCache`,
//! so month-table and cone memoization behave identically on either
//! path. The round-trip suite (`tests/archive_roundtrip.rs`) proves the
//! full battery renders byte-identically from both.

use lacnet_atlas::outages::ReachabilitySeries;
use lacnet_bgp::{AsGraph, ConeCache, PfxToAs, TopologyArchive};
use lacnet_crisis::config::windows;
use lacnet_crisis::dns::{self, DnsWorld};
use lacnet_crisis::operators::Operators;
use lacnet_crisis::world::SnapshotCache;
use lacnet_crisis::{bandwidth, blackouts, Economy, World, WorldConfig};
use lacnet_mlab::aggregate::{Mode, MonthlyAggregator};
use lacnet_mlab::columnar::{
    self, ColumnReaderRef, ColumnSelection, ColumnSet, DecodeScratch, ReadStats, ShardFormat,
};
use lacnet_offnets::certs::CertScan;
use lacnet_peeringdb::{Snapshot, SnapshotArchive};
use lacnet_registry::{AllocationLedger, DelegationFile};
use lacnet_telegeo::CableMap;
use lacnet_types::stats::P2Quantile;
use lacnet_types::{sweep, Asn, CountryCode, Date, Error, MonthStamp, Result, TimeSeries};
use lacnet_webmeas::CountryTopSites;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A world reloaded from a dumped archive tree: the model roots
/// (economy, operators, DNS world) regenerated from the config sidecar,
/// every measured dataset parsed from its native-format files.
pub struct ArchiveWorld {
    /// The configuration read from `world/config.tsv`.
    pub config: WorldConfig,
    /// The scenario read from `world/scenario.toml`; a tree without the
    /// sidecar is a default (Venezuela) dump.
    pub scenario: lacnet_crisis::Scenario,
    /// Regenerated macro-economy (a pure function of the config).
    pub economy: Economy,
    /// Regenerated operator cast (a pure function of the seed).
    pub operators: Operators,
    /// Regenerated probes/roots/GPDNS world (a pure function of the seed).
    pub dns: DnsWorld,
    /// Topology parsed from the monthly serial-1 files.
    pub topology: TopologyArchive,
    /// Allocation ledger rebuilt from the full-history delegation file.
    pub ledger: AllocationLedger,
    /// PeeringDB snapshots parsed from the monthly JSON dumps.
    pub peeringdb: SnapshotArchive,
    /// Cable map parsed from the Telegeography-style export.
    pub cables: CableMap,
    /// M-Lab aggregation streamed from the per-(country, month) shards.
    pub mlab: MonthlyAggregator,
    /// TLS scans parsed from the yearly off-net exports, manifest order.
    pub cert_scans: Vec<CertScan>,
    /// Top-site scrapes parsed per country, manifest order.
    pub top_sites: Vec<CountryTopSites>,
    /// Daily reachability parsed from the per-country Atlas TSVs.
    pub reachability: BTreeMap<CountryCode, ReachabilitySeries>,
    /// The archive-level NDT shard index (`mlab/index.tsv`), keyed by
    /// `CC/YYYY-MM` label. Empty on pre-index trees — queries then fall
    /// back to probing shard paths directly.
    ndt_index: BTreeMap<String, crate::datasets::ShardIndexRecord>,
    root: PathBuf,
    pfx2as_cache: SnapshotCache,
    cone_cache: ConeCache,
}

/// What one `(country, month)` NDT query returns: how many tests
/// matched, their median download, and exactly how much of the shard the
/// answer cost to decode.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtMonthStats {
    /// Tests matching the query.
    pub rows: usize,
    /// P² median download (Mbit/s) over those tests, in row order — the
    /// same estimator state the resident aggregate holds for the group.
    pub median_download: Option<f64>,
    /// The backing the answer came from (`columnar-v2`, `columnar-v1`,
    /// `text`, or `in-memory`).
    pub format: &'static str,
    /// Decode accounting (zero for text and in-memory backings).
    pub read: ReadStats,
}

/// What a `(country, [from, to])` NDT range query returns: the
/// per-month answers in ascending month order — each entry equal to
/// what the single-month query for that `(country, month)` would have
/// returned — plus the range-level merges. The merge is deterministic
/// by construction: shards decode on sweep workers but results are
/// folded in shard-plan (month) order, never completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtRangeStats {
    /// Months in `[from, to]` with a shard in the archive, ascending.
    pub months: Vec<(MonthStamp, NdtMonthStats)>,
    /// Total matching tests across the range.
    pub rows: usize,
    /// Mean of the monthly median downloads (Mbit/s); `None` when no
    /// month in the range produced a median.
    pub mean_monthly_median: Option<f64>,
    /// Months the inclusive `[from, to]` span covers.
    pub months_queried: usize,
    /// Shards skipped without opening a file because the resident shard
    /// index's day-span summary proves they cannot intersect the range.
    pub shards_pruned: usize,
    /// Merged decode accounting across every decoded shard — the sum of
    /// the per-month `read` fields.
    pub read: ReadStats,
}

fn month_from_name(name: &str, prefix: &str, suffix: &str) -> Option<MonthStamp> {
    let stamp = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    // `YYYYMMDD` (day ignored) or `YYYY_MM_DD` with either separator.
    let digits: String = stamp.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() < 6 {
        return None;
    }
    let year: i32 = digits[0..4].parse().ok()?;
    let month: u8 = digits[4..6].parse().ok()?;
    (1..=12)
        .contains(&month)
        .then(|| MonthStamp::new(year, month))
}

impl ArchiveWorld {
    /// Load an archive dumped by [`crate::datasets::dump`] from `root`,
    /// parsing every dataset from its native format, auto-detecting the
    /// NDT shard encoding per shard. See [`ArchiveWorld::load_with`].
    pub fn load(root: &Path) -> Result<ArchiveWorld> {
        ArchiveWorld::load_with(root, None)
    }

    /// Load an archive dumped by [`crate::datasets::dump_with`] from
    /// `root`, parsing every dataset from its native format.
    ///
    /// NDT shards feed the aggregator in shard-plan order — the exact
    /// observation sequence the in-memory aggregator saw — so the
    /// order-sensitive P² estimators land in identical state. Each
    /// shard's on-disk format is auto-detected (columnar `.ndtc` probed
    /// first, then text `.tsv`); columnar shards are decoded on sweep
    /// workers and merged through `observe_columns`, while text shards
    /// are *streamed* through `ndt::stream_rows` without materializing
    /// the file. Passing `Some(format)` in `expect` instead demands that
    /// every shard be in that format and fails on the first that is not.
    pub fn load_with(root: &Path, expect: Option<ShardFormat>) -> Result<ArchiveWorld> {
        let read = |rel: &str| -> Result<String> {
            fs::read_to_string(root.join(rel))
                .map_err(|_| Error::missing("archive file", format!("{}/{rel}", root.display())))
        };
        let config = WorldConfig::parse(&read("world/config.tsv")?)?;
        let scenario = match fs::read_to_string(root.join("world/scenario.toml")) {
            Ok(text) => lacnet_crisis::Scenario::parse(&text).map_err(Error::from)?,
            Err(_) => lacnet_crisis::Scenario::venezuela(),
        };

        // The model roots are pure functions of the config and scenario;
        // regenerating them is the archive's equivalent of carrying them
        // as sidecars.
        let (economy, (operators, dns_world)) = sweep::join2(
            || Economy::generate_with(config.economy_start, config.end, &scenario.gdp_anchors),
            || {
                sweep::join2(
                    || Operators::generate(config.seed),
                    || dns::build_dns_world(config.seed),
                )
            },
        );

        let manifest = read("MANIFEST.txt")?;
        let entries: Vec<&str> = manifest
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();

        let mut topology = TopologyArchive::new();
        let mut peeringdb = SnapshotArchive::new();
        let mut cables: Option<CableMap> = None;
        let mut cert_scans = Vec::new();
        let mut top_sites = Vec::new();
        let mut reachability = BTreeMap::new();
        let mut last_delegations: Option<&str> = None;

        for &rel in &entries {
            if let Some(name) = rel.strip_prefix("serial1/") {
                let m = month_from_name(name, "", ".as-rel.txt")
                    .ok_or_else(|| Error::parse("serial-1 file month", rel))?;
                let edges = lacnet_bgp::serial1::parse(&read(rel)?)?;
                topology.insert(m, AsGraph::from_edges(edges));
            } else if let Some(name) = rel.strip_prefix("peeringdb/") {
                let m = month_from_name(name, "peeringdb_2_dump_", ".json")
                    .ok_or_else(|| Error::parse("peeringdb dump month", rel))?;
                peeringdb.insert(m, Snapshot::from_json(&read(rel)?)?);
            } else if rel.starts_with("delegations/") {
                last_delegations = Some(rel);
            } else if rel.starts_with("cables/") {
                cables = Some(CableMap::from_json(&read(rel)?)?);
            } else if rel.starts_with("offnets/") {
                cert_scans.push(CertScan::from_json(&read(rel)?)?);
            } else if rel.starts_with("topsites/") {
                top_sites.push(CountryTopSites::from_json(&read(rel)?)?);
            } else if let Some(name) = rel.strip_prefix("atlas/reachability-") {
                let code = name.split('-').next().unwrap_or_default();
                let cc = CountryCode::new(code)
                    .map_err(|_| Error::parse("reachability file country", rel))?;
                reachability.insert(cc, ReachabilitySeries::parse_tsv(&read(rel)?)?);
            }
            // mlab/ shards are streamed below in plan order; traceroute
            // samples and the manifest itself carry no battery state.
        }

        let last_delegations =
            last_delegations.ok_or_else(|| Error::missing("archive dataset", "delegations/"))?;
        let ledger = AllocationLedger::from_delegation_file(&DelegationFile::parse(&read(
            last_delegations,
        )?)?)?;

        // Resolve each shard's on-disk format, then decode the columnar
        // ones on sweep workers. The sequential merge below still runs in
        // plan order, so both formats replay the identical observation
        // sequence.
        let plan = bandwidth::shard_plan(windows::mlab_start(), config.end);
        let resolved: Vec<(String, ShardFormat)> = plan
            .iter()
            .map(|&shard| -> Result<(String, ShardFormat)> {
                let format = match expect {
                    Some(format) => format,
                    None => {
                        let columnar =
                            crate::datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
                        if root.join(&columnar).exists() {
                            ShardFormat::Columnar
                        } else {
                            ShardFormat::Text
                        }
                    }
                };
                let rel = crate::datasets::mlab_shard_path_with(shard, format);
                if root.join(&rel).exists() {
                    Ok((rel, format))
                } else {
                    Err(Error::missing("NDT archive shard", &rel))
                }
            })
            .collect::<Result<_>>()?;
        // Decode only the columns some registered consumer declared a
        // need for — today the union is exactly the aggregate's three
        // columns, so a v2 load skips over half the shard bytes.
        let selection = ColumnSelection::columns(crate::registry::ndt_column_union());
        let decoded = sweep::parallel_map_with(
            sweep::worker_count(resolved.len()),
            &resolved,
            |(rel, format)| -> Option<Result<lacnet_mlab::ColumnBatch>> {
                match format {
                    ShardFormat::Text => None,
                    ShardFormat::Columnar => Some(
                        fs::read(root.join(rel))
                            .map_err(|_| Error::missing("NDT archive shard", rel))
                            .and_then(|bytes| columnar::read_batch(&bytes, &selection)),
                    ),
                }
            },
        );
        let mut mlab = MonthlyAggregator::new(Mode::Streaming);
        for ((rel, _), batch) in resolved.iter().zip(decoded) {
            match batch {
                Some(batch) => {
                    mlab.observe_columns(&batch?);
                }
                None => {
                    let file = fs::File::open(root.join(rel))
                        .map_err(|_| Error::missing("NDT archive shard", rel))?;
                    mlab.observe_reader(io::BufReader::new(file))?;
                }
            }
        }

        Ok(ArchiveWorld {
            config,
            scenario,
            economy,
            operators,
            dns: dns_world,
            topology,
            ledger,
            peeringdb,
            cables: cables.ok_or_else(|| Error::missing("archive dataset", "cables/"))?,
            mlab,
            cert_scans,
            top_sites,
            reachability,
            ndt_index: crate::datasets::read_shard_index(root),
            root: root.to_owned(),
            pfx2as_cache: SnapshotCache::new(),
            cone_cache: ConeCache::new(),
        })
    }

    /// Resolve the shard file answering `(cc, month)`: the resident
    /// shard index (parsed once at load) maps the label to its path and
    /// day-span summary; pre-index trees fall back to probing both
    /// encodings, columnar first (mirroring load-time auto-detection).
    fn resolve_ndt_shard(
        &self,
        cc: CountryCode,
        month: MonthStamp,
    ) -> Option<(String, Option<(i64, i64)>)> {
        let label = format!("{cc}/{month}");
        if let Some(rec) = self.ndt_index.get(&label) {
            return Some((rec.path.clone(), rec.days));
        }
        let shard = (cc, month);
        let columnar_rel = crate::datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
        if self.root.join(&columnar_rel).exists() {
            return Some((columnar_rel, None));
        }
        let text_rel = crate::datasets::mlab_shard_path_with(shard, ShardFormat::Text);
        self.root
            .join(&text_rel)
            .exists()
            .then_some((text_rel, None))
    }

    /// Answer one `(country, month)` NDT query straight off the archive:
    /// the shard index maps the query to its single shard file, and a v2
    /// container decodes only the download column of the blocks whose
    /// index entries match. `Ok(None)` when the archive holds no shard
    /// for that pair.
    pub fn ndt_month_stats(
        &self,
        cc: CountryCode,
        month: MonthStamp,
    ) -> Result<Option<NdtMonthStats>> {
        let Some((rel, _)) = self.resolve_ndt_shard(cc, month) else {
            return Ok(None);
        };
        let mut scratch = DecodeScratch::new();
        self.ndt_shard_stats(cc, month, &rel, &mut scratch)
    }

    /// Decode one resolved shard — the shared per-shard body of the
    /// single-month and range queries. v2 containers go through the
    /// borrowed [`ColumnReaderRef::scan_counted`] path: download values
    /// feed the order-sensitive P² estimator straight off the
    /// [`lacnet_mlab::ColumnSlice`] view and dictionary columns land in
    /// the caller's reusable scratch, so after warm-up the only
    /// per-shard heap work is the file read itself.
    fn ndt_shard_stats(
        &self,
        cc: CountryCode,
        month: MonthStamp,
        rel: &str,
        scratch: &mut DecodeScratch,
    ) -> Result<Option<NdtMonthStats>> {
        let path = self.root.join(rel);
        if !path.exists() {
            return Ok(None);
        }
        let mut p2 = P2Quantile::median();
        if rel.ends_with(".ndtc") {
            let bytes = fs::read(&path).map_err(|_| Error::missing("NDT archive shard", rel))?;
            if bytes.get(4) == Some(&columnar::VERSION_V2) {
                let reader = ColumnReaderRef::open(&bytes)?;
                let selection = ColumnSelection::columns(ColumnSet::DOWNLOAD).with_country(cc);
                let mut rows = 0usize;
                let read = reader.scan_counted(&selection, scratch, |view| {
                    rows += view.download().len();
                    for v in view.download().iter() {
                        p2.observe(v);
                    }
                    Ok(())
                })?;
                Ok(Some(NdtMonthStats {
                    rows,
                    median_download: p2.value(),
                    format: "columnar-v2",
                    read,
                }))
            } else {
                let batch = columnar::decode(&bytes)?;
                for &v in batch.download() {
                    p2.observe(v);
                }
                Ok(Some(NdtMonthStats {
                    rows: batch.len(),
                    median_download: p2.value(),
                    format: "columnar-v1",
                    read: ReadStats {
                        blocks_total: 1,
                        blocks_decoded: 1,
                        bytes_decoded: bytes.len(),
                        columns_decoded: 7,
                    },
                }))
            }
        } else {
            let file =
                fs::File::open(&path).map_err(|_| Error::missing("NDT archive shard", rel))?;
            let mut rows = 0usize;
            for row in lacnet_mlab::ndt::stream_rows(io::BufReader::new(file)) {
                let row = row?;
                if row.country == cc && row.date.month_stamp() == month {
                    p2.observe(row.download_mbps);
                    rows += 1;
                }
            }
            Ok(Some(NdtMonthStats {
                rows,
                median_download: p2.value(),
                format: "text",
                read: ReadStats::default(),
            }))
        }
    }

    /// Answer a `(country, [from, to])` NDT range query: walk the
    /// resident shard index once to build the shard plan, prune shards
    /// whose indexed day span cannot intersect the window, fan the
    /// surviving selective reads across `sweep` workers (one scratch
    /// arena per shard), and merge in plan order so the result is
    /// byte-stable at any worker count. `Err` on a reversed range;
    /// months without data simply don't appear in the result.
    pub fn ndt_range_stats(
        &self,
        cc: CountryCode,
        from: MonthStamp,
        to: MonthStamp,
    ) -> Result<NdtRangeStats> {
        if from > to {
            return Err(Error::invalid("NDT range: from month after to month"));
        }
        let lo = from.first_day().days_since_epoch();
        let hi = to.last_day().days_since_epoch();
        let months_queried = (from.months_until(to) + 1) as usize;
        let mut shards_pruned = 0usize;
        let mut plan: Vec<(MonthStamp, String)> = Vec::new();
        if self.ndt_index.is_empty() {
            // Pre-index tree: no summaries to prune by — probe each
            // month's shard paths directly.
            for month in from.through(to) {
                if let Some((rel, _)) = self.resolve_ndt_shard(cc, month) {
                    plan.push((month, rel));
                }
            }
        } else {
            // One ordered walk over the country's slice of the resident
            // index (`BTreeMap` range on the `CC/` label prefix). A
            // shard stays in the plan only if its month is inside the
            // window *and* its day-span summary can intersect it — a
            // summary that proves otherwise (sparse or mislabeled data,
            // or future partial live-ingested months) skips the file
            // without opening it. Unknown spans are never pruned.
            let prefix = format!("{cc}/");
            for (label, rec) in self.ndt_index.range(prefix.clone()..) {
                let Some(month) = label.strip_prefix(&prefix) else {
                    break;
                };
                let Ok(month) = month.parse::<MonthStamp>() else {
                    continue;
                };
                if month < from || month > to {
                    continue;
                }
                match rec.days {
                    Some((min_day, max_day)) if max_day < lo || min_day > hi => {
                        shards_pruned += 1;
                    }
                    _ => plan.push((month, rec.path.clone())),
                }
            }
        }
        let results =
            sweep::parallel_map_with(sweep::worker_count(plan.len()), &plan, |(month, rel)| {
                let mut scratch = DecodeScratch::new();
                self.ndt_shard_stats(cc, *month, rel, &mut scratch)
            });
        let mut months = Vec::with_capacity(plan.len());
        let mut rows = 0usize;
        let mut read = ReadStats::default();
        let mut median_sum = 0.0;
        let mut median_count = 0usize;
        for ((month, _), result) in plan.into_iter().zip(results) {
            let Some(stats) = result? else { continue };
            rows += stats.rows;
            read.absorb(stats.read);
            if let Some(m) = stats.median_download {
                median_sum += m;
                median_count += 1;
            }
            months.push((month, stats));
        }
        Ok(NdtRangeStats {
            months,
            rows,
            mean_monthly_median: (median_count > 0).then(|| median_sum / median_count as f64),
            months_queried,
            shards_pruned,
            read,
        })
    }

    /// The pfx2as table for `month`, parsed lazily from the monthly dump
    /// and memoized. Months outside the dumped window serve the empty
    /// table (the archive, like the real one, starts in 2008).
    pub fn pfx2as_at(&self, month: MonthStamp) -> Arc<PfxToAs> {
        self.pfx2as_cache.get_or_compute(month, || {
            let rel = format!(
                "pfx2as/routeviews-rv2-{}{:02}01.pfx2as",
                month.year(),
                month.month()
            );
            match fs::read_to_string(self.root.join(&rel)) {
                Ok(text) => PfxToAs::parse(&text).unwrap_or_else(|e| {
                    panic!("archive pfx2as {rel} does not parse: {e}");
                }),
                Err(_) => PfxToAs::new(),
            }
        })
    }

    /// The directory this archive was loaded from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The customer cone of `asn` at `month`, memoized in the archive's
    /// own [`ConeCache`] — same contract as [`World::customer_cone_at`].
    pub fn customer_cone_at(&self, month: MonthStamp, asn: Asn) -> Arc<BTreeSet<Asn>> {
        self.cone_cache
            .get_or_compute(month, asn, || match self.topology.get(month) {
                Some(graph) => graph.customer_cone(asn),
                None => BTreeSet::from([asn]),
            })
    }
}

/// One access surface for every dataset the battery consumes, backed
/// either by a borrowed in-memory [`World`] or by an owned
/// [`ArchiveWorld`] parsed from disk.
pub enum DataSource<'w> {
    /// Borrow a generated world.
    InMemory(&'w World),
    /// Own a world reloaded from a dumped archive tree.
    Archive(Box<ArchiveWorld>),
}

impl<'w> DataSource<'w> {
    /// Wrap a generated world.
    pub fn in_memory(world: &'w World) -> Self {
        DataSource::InMemory(world)
    }

    /// Load the archive backend from a dump tree (see
    /// [`ArchiveWorld::load`]).
    pub fn from_archive(root: &Path) -> Result<Self> {
        Ok(DataSource::Archive(Box::new(ArchiveWorld::load(root)?)))
    }

    /// Load the archive backend, demanding a specific NDT shard format
    /// (see [`ArchiveWorld::load_with`]). `None` auto-detects per shard.
    pub fn from_archive_with(root: &Path, expect: Option<ShardFormat>) -> Result<Self> {
        Ok(DataSource::Archive(Box::new(ArchiveWorld::load_with(
            root, expect,
        )?)))
    }

    /// The backend's name, for progress reporting.
    pub fn backend(&self) -> &'static str {
        match self {
            DataSource::InMemory(_) => "in-memory",
            DataSource::Archive(_) => "archive",
        }
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        match self {
            DataSource::InMemory(w) => &w.config,
            DataSource::Archive(a) => &a.config,
        }
    }

    /// The scenario the backend's world was generated under.
    pub fn scenario(&self) -> &lacnet_crisis::Scenario {
        match self {
            DataSource::InMemory(w) => &w.scenario,
            DataSource::Archive(a) => &a.scenario,
        }
    }

    /// The macro-economy (Fig. 1, Fig. 13).
    pub fn economy(&self) -> &Economy {
        match self {
            DataSource::InMemory(w) => &w.economy,
            DataSource::Archive(a) => &a.economy,
        }
    }

    /// The operator cast, as2org mapping and populations.
    pub fn operators(&self) -> &Operators {
        match self {
            DataSource::InMemory(w) => &w.operators,
            DataSource::Archive(a) => &a.operators,
        }
    }

    /// Monthly AS-relationship snapshots (Figs. 8, 9).
    pub fn topology(&self) -> &TopologyArchive {
        match self {
            DataSource::InMemory(w) => &w.topology,
            DataSource::Archive(a) => &a.topology,
        }
    }

    /// The allocation ledger (Figs. 2, 14).
    pub fn ledger(&self) -> &AllocationLedger {
        match self {
            DataSource::InMemory(w) => w.addressing.ledger(),
            DataSource::Archive(a) => &a.ledger,
        }
    }

    /// Monthly PeeringDB snapshots (Figs. 3, 10, 15, 21).
    pub fn peeringdb(&self) -> &SnapshotArchive {
        match self {
            DataSource::InMemory(w) => &w.peeringdb,
            DataSource::Archive(a) => &a.peeringdb,
        }
    }

    /// The submarine cable map (Fig. 4).
    pub fn cables(&self) -> &CableMap {
        match self {
            DataSource::InMemory(w) => &w.cables,
            DataSource::Archive(a) => &a.cables,
        }
    }

    /// Probes, root deployment and GPDNS sites (Figs. 6, 12, 16, 17, 20).
    pub fn dns(&self) -> &DnsWorld {
        match self {
            DataSource::InMemory(w) => &w.dns,
            DataSource::Archive(a) => &a.dns,
        }
    }

    /// The streamed M-Lab aggregation (Fig. 11).
    pub fn mlab(&self) -> &MonthlyAggregator {
        match self {
            DataSource::InMemory(w) => &w.mlab,
            DataSource::Archive(a) => &a.mlab,
        }
    }

    /// One `(country, month)` NDT query — the `/ndt/{cc}/{month}` serve
    /// endpoint. In memory it reads the resident aggregate's group
    /// state; on the archive it routes through the shard index and (for
    /// v2 containers) decodes only the matching blocks' download column.
    pub fn ndt_month_stats(
        &self,
        cc: CountryCode,
        month: MonthStamp,
    ) -> Result<Option<NdtMonthStats>> {
        match self {
            DataSource::InMemory(w) => Ok(w.mlab.group(cc, month).map(|g| NdtMonthStats {
                rows: g.count(),
                median_download: g.median(),
                format: "in-memory",
                read: ReadStats::default(),
            })),
            DataSource::Archive(a) => a.ndt_month_stats(cc, month),
        }
    }

    /// A `(country, [from, to])` NDT range query — the
    /// `/ndt/{cc}?from=&to=` serve endpoint. The in-memory backend
    /// walks the resident aggregate's groups; the archive backend
    /// merges parallel per-shard selective reads in plan order (see
    /// [`ArchiveWorld::ndt_range_stats`]). Both return per-month
    /// entries equal to the corresponding single-month query. `Err` on
    /// a reversed range.
    pub fn ndt_range_stats(
        &self,
        cc: CountryCode,
        from: MonthStamp,
        to: MonthStamp,
    ) -> Result<NdtRangeStats> {
        match self {
            DataSource::InMemory(w) => {
                if from > to {
                    return Err(Error::invalid("NDT range: from month after to month"));
                }
                let mut months = Vec::new();
                let mut rows = 0usize;
                let mut median_sum = 0.0;
                let mut median_count = 0usize;
                let mut months_queried = 0usize;
                for month in from.through(to) {
                    months_queried += 1;
                    let Some(g) = w.mlab.group(cc, month) else {
                        continue;
                    };
                    let stats = NdtMonthStats {
                        rows: g.count(),
                        median_download: g.median(),
                        format: "in-memory",
                        read: ReadStats::default(),
                    };
                    rows += stats.rows;
                    if let Some(m) = stats.median_download {
                        median_sum += m;
                        median_count += 1;
                    }
                    months.push((month, stats));
                }
                Ok(NdtRangeStats {
                    months,
                    rows,
                    mean_monthly_median: (median_count > 0)
                        .then(|| median_sum / median_count as f64),
                    months_queried,
                    shards_pruned: 0,
                    read: ReadStats::default(),
                })
            }
            DataSource::Archive(a) => a.ndt_range_stats(cc, from, to),
        }
    }

    /// The inclusive month window the backend's NDT data can cover:
    /// `[mlab_start, config.end]` — the dataset's own generation window.
    /// The serve layer rejects range queries entirely outside it as
    /// client errors before touching the cache or any shard.
    pub fn ndt_month_bounds(&self) -> (MonthStamp, MonthStamp) {
        (windows::mlab_start(), self.config().end)
    }

    /// Yearly TLS scans 2013–2021 (Figs. 7, 18).
    pub fn cert_scans(&self) -> &[CertScan] {
        match self {
            DataSource::InMemory(w) => &w.cert_scans,
            DataSource::Archive(a) => &a.cert_scans,
        }
    }

    /// Top-site scrapes, January 2024 (Fig. 19).
    pub fn top_sites(&self) -> &[CountryTopSites] {
        match self {
            DataSource::InMemory(w) => &w.top_sites,
            DataSource::Archive(a) => &a.top_sites,
        }
    }

    /// The announced-prefix table for `month`, memoized per backend —
    /// derived from the topology in memory, parsed from the monthly dump
    /// on the archive path.
    pub fn pfx2as_at(&self, month: MonthStamp) -> Arc<PfxToAs> {
        match self {
            DataSource::InMemory(w) => w.pfx2as_at(month),
            DataSource::Archive(a) => a.pfx2as_at(month),
        }
    }

    /// The customer cone of `asn` at `month`, memoized in the backend's
    /// [`ConeCache`].
    pub fn customer_cone_at(&self, month: MonthStamp, asn: Asn) -> Arc<BTreeSet<Asn>> {
        match self {
            DataSource::InMemory(w) => w.customer_cone_at(month, asn),
            DataSource::Archive(a) => a.customer_cone_at(month, asn),
        }
    }

    /// `asn`'s cone size for every month of the topology archive, served
    /// through the backend's cache on sweep workers.
    pub fn cone_size_series(&self, asn: Asn) -> TimeSeries {
        match self {
            DataSource::InMemory(w) => w.cone_size_series(asn),
            DataSource::Archive(a) => {
                let months: Vec<MonthStamp> = a.topology.iter().map(|(m, _)| m).collect();
                sweep::months_sweep(&months, |m| a.customer_cone_at(m, asn).len() as f64)
                    .into_iter()
                    .collect()
            }
        }
    }

    /// The backend's shared [`ConeCache`] handle, for cache-aware
    /// analytics: the Fig. 9 transit matrix and the inference extension's
    /// path computations memoize through it.
    pub fn cone_cache(&self) -> &ConeCache {
        match self {
            DataSource::InMemory(w) => w.cone_cache(),
            DataSource::Archive(a) => &a.cone_cache,
        }
    }

    /// Daily per-country probe reachability for the 2019 blackout year —
    /// simulated from the DNS world in memory, parsed from the Atlas
    /// TSVs on the archive path.
    pub fn reachability_2019(&self) -> BTreeMap<CountryCode, ReachabilitySeries> {
        match self {
            DataSource::InMemory(w) => blackouts::daily_reachability_with(
                &w.dns,
                Date::ymd(2019, 1, 1),
                Date::ymd(2019, 12, 31),
                w.config.seed,
                &w.scenario,
            ),
            DataSource::Archive(a) => a.reachability.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    #[test]
    fn in_memory_source_mirrors_the_world() {
        let world = crate::experiments::testworld::world();
        let src = DataSource::in_memory(world);
        assert_eq!(src.backend(), "in-memory");
        assert_eq!(src.config(), &world.config);
        assert_eq!(src.topology().len(), world.topology.len());
        assert_eq!(src.cert_scans().len(), world.cert_scans.len());
        let m = MonthStamp::new(2020, 6);
        assert!(Arc::ptr_eq(&src.pfx2as_at(m), &world.pfx2as_at(m)));
        assert!(Arc::ptr_eq(
            &src.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS),
            &world.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS)
        ));
        assert!(src.reachability_2019().contains_key(&country::VE));
    }

    #[test]
    fn archive_source_reloads_every_dataset() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-src-{}", std::process::id()));
        crate::datasets::dump(world, &dir).expect("dump succeeds");
        let src = DataSource::from_archive(&dir).expect("archive loads");
        assert_eq!(src.backend(), "archive");
        assert_eq!(src.config(), &world.config);
        assert_eq!(src.topology().len(), world.topology.len());
        assert_eq!(src.peeringdb().len(), world.peeringdb.len());
        assert_eq!(src.cert_scans().len(), world.cert_scans.len());
        assert_eq!(src.top_sites().len(), world.top_sites.len());
        assert_eq!(src.mlab().group_count(), world.mlab.group_count());
        let m = MonthStamp::new(2020, 6);
        assert_eq!(src.pfx2as_at(m).to_text(), world.pfx2as_at(m).to_text());
        assert_eq!(
            *src.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS),
            *world.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS)
        );
        // The ledger answers queries identically after the rebuild.
        let cutoff = world.config.end.last_day();
        assert_eq!(
            src.ledger().space_of_country(country::VE, cutoff),
            world
                .addressing
                .ledger()
                .space_of_country(country::VE, cutoff)
        );
        // Reachability was parsed for every lacnic country.
        assert_eq!(
            src.reachability_2019().len(),
            country::lacnic_codes().count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn columnar_archive_matches_text_archive_exactly() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-src-col-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        crate::datasets::dump_with(
            world,
            &dir,
            crate::datasets::DumpOptions {
                shard_format: ShardFormat::Columnar,
                ..crate::datasets::DumpOptions::default()
            },
        )
        .expect("columnar dump succeeds");
        // Auto-detection and an explicit format demand both load it; a
        // wrong demand fails typed.
        let src = DataSource::from_archive(&dir).expect("auto-detected load");
        let demanded = DataSource::from_archive_with(&dir, Some(ShardFormat::Columnar))
            .expect("demanded columnar load");
        assert!(DataSource::from_archive_with(&dir, Some(ShardFormat::Text)).is_err());
        // The columnar path lands the order-sensitive P² estimators in
        // byte-identical state to the in-memory aggregation.
        assert_eq!(
            format!("{:?}", src.mlab()),
            format!("{:?}", world.mlab),
            "columnar archive aggregation diverged from in-memory state"
        );
        assert_eq!(
            format!("{:?}", demanded.mlab()),
            format!("{:?}", src.mlab())
        );
        // A single-(country, month) query decodes selectively and agrees
        // with the in-memory aggregate's group state bit for bit.
        let month = MonthStamp::new(2023, 7);
        let stats = src
            .ndt_month_stats(country::VE, month)
            .expect("query succeeds")
            .expect("shard exists");
        assert_eq!(stats.format, "columnar-v2");
        assert!(stats.rows > 0);
        // Only the download column of each matching block was decoded.
        assert_eq!(stats.read.columns_decoded, stats.read.blocks_decoded);
        assert!(stats.read.blocks_decoded >= 1);
        let shard_len = std::fs::read(dir.join("mlab/VE/ndt-2023-07.ndtc"))
            .unwrap()
            .len();
        assert!(
            stats.read.bytes_decoded < shard_len / 2,
            "selective decode touched {} of {} shard bytes",
            stats.read.bytes_decoded,
            shard_len
        );
        let in_memory = DataSource::in_memory(world)
            .ndt_month_stats(country::VE, month)
            .unwrap()
            .unwrap();
        assert_eq!(stats.rows, in_memory.rows);
        assert_eq!(stats.median_download, in_memory.median_download);
        // A month outside the archive answers None, not an error.
        assert!(src
            .ndt_month_stats(country::VE, MonthStamp::new(1999, 1))
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn range_query_merges_single_month_queries() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-src-range-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        crate::datasets::dump_with(
            world,
            &dir,
            crate::datasets::DumpOptions {
                shard_format: ShardFormat::Columnar,
                ..crate::datasets::DumpOptions::default()
            },
        )
        .expect("columnar dump succeeds");
        let src = DataSource::from_archive(&dir).expect("archive loads");
        let (from, to) = (MonthStamp::new(2023, 3), MonthStamp::new(2023, 7));

        let range = src
            .ndt_range_stats(country::VE, from, to)
            .expect("range query succeeds");
        assert_eq!(range.months_queried, 5);
        assert!(!range.months.is_empty());

        // The range is exactly the plan-order merge of its constituent
        // single-month queries — per-month entries, row total and the
        // absorbed ReadStats all included.
        let mut rows = 0usize;
        let mut read = ReadStats::default();
        for &(month, ref stats) in &range.months {
            let single = src
                .ndt_month_stats(country::VE, month)
                .unwrap()
                .expect("shard exists for listed month");
            assert_eq!(stats, &single, "{month}");
            rows += single.rows;
            read.absorb(single.read);
        }
        assert_eq!(range.rows, rows);
        assert_eq!(range.read, read);
        assert_eq!(range.shards_pruned, 0);

        // Worker-count determinism: the merge is in plan order, so the
        // result is identical however the per-shard reads are scheduled
        // (the sweep engine is already worker-count invariant; this
        // pins the merge itself by re-running).
        let again = src.ndt_range_stats(country::VE, from, to).unwrap();
        assert_eq!(again, range);

        // The in-memory backend answers the same shape with the same
        // per-month rows and medians.
        let mem = DataSource::in_memory(world)
            .ndt_range_stats(country::VE, from, to)
            .unwrap();
        assert_eq!(mem.months.len(), range.months.len());
        assert_eq!(mem.rows, range.rows);
        for ((m_a, a), (m_b, b)) in mem.months.iter().zip(&range.months) {
            assert_eq!(m_a, m_b);
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.median_download, b.median_download);
        }
        assert_eq!(mem.mean_monthly_median, range.mean_monthly_median);

        // A reversed range is a typed error on both backends.
        assert!(src.ndt_range_stats(country::VE, to, from).is_err());
        assert!(DataSource::in_memory(world)
            .ndt_range_stats(country::VE, to, from)
            .is_err());

        // Day-span pruning: rewrite one indexed month's summary so it
        // provably cannot intersect the window. The reloaded archive
        // must skip that shard without opening it — the summary is
        // trusted for pruning, exactly like a v2 block index entry.
        let index_path = dir.join(crate::datasets::MLAB_INDEX);
        let text = std::fs::read_to_string(&index_path).unwrap();
        let pruned_month = range.months[0].0;
        let needle = format!("VE/{pruned_month}\t");
        let rewritten: String = text
            .lines()
            .map(|l| {
                if l.starts_with(&needle) {
                    let mut cols: Vec<&str> = l.split('\t').collect();
                    cols[4] = "0";
                    cols[5] = "1";
                    cols.join("\t") + "\n"
                } else {
                    l.to_owned() + "\n"
                }
            })
            .collect();
        std::fs::write(&index_path, rewritten).unwrap();
        let reloaded = DataSource::from_archive(&dir).expect("archive reloads");
        let pruned = reloaded.ndt_range_stats(country::VE, from, to).unwrap();
        assert_eq!(pruned.shards_pruned, 1);
        assert_eq!(pruned.months.len(), range.months.len() - 1);
        assert!(pruned.months.iter().all(|(m, _)| *m != pruned_month));
        std::fs::remove_dir_all(&dir).ok();
    }
}
