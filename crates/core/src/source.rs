//! The `DataSource` abstraction: one access surface for the experiment
//! battery, served by two interchangeable backends.
//!
//! * [`DataSource::InMemory`] borrows a generated [`World`] — the fast
//!   path every unit test and the default `vzla-report` run use.
//! * [`DataSource::Archive`] owns an [`ArchiveWorld`] reloaded from a
//!   [`crate::datasets::dump`] tree: every dataset is rebuilt by parsing
//!   the dumped native-format files (serial-1 relationship files,
//!   RouteViews pfx2as, NRO delegations, PeeringDB v2 JSON dumps, the
//!   Telegeography cable map, yearly TLS scans, top-site scrapes,
//!   streamed M-Lab NDT shards, Atlas reachability TSVs), exactly as the
//!   pipeline would parse the real archives.
//!
//! Both backends carry their own pfx2as `SnapshotCache` and `ConeCache`,
//! so month-table and cone memoization behave identically on either
//! path. The round-trip suite (`tests/archive_roundtrip.rs`) proves the
//! full battery renders byte-identically from both.

use lacnet_atlas::outages::ReachabilitySeries;
use lacnet_bgp::{AsGraph, ConeCache, PfxToAs, TopologyArchive};
use lacnet_crisis::config::windows;
use lacnet_crisis::dns::{self, DnsWorld};
use lacnet_crisis::operators::Operators;
use lacnet_crisis::world::SnapshotCache;
use lacnet_crisis::{bandwidth, blackouts, Economy, World, WorldConfig};
use lacnet_mlab::aggregate::{Mode, MonthlyAggregator};
use lacnet_mlab::columnar::{
    self, ColumnReader, ColumnSelection, ColumnSet, ReadStats, ShardFormat,
};
use lacnet_offnets::certs::CertScan;
use lacnet_peeringdb::{Snapshot, SnapshotArchive};
use lacnet_registry::{AllocationLedger, DelegationFile};
use lacnet_telegeo::CableMap;
use lacnet_types::stats::P2Quantile;
use lacnet_types::{sweep, Asn, CountryCode, Date, Error, MonthStamp, Result, TimeSeries};
use lacnet_webmeas::CountryTopSites;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A world reloaded from a dumped archive tree: the model roots
/// (economy, operators, DNS world) regenerated from the config sidecar,
/// every measured dataset parsed from its native-format files.
pub struct ArchiveWorld {
    /// The configuration read from `world/config.tsv`.
    pub config: WorldConfig,
    /// The scenario read from `world/scenario.toml`; a tree without the
    /// sidecar is a default (Venezuela) dump.
    pub scenario: lacnet_crisis::Scenario,
    /// Regenerated macro-economy (a pure function of the config).
    pub economy: Economy,
    /// Regenerated operator cast (a pure function of the seed).
    pub operators: Operators,
    /// Regenerated probes/roots/GPDNS world (a pure function of the seed).
    pub dns: DnsWorld,
    /// Topology parsed from the monthly serial-1 files.
    pub topology: TopologyArchive,
    /// Allocation ledger rebuilt from the full-history delegation file.
    pub ledger: AllocationLedger,
    /// PeeringDB snapshots parsed from the monthly JSON dumps.
    pub peeringdb: SnapshotArchive,
    /// Cable map parsed from the Telegeography-style export.
    pub cables: CableMap,
    /// M-Lab aggregation streamed from the per-(country, month) shards.
    pub mlab: MonthlyAggregator,
    /// TLS scans parsed from the yearly off-net exports, manifest order.
    pub cert_scans: Vec<CertScan>,
    /// Top-site scrapes parsed per country, manifest order.
    pub top_sites: Vec<CountryTopSites>,
    /// Daily reachability parsed from the per-country Atlas TSVs.
    pub reachability: BTreeMap<CountryCode, ReachabilitySeries>,
    /// The archive-level NDT shard index (`mlab/index.tsv`), keyed by
    /// `CC/YYYY-MM` label. Empty on pre-index trees — queries then fall
    /// back to probing shard paths directly.
    ndt_index: BTreeMap<String, crate::datasets::ShardIndexRecord>,
    root: PathBuf,
    pfx2as_cache: SnapshotCache,
    cone_cache: ConeCache,
}

/// What one `(country, month)` NDT query returns: how many tests
/// matched, their median download, and exactly how much of the shard the
/// answer cost to decode.
#[derive(Debug, Clone, PartialEq)]
pub struct NdtMonthStats {
    /// Tests matching the query.
    pub rows: usize,
    /// P² median download (Mbit/s) over those tests, in row order — the
    /// same estimator state the resident aggregate holds for the group.
    pub median_download: Option<f64>,
    /// The backing the answer came from (`columnar-v2`, `columnar-v1`,
    /// `text`, or `in-memory`).
    pub format: &'static str,
    /// Decode accounting (zero for text and in-memory backings).
    pub read: ReadStats,
}

fn month_from_name(name: &str, prefix: &str, suffix: &str) -> Option<MonthStamp> {
    let stamp = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    // `YYYYMMDD` (day ignored) or `YYYY_MM_DD` with either separator.
    let digits: String = stamp.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() < 6 {
        return None;
    }
    let year: i32 = digits[0..4].parse().ok()?;
    let month: u8 = digits[4..6].parse().ok()?;
    (1..=12)
        .contains(&month)
        .then(|| MonthStamp::new(year, month))
}

impl ArchiveWorld {
    /// Load an archive dumped by [`crate::datasets::dump`] from `root`,
    /// parsing every dataset from its native format, auto-detecting the
    /// NDT shard encoding per shard. See [`ArchiveWorld::load_with`].
    pub fn load(root: &Path) -> Result<ArchiveWorld> {
        ArchiveWorld::load_with(root, None)
    }

    /// Load an archive dumped by [`crate::datasets::dump_with`] from
    /// `root`, parsing every dataset from its native format.
    ///
    /// NDT shards feed the aggregator in shard-plan order — the exact
    /// observation sequence the in-memory aggregator saw — so the
    /// order-sensitive P² estimators land in identical state. Each
    /// shard's on-disk format is auto-detected (columnar `.ndtc` probed
    /// first, then text `.tsv`); columnar shards are decoded on sweep
    /// workers and merged through `observe_columns`, while text shards
    /// are *streamed* through `ndt::stream_rows` without materializing
    /// the file. Passing `Some(format)` in `expect` instead demands that
    /// every shard be in that format and fails on the first that is not.
    pub fn load_with(root: &Path, expect: Option<ShardFormat>) -> Result<ArchiveWorld> {
        let read = |rel: &str| -> Result<String> {
            fs::read_to_string(root.join(rel))
                .map_err(|_| Error::missing("archive file", format!("{}/{rel}", root.display())))
        };
        let config = WorldConfig::parse(&read("world/config.tsv")?)?;
        let scenario = match fs::read_to_string(root.join("world/scenario.toml")) {
            Ok(text) => lacnet_crisis::Scenario::parse(&text).map_err(Error::from)?,
            Err(_) => lacnet_crisis::Scenario::venezuela(),
        };

        // The model roots are pure functions of the config and scenario;
        // regenerating them is the archive's equivalent of carrying them
        // as sidecars.
        let (economy, (operators, dns_world)) = sweep::join2(
            || Economy::generate_with(config.economy_start, config.end, &scenario.gdp_anchors),
            || {
                sweep::join2(
                    || Operators::generate(config.seed),
                    || dns::build_dns_world(config.seed),
                )
            },
        );

        let manifest = read("MANIFEST.txt")?;
        let entries: Vec<&str> = manifest
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .collect();

        let mut topology = TopologyArchive::new();
        let mut peeringdb = SnapshotArchive::new();
        let mut cables: Option<CableMap> = None;
        let mut cert_scans = Vec::new();
        let mut top_sites = Vec::new();
        let mut reachability = BTreeMap::new();
        let mut last_delegations: Option<&str> = None;

        for &rel in &entries {
            if let Some(name) = rel.strip_prefix("serial1/") {
                let m = month_from_name(name, "", ".as-rel.txt")
                    .ok_or_else(|| Error::parse("serial-1 file month", rel))?;
                let edges = lacnet_bgp::serial1::parse(&read(rel)?)?;
                topology.insert(m, AsGraph::from_edges(edges));
            } else if let Some(name) = rel.strip_prefix("peeringdb/") {
                let m = month_from_name(name, "peeringdb_2_dump_", ".json")
                    .ok_or_else(|| Error::parse("peeringdb dump month", rel))?;
                peeringdb.insert(m, Snapshot::from_json(&read(rel)?)?);
            } else if rel.starts_with("delegations/") {
                last_delegations = Some(rel);
            } else if rel.starts_with("cables/") {
                cables = Some(CableMap::from_json(&read(rel)?)?);
            } else if rel.starts_with("offnets/") {
                cert_scans.push(CertScan::from_json(&read(rel)?)?);
            } else if rel.starts_with("topsites/") {
                top_sites.push(CountryTopSites::from_json(&read(rel)?)?);
            } else if let Some(name) = rel.strip_prefix("atlas/reachability-") {
                let code = name.split('-').next().unwrap_or_default();
                let cc = CountryCode::new(code)
                    .map_err(|_| Error::parse("reachability file country", rel))?;
                reachability.insert(cc, ReachabilitySeries::parse_tsv(&read(rel)?)?);
            }
            // mlab/ shards are streamed below in plan order; traceroute
            // samples and the manifest itself carry no battery state.
        }

        let last_delegations =
            last_delegations.ok_or_else(|| Error::missing("archive dataset", "delegations/"))?;
        let ledger = AllocationLedger::from_delegation_file(&DelegationFile::parse(&read(
            last_delegations,
        )?)?)?;

        // Resolve each shard's on-disk format, then decode the columnar
        // ones on sweep workers. The sequential merge below still runs in
        // plan order, so both formats replay the identical observation
        // sequence.
        let plan = bandwidth::shard_plan(windows::mlab_start(), config.end);
        let resolved: Vec<(String, ShardFormat)> = plan
            .iter()
            .map(|&shard| -> Result<(String, ShardFormat)> {
                let format = match expect {
                    Some(format) => format,
                    None => {
                        let columnar =
                            crate::datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
                        if root.join(&columnar).exists() {
                            ShardFormat::Columnar
                        } else {
                            ShardFormat::Text
                        }
                    }
                };
                let rel = crate::datasets::mlab_shard_path_with(shard, format);
                if root.join(&rel).exists() {
                    Ok((rel, format))
                } else {
                    Err(Error::missing("NDT archive shard", &rel))
                }
            })
            .collect::<Result<_>>()?;
        // Decode only the columns some registered consumer declared a
        // need for — today the union is exactly the aggregate's three
        // columns, so a v2 load skips over half the shard bytes.
        let selection = ColumnSelection::columns(crate::registry::ndt_column_union());
        let decoded = sweep::parallel_map_with(
            sweep::worker_count(resolved.len()),
            &resolved,
            |(rel, format)| -> Option<Result<lacnet_mlab::ColumnBatch>> {
                match format {
                    ShardFormat::Text => None,
                    ShardFormat::Columnar => Some(
                        fs::read(root.join(rel))
                            .map_err(|_| Error::missing("NDT archive shard", rel))
                            .and_then(|bytes| columnar::read_batch(&bytes, &selection)),
                    ),
                }
            },
        );
        let mut mlab = MonthlyAggregator::new(Mode::Streaming);
        for ((rel, _), batch) in resolved.iter().zip(decoded) {
            match batch {
                Some(batch) => {
                    mlab.observe_columns(&batch?);
                }
                None => {
                    let file = fs::File::open(root.join(rel))
                        .map_err(|_| Error::missing("NDT archive shard", rel))?;
                    mlab.observe_reader(io::BufReader::new(file))?;
                }
            }
        }

        Ok(ArchiveWorld {
            config,
            scenario,
            economy,
            operators,
            dns: dns_world,
            topology,
            ledger,
            peeringdb,
            cables: cables.ok_or_else(|| Error::missing("archive dataset", "cables/"))?,
            mlab,
            cert_scans,
            top_sites,
            reachability,
            ndt_index: crate::datasets::read_shard_index(root),
            root: root.to_owned(),
            pfx2as_cache: SnapshotCache::new(),
            cone_cache: ConeCache::new(),
        })
    }

    /// Answer one `(country, month)` NDT query straight off the archive:
    /// the shard index maps the query to its single shard file, and a v2
    /// container decodes only the download column of the blocks whose
    /// index entries match. `Ok(None)` when the archive holds no shard
    /// for that pair.
    pub fn ndt_month_stats(
        &self,
        cc: CountryCode,
        month: MonthStamp,
    ) -> Result<Option<NdtMonthStats>> {
        let label = format!("{cc}/{month}");
        let rel = match self.ndt_index.get(&label) {
            Some(rec) => rec.path.clone(),
            None => {
                // Pre-index tree: probe both encodings, columnar first
                // (mirrors the load-time auto-detection).
                let shard = (cc, month);
                let columnar_rel =
                    crate::datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
                let text_rel = crate::datasets::mlab_shard_path_with(shard, ShardFormat::Text);
                if self.root.join(&columnar_rel).exists() {
                    columnar_rel
                } else if self.root.join(&text_rel).exists() {
                    text_rel
                } else {
                    return Ok(None);
                }
            }
        };
        let path = self.root.join(&rel);
        if !path.exists() {
            return Ok(None);
        }
        let mut p2 = P2Quantile::median();
        if rel.ends_with(".ndtc") {
            let bytes = fs::read(&path).map_err(|_| Error::missing("NDT archive shard", &rel))?;
            if bytes.get(4) == Some(&columnar::VERSION_V2) {
                let reader = ColumnReader::open(&bytes)?;
                let selection = ColumnSelection::columns(ColumnSet::DOWNLOAD).with_country(cc);
                let (batch, read) = reader.read_counted(&selection)?;
                for &v in batch.download() {
                    p2.observe(v);
                }
                Ok(Some(NdtMonthStats {
                    rows: batch.download().len(),
                    median_download: p2.value(),
                    format: "columnar-v2",
                    read,
                }))
            } else {
                let batch = columnar::decode(&bytes)?;
                for &v in batch.download() {
                    p2.observe(v);
                }
                Ok(Some(NdtMonthStats {
                    rows: batch.len(),
                    median_download: p2.value(),
                    format: "columnar-v1",
                    read: ReadStats {
                        blocks_total: 1,
                        blocks_decoded: 1,
                        bytes_decoded: bytes.len(),
                        columns_decoded: 7,
                    },
                }))
            }
        } else {
            let file =
                fs::File::open(&path).map_err(|_| Error::missing("NDT archive shard", &rel))?;
            let mut rows = 0usize;
            for row in lacnet_mlab::ndt::stream_rows(io::BufReader::new(file)) {
                let row = row?;
                if row.country == cc && row.date.month_stamp() == month {
                    p2.observe(row.download_mbps);
                    rows += 1;
                }
            }
            Ok(Some(NdtMonthStats {
                rows,
                median_download: p2.value(),
                format: "text",
                read: ReadStats::default(),
            }))
        }
    }

    /// The pfx2as table for `month`, parsed lazily from the monthly dump
    /// and memoized. Months outside the dumped window serve the empty
    /// table (the archive, like the real one, starts in 2008).
    pub fn pfx2as_at(&self, month: MonthStamp) -> Arc<PfxToAs> {
        self.pfx2as_cache.get_or_compute(month, || {
            let rel = format!(
                "pfx2as/routeviews-rv2-{}{:02}01.pfx2as",
                month.year(),
                month.month()
            );
            match fs::read_to_string(self.root.join(&rel)) {
                Ok(text) => PfxToAs::parse(&text).unwrap_or_else(|e| {
                    panic!("archive pfx2as {rel} does not parse: {e}");
                }),
                Err(_) => PfxToAs::new(),
            }
        })
    }

    /// The directory this archive was loaded from.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The customer cone of `asn` at `month`, memoized in the archive's
    /// own [`ConeCache`] — same contract as [`World::customer_cone_at`].
    pub fn customer_cone_at(&self, month: MonthStamp, asn: Asn) -> Arc<BTreeSet<Asn>> {
        self.cone_cache
            .get_or_compute(month, asn, || match self.topology.get(month) {
                Some(graph) => graph.customer_cone(asn),
                None => BTreeSet::from([asn]),
            })
    }
}

/// One access surface for every dataset the battery consumes, backed
/// either by a borrowed in-memory [`World`] or by an owned
/// [`ArchiveWorld`] parsed from disk.
pub enum DataSource<'w> {
    /// Borrow a generated world.
    InMemory(&'w World),
    /// Own a world reloaded from a dumped archive tree.
    Archive(Box<ArchiveWorld>),
}

impl<'w> DataSource<'w> {
    /// Wrap a generated world.
    pub fn in_memory(world: &'w World) -> Self {
        DataSource::InMemory(world)
    }

    /// Load the archive backend from a dump tree (see
    /// [`ArchiveWorld::load`]).
    pub fn from_archive(root: &Path) -> Result<Self> {
        Ok(DataSource::Archive(Box::new(ArchiveWorld::load(root)?)))
    }

    /// Load the archive backend, demanding a specific NDT shard format
    /// (see [`ArchiveWorld::load_with`]). `None` auto-detects per shard.
    pub fn from_archive_with(root: &Path, expect: Option<ShardFormat>) -> Result<Self> {
        Ok(DataSource::Archive(Box::new(ArchiveWorld::load_with(
            root, expect,
        )?)))
    }

    /// The backend's name, for progress reporting.
    pub fn backend(&self) -> &'static str {
        match self {
            DataSource::InMemory(_) => "in-memory",
            DataSource::Archive(_) => "archive",
        }
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        match self {
            DataSource::InMemory(w) => &w.config,
            DataSource::Archive(a) => &a.config,
        }
    }

    /// The scenario the backend's world was generated under.
    pub fn scenario(&self) -> &lacnet_crisis::Scenario {
        match self {
            DataSource::InMemory(w) => &w.scenario,
            DataSource::Archive(a) => &a.scenario,
        }
    }

    /// The macro-economy (Fig. 1, Fig. 13).
    pub fn economy(&self) -> &Economy {
        match self {
            DataSource::InMemory(w) => &w.economy,
            DataSource::Archive(a) => &a.economy,
        }
    }

    /// The operator cast, as2org mapping and populations.
    pub fn operators(&self) -> &Operators {
        match self {
            DataSource::InMemory(w) => &w.operators,
            DataSource::Archive(a) => &a.operators,
        }
    }

    /// Monthly AS-relationship snapshots (Figs. 8, 9).
    pub fn topology(&self) -> &TopologyArchive {
        match self {
            DataSource::InMemory(w) => &w.topology,
            DataSource::Archive(a) => &a.topology,
        }
    }

    /// The allocation ledger (Figs. 2, 14).
    pub fn ledger(&self) -> &AllocationLedger {
        match self {
            DataSource::InMemory(w) => w.addressing.ledger(),
            DataSource::Archive(a) => &a.ledger,
        }
    }

    /// Monthly PeeringDB snapshots (Figs. 3, 10, 15, 21).
    pub fn peeringdb(&self) -> &SnapshotArchive {
        match self {
            DataSource::InMemory(w) => &w.peeringdb,
            DataSource::Archive(a) => &a.peeringdb,
        }
    }

    /// The submarine cable map (Fig. 4).
    pub fn cables(&self) -> &CableMap {
        match self {
            DataSource::InMemory(w) => &w.cables,
            DataSource::Archive(a) => &a.cables,
        }
    }

    /// Probes, root deployment and GPDNS sites (Figs. 6, 12, 16, 17, 20).
    pub fn dns(&self) -> &DnsWorld {
        match self {
            DataSource::InMemory(w) => &w.dns,
            DataSource::Archive(a) => &a.dns,
        }
    }

    /// The streamed M-Lab aggregation (Fig. 11).
    pub fn mlab(&self) -> &MonthlyAggregator {
        match self {
            DataSource::InMemory(w) => &w.mlab,
            DataSource::Archive(a) => &a.mlab,
        }
    }

    /// One `(country, month)` NDT query — the `/ndt/{cc}/{month}` serve
    /// endpoint. In memory it reads the resident aggregate's group
    /// state; on the archive it routes through the shard index and (for
    /// v2 containers) decodes only the matching blocks' download column.
    pub fn ndt_month_stats(
        &self,
        cc: CountryCode,
        month: MonthStamp,
    ) -> Result<Option<NdtMonthStats>> {
        match self {
            DataSource::InMemory(w) => Ok(w.mlab.group(cc, month).map(|g| NdtMonthStats {
                rows: g.count(),
                median_download: g.median(),
                format: "in-memory",
                read: ReadStats::default(),
            })),
            DataSource::Archive(a) => a.ndt_month_stats(cc, month),
        }
    }

    /// Yearly TLS scans 2013–2021 (Figs. 7, 18).
    pub fn cert_scans(&self) -> &[CertScan] {
        match self {
            DataSource::InMemory(w) => &w.cert_scans,
            DataSource::Archive(a) => &a.cert_scans,
        }
    }

    /// Top-site scrapes, January 2024 (Fig. 19).
    pub fn top_sites(&self) -> &[CountryTopSites] {
        match self {
            DataSource::InMemory(w) => &w.top_sites,
            DataSource::Archive(a) => &a.top_sites,
        }
    }

    /// The announced-prefix table for `month`, memoized per backend —
    /// derived from the topology in memory, parsed from the monthly dump
    /// on the archive path.
    pub fn pfx2as_at(&self, month: MonthStamp) -> Arc<PfxToAs> {
        match self {
            DataSource::InMemory(w) => w.pfx2as_at(month),
            DataSource::Archive(a) => a.pfx2as_at(month),
        }
    }

    /// The customer cone of `asn` at `month`, memoized in the backend's
    /// [`ConeCache`].
    pub fn customer_cone_at(&self, month: MonthStamp, asn: Asn) -> Arc<BTreeSet<Asn>> {
        match self {
            DataSource::InMemory(w) => w.customer_cone_at(month, asn),
            DataSource::Archive(a) => a.customer_cone_at(month, asn),
        }
    }

    /// `asn`'s cone size for every month of the topology archive, served
    /// through the backend's cache on sweep workers.
    pub fn cone_size_series(&self, asn: Asn) -> TimeSeries {
        match self {
            DataSource::InMemory(w) => w.cone_size_series(asn),
            DataSource::Archive(a) => {
                let months: Vec<MonthStamp> = a.topology.iter().map(|(m, _)| m).collect();
                sweep::months_sweep(&months, |m| a.customer_cone_at(m, asn).len() as f64)
                    .into_iter()
                    .collect()
            }
        }
    }

    /// The backend's shared [`ConeCache`] handle, for cache-aware
    /// analytics: the Fig. 9 transit matrix and the inference extension's
    /// path computations memoize through it.
    pub fn cone_cache(&self) -> &ConeCache {
        match self {
            DataSource::InMemory(w) => w.cone_cache(),
            DataSource::Archive(a) => &a.cone_cache,
        }
    }

    /// Daily per-country probe reachability for the 2019 blackout year —
    /// simulated from the DNS world in memory, parsed from the Atlas
    /// TSVs on the archive path.
    pub fn reachability_2019(&self) -> BTreeMap<CountryCode, ReachabilitySeries> {
        match self {
            DataSource::InMemory(w) => blackouts::daily_reachability_with(
                &w.dns,
                Date::ymd(2019, 1, 1),
                Date::ymd(2019, 12, 31),
                w.config.seed,
                &w.scenario,
            ),
            DataSource::Archive(a) => a.reachability.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    #[test]
    fn in_memory_source_mirrors_the_world() {
        let world = crate::experiments::testworld::world();
        let src = DataSource::in_memory(world);
        assert_eq!(src.backend(), "in-memory");
        assert_eq!(src.config(), &world.config);
        assert_eq!(src.topology().len(), world.topology.len());
        assert_eq!(src.cert_scans().len(), world.cert_scans.len());
        let m = MonthStamp::new(2020, 6);
        assert!(Arc::ptr_eq(&src.pfx2as_at(m), &world.pfx2as_at(m)));
        assert!(Arc::ptr_eq(
            &src.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS),
            &world.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS)
        ));
        assert!(src.reachability_2019().contains_key(&country::VE));
    }

    #[test]
    fn archive_source_reloads_every_dataset() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-src-{}", std::process::id()));
        crate::datasets::dump(world, &dir).expect("dump succeeds");
        let src = DataSource::from_archive(&dir).expect("archive loads");
        assert_eq!(src.backend(), "archive");
        assert_eq!(src.config(), &world.config);
        assert_eq!(src.topology().len(), world.topology.len());
        assert_eq!(src.peeringdb().len(), world.peeringdb.len());
        assert_eq!(src.cert_scans().len(), world.cert_scans.len());
        assert_eq!(src.top_sites().len(), world.top_sites.len());
        assert_eq!(src.mlab().group_count(), world.mlab.group_count());
        let m = MonthStamp::new(2020, 6);
        assert_eq!(src.pfx2as_at(m).to_text(), world.pfx2as_at(m).to_text());
        assert_eq!(
            *src.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS),
            *world.customer_cone_at(m, lacnet_crisis::world::FOCAL_AS)
        );
        // The ledger answers queries identically after the rebuild.
        let cutoff = world.config.end.last_day();
        assert_eq!(
            src.ledger().space_of_country(country::VE, cutoff),
            world
                .addressing
                .ledger()
                .space_of_country(country::VE, cutoff)
        );
        // Reachability was parsed for every lacnic country.
        assert_eq!(
            src.reachability_2019().len(),
            country::lacnic_codes().count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn columnar_archive_matches_text_archive_exactly() {
        let world = crate::experiments::testworld::world();
        let dir = std::env::temp_dir().join(format!("lacnet-src-col-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        crate::datasets::dump_with(
            world,
            &dir,
            crate::datasets::DumpOptions {
                shard_format: ShardFormat::Columnar,
                ..crate::datasets::DumpOptions::default()
            },
        )
        .expect("columnar dump succeeds");
        // Auto-detection and an explicit format demand both load it; a
        // wrong demand fails typed.
        let src = DataSource::from_archive(&dir).expect("auto-detected load");
        let demanded = DataSource::from_archive_with(&dir, Some(ShardFormat::Columnar))
            .expect("demanded columnar load");
        assert!(DataSource::from_archive_with(&dir, Some(ShardFormat::Text)).is_err());
        // The columnar path lands the order-sensitive P² estimators in
        // byte-identical state to the in-memory aggregation.
        assert_eq!(
            format!("{:?}", src.mlab()),
            format!("{:?}", world.mlab),
            "columnar archive aggregation diverged from in-memory state"
        );
        assert_eq!(
            format!("{:?}", demanded.mlab()),
            format!("{:?}", src.mlab())
        );
        // A single-(country, month) query decodes selectively and agrees
        // with the in-memory aggregate's group state bit for bit.
        let month = MonthStamp::new(2023, 7);
        let stats = src
            .ndt_month_stats(country::VE, month)
            .expect("query succeeds")
            .expect("shard exists");
        assert_eq!(stats.format, "columnar-v2");
        assert!(stats.rows > 0);
        // Only the download column of each matching block was decoded.
        assert_eq!(stats.read.columns_decoded, stats.read.blocks_decoded);
        assert!(stats.read.blocks_decoded >= 1);
        let shard_len = std::fs::read(dir.join("mlab/VE/ndt-2023-07.ndtc"))
            .unwrap()
            .len();
        assert!(
            stats.read.bytes_decoded < shard_len / 2,
            "selective decode touched {} of {} shard bytes",
            stats.read.bytes_decoded,
            shard_len
        );
        let in_memory = DataSource::in_memory(world)
            .ndt_month_stats(country::VE, month)
            .unwrap()
            .unwrap();
        assert_eq!(stats.rows, in_memory.rows);
        assert_eq!(stats.median_download, in_memory.median_download);
        // A month outside the archive answers None, not an error.
        assert!(src
            .ndt_month_stats(country::VE, MonthStamp::new(1999, 1))
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
