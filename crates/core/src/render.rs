//! Plain-text and CSV rendering of artifacts.

use crate::artifact::{Artifact, ExperimentResult, Figure, Heatmap, Table};
use std::fmt::Write as _;

/// Render a whole experiment result: header, findings table, artifacts.
pub fn render_result(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let status = if result.all_match() { "OK" } else { "DIVERGES" };
    let _ = writeln!(out, "==== {} — {} [{status}] ====", result.id, result.title);
    if !result.findings.is_empty() {
        let tab = Table {
            id: format!("{}-findings", result.id),
            caption: "paper vs measured".into(),
            headers: vec![
                "metric".into(),
                "paper".into(),
                "measured".into(),
                "ok".into(),
            ],
            rows: result
                .findings
                .iter()
                .map(|f| {
                    vec![
                        f.metric.clone(),
                        f.paper.clone(),
                        f.measured.clone(),
                        if f.matches { "yes".into() } else { "NO".into() },
                    ]
                })
                .collect(),
        };
        out.push_str(&render_table(&tab));
    }
    for a in &result.artifacts {
        out.push_str(&render_artifact(a));
    }
    out
}

/// Render one experiment result in a stable, diff-friendly TSV form:
/// every line of every panel month-by-month, every table row, every
/// occupied heatmap cell, every finding. This is the byte stream the
/// golden fixtures under `tests/golden/` hold and the archive round-trip
/// suite compares across backends; f64 values use Rust's
/// shortest-roundtrip formatting, deterministic across platforms.
pub fn canonical_tsv(result: &ExperimentResult) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "id\t{}", result.id);
    let _ = writeln!(w, "title\t{}", result.title);
    for f in &result.findings {
        let _ = writeln!(
            w,
            "finding\t{}\t{}\t{}\t{}",
            f.metric, f.paper, f.measured, f.matches
        );
    }
    for artifact in &result.artifacts {
        match artifact {
            Artifact::Figure(fig) => {
                let _ = writeln!(w, "figure\t{}\t{}", fig.id, fig.caption);
                for panel in &fig.panels {
                    for line in &panel.lines {
                        for (m, v) in line.series.iter() {
                            let _ = writeln!(
                                w,
                                "line\t{}\t{}\t{}\t{}\t{}",
                                fig.id, panel.title, line.label, m, v
                            );
                        }
                    }
                }
            }
            Artifact::Table(tab) => {
                let _ = writeln!(w, "table\t{}\t{}", tab.id, tab.caption);
                let _ = writeln!(w, "headers\t{}", tab.headers.join("\t"));
                for row in &tab.rows {
                    let _ = writeln!(w, "row\t{}", row.join("\t"));
                }
            }
            Artifact::Heatmap(heat) => {
                let _ = writeln!(w, "heatmap\t{}\t{}", heat.id, heat.caption);
                let _ = writeln!(w, "heatmap-rows\t{}", heat.rows.join("\t"));
                let _ = writeln!(w, "heatmap-cols\t{}", heat.cols.join("\t"));
                for (r, row) in heat.cells.iter().enumerate() {
                    for (c, cell) in row.iter().enumerate() {
                        if let Some(v) = cell {
                            let _ = writeln!(w, "cell\t{}\t{}\t{}", r, c, v);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Render one experiment result as a JSON value — the body format of
/// the `lacnet-serve` data endpoints. Field order is fixed and months
/// render as `YYYY-MM` strings, so the output is deterministic and the
/// serving cache can compare bodies byte for byte.
pub fn result_json(result: &ExperimentResult) -> lacnet_types::json::Json {
    use lacnet_types::json::Json;
    let findings = result
        .findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("metric".into(), Json::Str(f.metric.clone())),
                ("paper".into(), Json::Str(f.paper.clone())),
                ("measured".into(), Json::Str(f.measured.clone())),
                ("matches".into(), Json::Bool(f.matches)),
            ])
        })
        .collect();
    let artifacts = result
        .artifacts
        .iter()
        .map(|artifact| match artifact {
            Artifact::Figure(fig) => Json::Obj(vec![
                ("type".into(), Json::Str("figure".into())),
                ("id".into(), Json::Str(fig.id.clone())),
                ("caption".into(), Json::Str(fig.caption.clone())),
                (
                    "panels".into(),
                    Json::Arr(
                        fig.panels
                            .iter()
                            .map(|panel| {
                                Json::Obj(vec![
                                    ("title".into(), Json::Str(panel.title.clone())),
                                    (
                                        "lines".into(),
                                        Json::Arr(
                                            panel
                                                .lines
                                                .iter()
                                                .map(|line| {
                                                    Json::Obj(vec![
                                                        (
                                                            "label".into(),
                                                            Json::Str(line.label.clone()),
                                                        ),
                                                        (
                                                            "points".into(),
                                                            Json::Arr(
                                                                line.series
                                                                    .iter()
                                                                    .map(|(m, v)| {
                                                                        Json::Arr(vec![
                                                                            Json::Str(
                                                                                m.to_string(),
                                                                            ),
                                                                            Json::Num(v),
                                                                        ])
                                                                    })
                                                                    .collect(),
                                                            ),
                                                        ),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Artifact::Table(tab) => Json::Obj(vec![
                ("type".into(), Json::Str("table".into())),
                ("id".into(), Json::Str(tab.id.clone())),
                ("caption".into(), Json::Str(tab.caption.clone())),
                (
                    "headers".into(),
                    Json::Arr(tab.headers.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "rows".into(),
                    Json::Arr(
                        tab.rows
                            .iter()
                            .map(|row| Json::Arr(row.iter().cloned().map(Json::Str).collect()))
                            .collect(),
                    ),
                ),
            ]),
            Artifact::Heatmap(heat) => Json::Obj(vec![
                ("type".into(), Json::Str("heatmap".into())),
                ("id".into(), Json::Str(heat.id.clone())),
                ("caption".into(), Json::Str(heat.caption.clone())),
                (
                    "rows".into(),
                    Json::Arr(heat.rows.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "cols".into(),
                    Json::Arr(heat.cols.iter().cloned().map(Json::Str).collect()),
                ),
                (
                    "cells".into(),
                    Json::Arr(
                        heat.cells
                            .iter()
                            .map(|row| {
                                Json::Arr(
                                    row.iter()
                                        .map(|cell| match cell {
                                            Some(v) => Json::Num(*v),
                                            None => Json::Null,
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
            ]),
        })
        .collect();
    Json::Obj(vec![
        ("id".into(), Json::Str(result.id.clone())),
        ("title".into(), Json::Str(result.title.clone())),
        ("all_match".into(), Json::Bool(result.all_match())),
        ("findings".into(), Json::Arr(findings)),
        ("artifacts".into(), Json::Arr(artifacts)),
    ])
}

/// Render one artifact as text.
pub fn render_artifact(artifact: &Artifact) -> String {
    match artifact {
        Artifact::Figure(f) => render_figure(f),
        Artifact::Table(t) => render_table(t),
        Artifact::Heatmap(h) => render_heatmap(h),
    }
}

/// Render a figure: per panel, per line, an endpoint/extremum summary and
/// an ASCII sparkline.
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {}: {}", fig.id, fig.caption);
    for panel in &fig.panels {
        let _ = writeln!(out, "  [{}]", panel.title);
        for line in &panel.lines {
            let s = &line.series;
            let (Some((m0, v0)), Some((m1, v1))) = (s.first(), s.last()) else {
                let _ = writeln!(out, "    {:<10} (empty)", line.label);
                continue;
            };
            let _ = writeln!(
                out,
                "    {:<10} {m0}: {v0:>10.2}  →  {m1}: {v1:>10.2}   {}",
                line.label,
                sparkline(s)
            );
        }
    }
    out
}

/// An 24-column ASCII sparkline of a series.
pub fn sparkline(series: &lacnet_types::TimeSeries) -> String {
    const GLYPHS: &[char] = &['_', '.', ':', '-', '=', '+', '*', '#'];
    let vals: Vec<f64> = series.iter().map(|(_, v)| v).collect();
    if vals.is_empty() {
        return String::new();
    }
    let (min, max) = vals
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let span = (max - min).max(1e-12);
    let cols = 24.min(vals.len());
    (0..cols)
        .map(|c| {
            let idx = c * (vals.len() - 1) / cols.max(1).max(1);
            let idx = idx.min(vals.len() - 1);
            let t = (vals[idx] - min) / span;
            GLYPHS[((t * (GLYPHS.len() - 1) as f64).round() as usize).min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Render a table with aligned columns.
pub fn render_table(tab: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {}: {}", tab.id, tab.caption);
    let ncols = tab
        .headers
        .len()
        .max(tab.rows.iter().map(Vec::len).max().unwrap_or(0));
    let mut widths = vec![0usize; ncols];
    let all_rows: Vec<&Vec<String>> = std::iter::once(&tab.headers)
        .chain(tab.rows.iter())
        .collect();
    for row in &all_rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    for (r, row) in all_rows.iter().enumerate() {
        out.push_str("  ");
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
        if r == 0 {
            out.push_str("  ");
            for w in &widths {
                out.push_str(&"-".repeat(*w));
                out.push_str("  ");
            }
            out.push('\n');
        }
    }
    out
}

/// Render a heatmap as a character grid: `.` for absent cells, intensity
/// digits 0–9 scaled to the maximum value.
pub fn render_heatmap(heat: &Heatmap) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- {}: {}", heat.id, heat.caption);
    let max = heat
        .cells
        .iter()
        .flatten()
        .flatten()
        .fold(0.0f64, |a, &b| a.max(b));
    let label_w = heat
        .rows
        .iter()
        .map(|r| r.chars().count())
        .max()
        .unwrap_or(0)
        .min(24);
    for (r, row_label) in heat.rows.iter().enumerate() {
        let mut label: String = row_label.chars().take(24).collect();
        while label.chars().count() < label_w {
            label.push(' ');
        }
        let _ = write!(out, "  {label} |");
        for c in 0..heat.cols.len() {
            let ch = match heat
                .cells
                .get(r)
                .and_then(|row| row.get(c))
                .copied()
                .flatten()
            {
                None => '.',
                Some(v) if max <= 0.0 => {
                    if v > 0.0 {
                        '9'
                    } else {
                        '0'
                    }
                }
                Some(v) => char::from_digit(((v / max) * 9.0).round() as u32, 10).unwrap_or('9'),
            };
            out.push(ch);
        }
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "  ({} columns: {} … {})",
        heat.cols.len(),
        heat.cols.first().map(String::as_str).unwrap_or(""),
        heat.cols.last().map(String::as_str).unwrap_or("")
    );
    out
}

/// Serialise an artifact's data as CSV (figures: one row per month per
/// line; tables: rows as-is; heatmaps: row-major with labels).
pub fn to_csv(artifact: &Artifact) -> String {
    let mut out = String::new();
    match artifact {
        Artifact::Figure(f) => {
            out.push_str("panel,line,month,value\n");
            for p in &f.panels {
                for l in &p.lines {
                    for (m, v) in l.series.iter() {
                        let _ = writeln!(
                            out,
                            "{},{},{m},{v}",
                            csv_escape(&p.title),
                            csv_escape(&l.label)
                        );
                    }
                }
            }
        }
        Artifact::Table(t) => {
            let _ = writeln!(
                out,
                "{}",
                t.headers
                    .iter()
                    .map(|h| csv_escape(h))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            for row in &t.rows {
                let _ = writeln!(
                    out,
                    "{}",
                    row.iter()
                        .map(|c| csv_escape(c))
                        .collect::<Vec<_>>()
                        .join(",")
                );
            }
        }
        Artifact::Heatmap(h) => {
            let _ = writeln!(
                out,
                "row,{}",
                h.cols
                    .iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
            for (r, label) in h.rows.iter().enumerate() {
                let cells: Vec<String> = h.cells[r]
                    .iter()
                    .map(|c| c.map(|v| v.to_string()).unwrap_or_default())
                    .collect();
                let _ = writeln!(out, "{},{}", csv_escape(label), cells.join(","));
            }
        }
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Finding, Line, Panel};
    use lacnet_types::{MonthStamp, TimeSeries};

    fn fig() -> Figure {
        Figure {
            id: "figX".into(),
            caption: "test".into(),
            panels: vec![Panel::new(
                "VE",
                vec![Line::new(
                    "VE",
                    TimeSeries::from_points([
                        (MonthStamp::new(2013, 1), 1.0),
                        (MonthStamp::new(2014, 1), 2.0),
                        (MonthStamp::new(2015, 1), 0.5),
                    ]),
                )],
            )],
        }
    }

    #[test]
    fn figure_rendering() {
        let text = render_figure(&fig());
        assert!(text.contains("figX"));
        assert!(text.contains("2013-01"));
        assert!(text.contains("2015-01"));
    }

    #[test]
    fn sparkline_shape() {
        let s =
            TimeSeries::from_points((0..30).map(|i| (MonthStamp::new(2013, 1).plus(i), i as f64)));
        let line = sparkline(&s);
        assert_eq!(line.chars().count(), 24);
        assert!(line.starts_with('_'));
        assert!(line.ends_with('#'));
        assert_eq!(sparkline(&TimeSeries::new()), "");
        // Constant series renders without NaN panic.
        let flat = TimeSeries::from_points([
            (MonthStamp::new(2013, 1), 5.0),
            (MonthStamp::new(2013, 2), 5.0),
        ]);
        assert_eq!(sparkline(&flat).chars().count(), 2);
    }

    #[test]
    fn table_rendering_aligns() {
        let t = Table {
            id: "tab".into(),
            caption: "c".into(),
            headers: vec!["ASN".into(), "Name".into()],
            rows: vec![
                vec!["8048".into(), "CANTV".into()],
                vec!["6306".into(), "Telefonica Venezolana".into()],
            ],
        };
        let text = render_table(&t);
        assert!(text.contains("ASN"));
        assert!(text.contains("CANTV"));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    fn heatmap_rendering() {
        let h = Heatmap {
            id: "h".into(),
            caption: "c".into(),
            rows: vec!["AS701".into(), "AS23520".into()],
            cols: vec!["2013".into(), "2014".into(), "2015".into()],
            cells: vec![
                vec![Some(1.0), None, None],
                vec![Some(1.0), Some(1.0), Some(1.0)],
            ],
        };
        let text = render_heatmap(&h);
        assert!(text.contains("AS701"));
        assert!(text.contains('.'), "absent cells rendered as dots");
        assert!(text.contains('9'), "present cells rendered as intensity");
    }

    #[test]
    fn csv_outputs() {
        let csv = to_csv(&Artifact::Figure(fig()));
        assert!(csv.starts_with("panel,line,month,value"));
        assert!(csv.contains("VE,VE,2013-01,1"));
        let t = Table {
            id: "t".into(),
            caption: "c".into(),
            headers: vec!["a,b".into()],
            rows: vec![vec!["x\"y".into()]],
        };
        let csv = to_csv(&Artifact::Table(t));
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn json_rendering_is_deterministic_and_structured() {
        let r = ExperimentResult {
            id: "fig01".into(),
            title: "macro".into(),
            artifacts: vec![Artifact::Figure(fig())],
            findings: vec![Finding::numeric("oil", -81.49, -81.0, 0.05)],
        };
        let text = result_json(&r).to_text();
        assert!(text.starts_with("{\"id\":\"fig01\""));
        assert!(text.contains("\"points\":[[\"2013-01\",1]"));
        assert!(text.contains("\"all_match\":true"));
        // Byte-stable across renders — the serving cache depends on it.
        assert_eq!(text, result_json(&r).to_text());
        // And it parses back through the workspace's own JSON parser.
        let parsed = lacnet_types::json::Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("id").and_then(|v| v.as_str()), Some("fig01"));
    }

    #[test]
    fn result_rendering_includes_status() {
        let r = ExperimentResult {
            id: "fig01".into(),
            title: "macro".into(),
            artifacts: vec![Artifact::Figure(fig())],
            findings: vec![Finding::numeric("oil", -81.49, -81.0, 0.05)],
        };
        let text = render_result(&r);
        assert!(text.contains("[OK]"));
        assert!(text.contains("paper vs measured"));
        let mut bad = r;
        bad.findings
            .push(Finding::numeric("gdp", -70.0, -10.0, 0.05));
        assert!(render_result(&bad).contains("[DIVERGES]"));
    }
}
