//! Cable registry, landing points, and RFS-timeline analytics.

use lacnet_types::json::{FromJson, Json, ToJson};
use lacnet_types::{CountryCode, Date, Error, GeoPoint, MonthStamp, Result, TimeSeries};
use std::collections::BTreeSet;

/// A cable landing point.
#[derive(Debug, Clone, PartialEq)]
pub struct LandingPoint {
    /// City or locality of the landing station.
    pub city: String,
    /// Country of the landing station.
    pub country: CountryCode,
    /// Coordinates.
    pub location: GeoPoint,
}

/// A submarine cable system.
#[derive(Debug, Clone, PartialEq)]
pub struct Cable {
    /// System name, e.g. `"ALBA-1"`, `"South American Crossing (SAC)"`.
    pub name: String,
    /// Ready-for-service date.
    pub rfs: Date,
    /// Landing points (at least two).
    pub landings: Vec<LandingPoint>,
    /// Approximate length in kilometres.
    pub length_km: f64,
    /// Day the system went out of service, if it ever did — scenario
    /// cable-cut events set this; the historical record leaves it `None`.
    pub failure: Option<Date>,
}

impl Cable {
    /// Countries the cable touches (deduplicated).
    pub fn countries(&self) -> BTreeSet<CountryCode> {
        self.landings.iter().map(|l| l.country).collect()
    }

    /// Whether the cable lands in `country`.
    pub fn lands_in(&self, country: CountryCode) -> bool {
        self.landings.iter().any(|l| l.country == country)
    }

    /// Whether the cable was in service on `date`: at or past its RFS
    /// date and before its failure date, if any.
    pub fn in_service(&self, date: Date) -> bool {
        self.rfs <= date && self.failure.is_none_or(|f| date < f)
    }
}

/// The full cable map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CableMap {
    cables: Vec<Cable>,
}

impl CableMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a cable. Rejects cables with fewer than two landing points or a
    /// duplicate name.
    pub fn add(&mut self, cable: Cable) -> Result<()> {
        if cable.landings.len() < 2 {
            return Err(Error::invalid("cable needs at least two landing points"));
        }
        if self.cables.iter().any(|c| c.name == cable.name) {
            return Err(Error::invalid("duplicate cable name"));
        }
        self.cables.push(cable);
        Ok(())
    }

    /// All cables.
    pub fn cables(&self) -> &[Cable] {
        &self.cables
    }

    /// Number of cables registered.
    pub fn len(&self) -> usize {
        self.cables.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.cables.is_empty()
    }

    /// Cables in service on `date` that land in `country`.
    pub fn serving(&self, country: CountryCode, date: Date) -> Vec<&Cable> {
        self.cables
            .iter()
            .filter(|c| c.in_service(date) && c.lands_in(country))
            .collect()
    }

    /// Monthly count of in-service cables landing in `country` over
    /// `[start, end]` — one Fig. 4 line.
    pub fn count_series(
        &self,
        country: CountryCode,
        start: MonthStamp,
        end: MonthStamp,
    ) -> TimeSeries {
        start
            .through(end)
            .map(|m| (m, self.serving(country, m.last_day()).len() as f64))
            .collect()
    }

    /// Monthly count of in-service cables landing in *any* of the given
    /// countries (each cable counted once) — the Fig. 4 regional panel.
    pub fn region_series(
        &self,
        countries: &[CountryCode],
        start: MonthStamp,
        end: MonthStamp,
    ) -> TimeSeries {
        let set: BTreeSet<CountryCode> = countries.iter().copied().collect();
        start
            .through(end)
            .map(|m| {
                let date = m.last_day();
                let n = self
                    .cables
                    .iter()
                    .filter(|c| {
                        c.in_service(date) && c.countries().iter().any(|cc| set.contains(cc))
                    })
                    .count();
                (m, n as f64)
            })
            .collect()
    }

    /// Cables whose RFS date falls within `[start, end]` and that land in
    /// `country` — "cables added during the period".
    pub fn added_between(&self, country: CountryCode, start: Date, end: Date) -> Vec<&Cable> {
        self.cables
            .iter()
            .filter(|c| c.lands_in(country) && c.rfs >= start && c.rfs <= end)
            .collect()
    }

    /// JSON serialisation (the generated stand-in for Telegeography's
    /// licensed export).
    pub fn to_json(&self) -> String {
        lacnet_types::json::to_string(self)
    }

    /// Parse a JSON cable map.
    pub fn from_json(text: &str) -> Result<Self> {
        lacnet_types::json::from_str(text)
    }
}

lacnet_types::impl_json_struct!(LandingPoint {
    city,
    country,
    location
});
// Hand-written (not `impl_json_struct!`) so the `failure` member is
// omitted entirely when `None` — the overwhelmingly common case — and
// the serialised cable map stays byte-identical to the pre-scenario
// format for every cable without a failure date.
impl ToJson for Cable {
    fn to_json_value(&self) -> Json {
        let mut pairs = vec![
            ("name".to_owned(), self.name.to_json_value()),
            ("rfs".to_owned(), self.rfs.to_json_value()),
            ("landings".to_owned(), self.landings.to_json_value()),
            ("length_km".to_owned(), self.length_km.to_json_value()),
        ];
        if let Some(failure) = self.failure {
            pairs.push(("failure".to_owned(), failure.to_json_value()));
        }
        Json::Obj(pairs)
    }
}

impl FromJson for Cable {
    fn from_json_value(v: &Json) -> Result<Self> {
        Ok(Cable {
            name: v.field("name")?,
            rfs: v.field("rfs")?,
            landings: v.field("landings")?,
            length_km: v.field("length_km")?,
            failure: v.field("failure")?,
        })
    }
}

impl ToJson for CableMap {
    fn to_json_value(&self) -> Json {
        Json::Obj(vec![("cables".to_owned(), self.cables.to_json_value())])
    }
}

impl FromJson for CableMap {
    fn from_json_value(v: &Json) -> Result<Self> {
        Ok(CableMap {
            cables: v.field("cables")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn lp(city: &str, cc: CountryCode, lat: f64, lon: f64) -> LandingPoint {
        LandingPoint {
            city: city.into(),
            country: cc,
            location: GeoPoint::new(lat, lon),
        }
    }

    fn toy_map() -> CableMap {
        let mut map = CableMap::new();
        map.add(Cable {
            name: "Americas-II".into(),
            rfs: Date::ymd(2000, 8, 15),
            landings: vec![
                lp("Camuri", country::VE, 10.6, -66.8),
                lp("Hollywood", country::US, 26.0, -80.1),
                lp("Fortaleza", country::BR, -3.7, -38.5),
            ],
            length_km: 8373.0,
            failure: None,
        })
        .unwrap();
        map.add(Cable {
            name: "ALBA-1".into(),
            rfs: Date::ymd(2011, 2, 9),
            landings: vec![
                lp("Camuri", country::VE, 10.6, -66.8),
                lp("Siboney", country::CU, 19.96, -75.7),
            ],
            length_km: 1860.0,
            failure: None,
        })
        .unwrap();
        map.add(Cable {
            name: "Monet".into(),
            rfs: Date::ymd(2017, 12, 1),
            landings: vec![
                lp("Boca Raton", country::US, 26.4, -80.1),
                lp("Fortaleza", country::BR, -3.7, -38.5),
            ],
            length_km: 10556.0,
            failure: None,
        })
        .unwrap();
        map
    }

    #[test]
    fn cable_predicates() {
        let map = toy_map();
        let alba = &map.cables()[1];
        assert!(alba.lands_in(country::VE));
        assert!(alba.lands_in(country::CU));
        assert!(!alba.lands_in(country::BR));
        assert!(!alba.in_service(Date::ymd(2011, 2, 8)));
        assert!(alba.in_service(Date::ymd(2011, 2, 9)));
        assert_eq!(alba.countries().len(), 2);
    }

    #[test]
    fn add_validation() {
        let mut map = toy_map();
        assert!(map
            .add(Cable {
                name: "Lonely".into(),
                rfs: Date::ymd(2020, 1, 1),
                landings: vec![lp("Camuri", country::VE, 10.6, -66.8)],
                length_km: 1.0,
                failure: None,
            })
            .is_err());
        assert!(map
            .add(Cable {
                name: "ALBA-1".into(),
                rfs: Date::ymd(2020, 1, 1),
                landings: vec![
                    lp("A", country::VE, 10.6, -66.8),
                    lp("B", country::CU, 19.9, -75.7)
                ],
                length_km: 1.0,
                failure: None,
            })
            .is_err());
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn serving_and_series() {
        let map = toy_map();
        assert_eq!(map.serving(country::VE, Date::ymd(2005, 1, 1)).len(), 1);
        assert_eq!(map.serving(country::VE, Date::ymd(2012, 1, 1)).len(), 2);
        let s = map.count_series(
            country::VE,
            MonthStamp::new(2000, 1),
            MonthStamp::new(2020, 1),
        );
        assert_eq!(s.get(MonthStamp::new(2000, 1)), Some(0.0));
        assert_eq!(
            s.get(MonthStamp::new(2000, 8)),
            Some(1.0),
            "counts within RFS month"
        );
        assert_eq!(s.get(MonthStamp::new(2020, 1)), Some(2.0));
    }

    #[test]
    fn region_counts_each_cable_once() {
        let map = toy_map();
        let s = map.region_series(
            &[country::VE, country::BR, country::CU],
            MonthStamp::new(2018, 1),
            MonthStamp::new(2018, 1),
        );
        // Americas-II touches VE and BR but counts once; ALBA and Monet.
        assert_eq!(s.get(MonthStamp::new(2018, 1)), Some(3.0));
        // US alone: Americas-II + Monet.
        let s = map.region_series(
            &[country::US],
            MonthStamp::new(2018, 1),
            MonthStamp::new(2018, 1),
        );
        assert_eq!(s.get(MonthStamp::new(2018, 1)), Some(2.0));
    }

    #[test]
    fn added_between_matches_paper_framing() {
        let map = toy_map();
        // "The only cable that landed in Venezuela in the past decade is
        // the ALBA cable" — RFS window 2004..2024.
        let added = map.added_between(country::VE, Date::ymd(2004, 1, 1), Date::ymd(2024, 1, 1));
        assert_eq!(added.len(), 1);
        assert_eq!(added[0].name, "ALBA-1");
    }

    #[test]
    fn json_roundtrip() {
        let map = toy_map();
        let back = CableMap::from_json(&map.to_json()).unwrap();
        assert_eq!(back, map);
        assert!(CableMap::from_json("nope").is_err());
    }

    #[test]
    fn failure_dates_end_service_and_roundtrip() {
        let mut map = toy_map();
        // A failure date is omitted from the wire form entirely when
        // absent, so the pre-failure serialisation is byte-stable.
        assert!(!map.to_json().contains("failure"));
        let alba = map.cables.iter_mut().find(|c| c.name == "ALBA-1").unwrap();
        alba.failure = Some(Date::ymd(2019, 8, 15));
        assert!(alba.in_service(Date::ymd(2019, 8, 14)));
        assert!(
            !alba.in_service(Date::ymd(2019, 8, 15)),
            "failure day is out"
        );
        let back = CableMap::from_json(&map.to_json()).unwrap();
        assert_eq!(back, map);
        // The monthly count drops after the cut.
        let s = map.count_series(
            country::VE,
            MonthStamp::new(2019, 7),
            MonthStamp::new(2019, 8),
        );
        assert_eq!(s.get(MonthStamp::new(2019, 7)), Some(2.0));
        assert_eq!(s.get(MonthStamp::new(2019, 8)), Some(1.0));
    }
}
