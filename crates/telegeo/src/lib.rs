//! # lacnet-telegeo
//!
//! A submarine-cable registry modelled on Telegeography's Submarine Cable
//! Map: cables with landing points and ready-for-service (RFS) dates.
//!
//! Fig. 4 of the study counts, per country and per year, the cables whose
//! landing points touch that country's shore — showing the LACNIC region
//! growing from 13 to 54 cables between 2000 and 2024 while Venezuela
//! added only the ALBA-1 link to Cuba.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cables;

pub use cables::{Cable, CableMap, LandingPoint};
