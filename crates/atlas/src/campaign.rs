//! The CHAOS TXT built-in campaign and its aggregations.
//!
//! RIPE Atlas's built-in measurements query every root letter from every
//! probe every 30 minutes; the study samples the first five days of each
//! month. One simulated "round" per month is sufficient here because
//! catchments are stable within a month in the model — what varies is the
//! deployment and the probe population.

use crate::anycast::{AnycastFleet, AnycastSite, SiteScope};
use crate::chaos;
use crate::probes::{ProbeId, ProbeRegistry};
use crate::roots::{RootDeployment, RootInstance, RootLetter};
use lacnet_types::{sweep, CountryCode, MonthStamp, TimeSeries};
use std::collections::{BTreeMap, BTreeSet};

/// One CHAOS TXT response as the platform would archive it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosObservation {
    /// Month of the measurement round.
    pub month: MonthStamp,
    /// Probe that issued the query.
    pub probe: ProbeId,
    /// Country hosting the probe.
    pub probe_country: CountryCode,
    /// Letter queried.
    pub letter: RootLetter,
    /// The TXT payload returned by the instance that caught the query.
    pub txt: String,
}

/// The campaign driver: probes × letters × months over a deployment.
pub struct ChaosCampaign<'a> {
    probes: &'a ProbeRegistry,
    deployment: &'a RootDeployment,
}

impl<'a> ChaosCampaign<'a> {
    /// Create a campaign over the given probe registry and deployment.
    pub fn new(probes: &'a ProbeRegistry, deployment: &'a RootDeployment) -> Self {
        ChaosCampaign { probes, deployment }
    }

    /// Build the anycast fleet for `letter` as announced in `month`.
    fn fleet_for(
        &self,
        letter: RootLetter,
        month: MonthStamp,
    ) -> (AnycastFleet, BTreeMap<String, &'a RootInstance>) {
        let mut sites = Vec::new();
        let mut by_id = BTreeMap::new();
        for inst in self.deployment.active(letter, month) {
            let id = inst.identity();
            sites.push(AnycastSite {
                id: id.clone(),
                location: inst.location,
                scope: if inst.global {
                    SiteScope::Global
                } else {
                    SiteScope::Domestic(inst.country)
                },
            });
            by_id.insert(id, inst);
        }
        (AnycastFleet::new(sites), by_id)
    }

    /// Run one monthly round: every active probe queries every letter.
    /// Payloads are encoded once per active instance, not once per probe
    /// — the generation-side half of the batched-decoding contract.
    pub fn run_month(&self, month: MonthStamp) -> Vec<ChaosObservation> {
        let mut out = Vec::new();
        for letter in RootLetter::ALL {
            let (fleet, by_id) = self.fleet_for(letter, month);
            if fleet.is_empty() {
                continue;
            }
            let txt_by_id: BTreeMap<&str, String> = by_id
                .iter()
                .map(|(id, inst)| (id.as_str(), chaos::encode(inst)))
                .collect();
            for probe in self.probes.active_in(month) {
                if let Some(site) = fleet.catch(probe) {
                    out.push(ChaosObservation {
                        month,
                        probe: probe.id,
                        probe_country: probe.country,
                        letter,
                        txt: txt_by_id[site.id.as_str()].clone(),
                    });
                }
            }
        }
        out
    }
}

/// Decode a round's observations into the set of unique replica
/// identities seen per hosting country — the per-month datum of Fig. 6.
/// Responses that fail to decode or resolve to no country are dropped
/// (as the paper's regex pipeline drops unmappable strings).
///
/// Decoding is batched through [`chaos::BatchDecoder`]: each distinct
/// `(letter, txt)` payload in the round runs the grammar walk, airport
/// lookup and identity rendering once, however many probes returned it.
pub fn replicas_by_country(
    observations: &[ChaosObservation],
) -> BTreeMap<CountryCode, BTreeSet<String>> {
    let mut batch = chaos::BatchDecoder::new();
    let mut out: BTreeMap<CountryCode, BTreeSet<String>> = BTreeMap::new();
    for obs in observations {
        if let Some(decoded) = batch.decode(obs.letter, &obs.txt) {
            if let Some(cc) = decoded.country {
                out.entry(cc).or_default().insert(decoded.identity.clone());
            }
        }
    }
    out
}

/// Per-month unique-replica counts per hosting country, folded into
/// country time series. The month results arrive in chronological order,
/// so each series is built by in-order inserts — identical to the serial
/// month loop this replaces.
fn fold_monthly_counts(
    monthly: Vec<(MonthStamp, BTreeMap<CountryCode, BTreeSet<String>>)>,
) -> BTreeMap<CountryCode, TimeSeries> {
    let mut out: BTreeMap<CountryCode, TimeSeries> = BTreeMap::new();
    for (m, per_country) in monthly {
        for (cc, replicas) in per_country {
            out.entry(cc).or_default().insert(m, replicas.len() as f64);
        }
    }
    out
}

/// Monthly unique-replica counts for each country over `[start, end]` —
/// the Fig. 6 lines (and, summed, its regional panel). Months run on
/// sweep workers, each round decoded in one batch.
pub fn replica_count_series(
    probes: &ProbeRegistry,
    deployment: &RootDeployment,
    start: MonthStamp,
    end: MonthStamp,
) -> BTreeMap<CountryCode, TimeSeries> {
    let campaign = ChaosCampaign::new(probes, deployment);
    fold_monthly_counts(sweep::month_range(start, end, |m| {
        replicas_by_country(&campaign.run_month(m))
    }))
}

/// The Fig. 16 heatmap: from the probes of `vantage_country`, how many
/// distinct replicas in each hosting country were reached each month.
pub fn origin_heatmap(
    probes: &ProbeRegistry,
    deployment: &RootDeployment,
    vantage_country: CountryCode,
    start: MonthStamp,
    end: MonthStamp,
) -> BTreeMap<CountryCode, TimeSeries> {
    let campaign = ChaosCampaign::new(probes, deployment);
    fold_monthly_counts(sweep::month_range(start, end, |m| {
        let obs: Vec<ChaosObservation> = campaign
            .run_month(m)
            .into_iter()
            .filter(|o| o.probe_country == vantage_country)
            .collect();
        replicas_by_country(&obs)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probes::Probe;
    use lacnet_types::{country, geo, Asn, GeoPoint};

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    fn probe(id: u32, cc: CountryCode, code: &str, egress: Option<&str>) -> Probe {
        Probe {
            id,
            country: cc,
            location: geo::airport(code).unwrap().location,
            asn: Asn(8048),
            active_since: m(2016, 1),
            active_until: None,
            egress: egress.map(|e| geo::airport(e).unwrap().location),
        }
    }

    fn instance(
        letter: RootLetter,
        site: &str,
        cc: CountryCode,
        since: MonthStamp,
        until: Option<MonthStamp>,
        global: bool,
    ) -> RootInstance {
        RootInstance {
            letter,
            site: site.into(),
            unit: 1,
            country: cc,
            location: geo::airport(site)
                .map(|a| a.location)
                .unwrap_or(GeoPoint::new(0.0, 0.0)),
            active_since: since,
            active_until: until,
            global,
        }
    }

    /// VE hosts a domestic L replica until mid-2019; Bogotá and Miami
    /// global L replicas exist throughout; an F replica exists in Caracas
    /// until 2018.
    fn world() -> (ProbeRegistry, RootDeployment) {
        let mut probes = ProbeRegistry::new();
        probes.add(probe(1, country::VE, "ccs", Some("mia")));
        probes.add(probe(2, country::VE, "mar", None));
        probes.add(probe(3, country::CO, "bog", None));
        let mut dep = RootDeployment::new();
        dep.add(instance(
            RootLetter::L,
            "ccs",
            country::VE,
            m(2016, 1),
            Some(m(2019, 6)),
            false,
        ));
        dep.add(instance(
            RootLetter::F,
            "ccs",
            country::VE,
            m(2016, 1),
            Some(m(2018, 3)),
            false,
        ));
        dep.add(instance(
            RootLetter::L,
            "bog",
            country::CO,
            m(2016, 1),
            None,
            true,
        ));
        dep.add(instance(
            RootLetter::L,
            "mia",
            country::US,
            m(2016, 1),
            None,
            true,
        ));
        dep.add(instance(
            RootLetter::F,
            "mia",
            country::US,
            m(2016, 1),
            None,
            true,
        ));
        (probes, dep)
    }

    #[test]
    fn domestic_replica_caught_while_active() {
        let (probes, dep) = world();
        let campaign = ChaosCampaign::new(&probes, &dep);
        let obs = campaign.run_month(m(2017, 1));
        // VE probes hit the domestic L node.
        let ve_l: Vec<_> = obs
            .iter()
            .filter(|o| o.probe_country == country::VE && o.letter == RootLetter::L)
            .collect();
        assert_eq!(ve_l.len(), 2);
        assert!(
            ve_l.iter().all(|o| o.txt == "ccs01.l.root-servers.org"),
            "{ve_l:?}"
        );
        // Colombian probe cannot see the VE domestic node; Bogotá global wins.
        let co_l = obs
            .iter()
            .find(|o| o.probe_country == country::CO && o.letter == RootLetter::L)
            .unwrap();
        assert_eq!(co_l.txt, "bog01.l.root-servers.org");
    }

    #[test]
    fn replica_regression_after_shutdown() {
        let (probes, dep) = world();
        let series = replica_count_series(&probes, &dep, m(2017, 1), m(2020, 1));
        let ve = &series[&country::VE];
        // 2017: L-ccs + F-ccs = 2 replicas geolocated to VE.
        assert_eq!(ve.get(m(2017, 1)), Some(2.0));
        // After F retires (2018-04) only L remains.
        assert_eq!(ve.get(m(2018, 6)), Some(1.0));
        // After L retires (2019-07) VE disappears from the map entirely.
        assert_eq!(ve.get(m(2020, 1)), None);
        // The US and CO replicas persist.
        assert!(series[&country::US].get(m(2020, 1)).unwrap() >= 1.0);
        assert_eq!(series[&country::CO].get(m(2020, 1)), Some(1.0));
    }

    #[test]
    fn origin_heatmap_shifts_to_foreign_sources() {
        let (probes, dep) = world();
        let heat = origin_heatmap(&probes, &dep, country::VE, m(2017, 1), m(2020, 1));
        // While domestic nodes lived, VE probes saw VE replicas.
        assert_eq!(heat[&country::VE].get(m(2017, 1)), Some(2.0));
        // After the shutdowns, VE vanishes as an origin and the US/CO
        // replicas serve Venezuela.
        assert_eq!(heat[&country::VE].get(m(2020, 1)), None);
        assert!(heat[&country::US].get(m(2020, 1)).is_some());
        // The Maracaibo probe (no Miami egress) reaches Bogotá for L.
        assert!(heat[&country::CO].get(m(2020, 1)).is_some());
    }

    #[test]
    fn letters_without_instances_produce_no_observations() {
        let (probes, dep) = world();
        let campaign = ChaosCampaign::new(&probes, &dep);
        let obs = campaign.run_month(m(2017, 1));
        assert!(obs
            .iter()
            .all(|o| matches!(o.letter, RootLetter::L | RootLetter::F)));
    }

    #[test]
    fn undecodable_observations_are_dropped() {
        let obs = vec![ChaosObservation {
            month: m(2017, 1),
            probe: 1,
            probe_country: country::VE,
            letter: RootLetter::L,
            txt: "garbage".into(),
        }];
        assert!(replicas_by_country(&obs).is_empty());
    }
}
