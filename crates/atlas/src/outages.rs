//! Outage detection from probe reachability — the study's future-work
//! direction (§9 cites the Myanmar-shutdown and outage-characterisation
//! literature; §2/§81 the electricity crisis).
//!
//! The detector consumes a daily per-country connected-probe series and
//! flags windows where connectivity drops below a fraction of the
//! trailing baseline — the standard signal behind IODA-style national
//! outage detection, and exactly what the March 2019 Venezuelan blackouts
//! look like from RIPE Atlas.

use lacnet_types::{CountryCode, Date, Error, Result};
use std::collections::BTreeMap;

/// A daily probe-connectivity series for one country.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReachabilitySeries {
    days: BTreeMap<Date, u32>,
}

impl ReachabilitySeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the number of connected probes on `day`.
    pub fn insert(&mut self, day: Date, connected: u32) {
        self.days.insert(day, connected);
    }

    /// The recorded value for `day`.
    pub fn get(&self, day: Date) -> Option<u32> {
        self.days.get(&day).copied()
    }

    /// Number of days recorded.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Iterate chronologically.
    pub fn iter(&self) -> impl Iterator<Item = (Date, u32)> + '_ {
        self.days.iter().map(|(&d, &v)| (d, v))
    }

    /// Serialise as the archive TSV: one `date<TAB>connected` line per
    /// day, chronological. `parse_tsv(to_tsv(s)) == s` exactly.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for (day, n) in self.iter() {
            out.push_str(&format!("{day}\t{n}\n"));
        }
        out
    }

    /// Parse the archive TSV written by [`to_tsv`]. Blank lines and `#`
    /// comments are skipped.
    ///
    /// [`to_tsv`]: ReachabilitySeries::to_tsv
    pub fn parse_tsv(text: &str) -> Result<Self> {
        let mut series = ReachabilitySeries::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (day, n) = line
                .split_once('\t')
                .ok_or_else(|| Error::parse("reachability row (date<TAB>count)", line))?;
            let day: Date = day.parse()?;
            let n: u32 = n
                .parse()
                .map_err(|_| Error::parse("reachability probe count", line))?;
            series.insert(day, n);
        }
        Ok(series)
    }
}

/// One detected outage window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutageEvent {
    /// First affected day.
    pub start: Date,
    /// Last affected day, inclusive.
    pub end: Date,
    /// Baseline connected probes before the drop.
    pub baseline: u32,
    /// Minimum connected probes during the window.
    pub trough: u32,
}

impl OutageEvent {
    /// Duration in days.
    pub fn duration_days(&self) -> i64 {
        self.start.days_until(self.end) + 1
    }

    /// Depth of the outage as a fraction of baseline lost, in `[0, 1]`.
    pub fn depth(&self) -> f64 {
        if self.baseline == 0 {
            return 0.0;
        }
        1.0 - self.trough as f64 / self.baseline as f64
    }
}

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Days of trailing history forming the baseline (median).
    pub baseline_days: usize,
    /// A day is "out" when connectivity falls below this fraction of the
    /// baseline.
    pub drop_fraction: f64,
    /// Countries with fewer baseline probes than this cannot be
    /// monitored: one flapping probe would look like a national outage.
    pub min_baseline: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            baseline_days: 14,
            drop_fraction: 0.5,
            min_baseline: 5,
        }
    }
}

/// Detect outage windows in a daily reachability series.
///
/// The baseline is the median of the trailing `baseline_days` *normal*
/// days (days inside a detected outage do not poison the baseline, so
/// multi-day blackouts are reported at full depth).
pub fn detect(series: &ReachabilitySeries, config: DetectorConfig) -> Vec<OutageEvent> {
    let mut events = Vec::new();
    let mut normal_history: Vec<u32> = Vec::new();
    let mut current: Option<OutageEvent> = None;

    for (day, connected) in series.iter() {
        let baseline = median_u32(&normal_history);
        let is_out = match baseline {
            Some(b) if b >= config.min_baseline => {
                (connected as f64) < config.drop_fraction * b as f64
            }
            _ => false,
        };
        match (&mut current, is_out) {
            (None, true) => {
                current = Some(OutageEvent {
                    start: day,
                    end: day,
                    baseline: baseline.unwrap_or(0),
                    trough: connected,
                });
            }
            (Some(ev), true) => {
                ev.end = day;
                ev.trough = ev.trough.min(connected);
            }
            (Some(_), false) => {
                events.push(current.take().expect("event in progress"));
            }
            (None, false) => {}
        }
        if !is_out {
            normal_history.push(connected);
            let excess = normal_history.len().saturating_sub(config.baseline_days);
            if excess > 0 {
                normal_history.drain(..excess);
            }
        }
    }
    if let Some(ev) = current {
        events.push(ev);
    }
    events
}

fn median_u32(v: &[u32]) -> Option<u32> {
    if v.is_empty() {
        return None;
    }
    let mut s = v.to_vec();
    s.sort_unstable();
    Some(s[s.len() / 2])
}

/// Detect per-country outages from a map of series.
pub fn detect_all(
    series: &BTreeMap<CountryCode, ReachabilitySeries>,
    config: DetectorConfig,
) -> BTreeMap<CountryCode, Vec<OutageEvent>> {
    series
        .iter()
        .map(|(&cc, s)| (cc, detect(s, config)))
        .filter(|(_, evs)| !evs.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_drop(days_out: &[(i32, u8, u8)]) -> ReachabilitySeries {
        let mut s = ReachabilitySeries::new();
        let start = Date::ymd(2019, 2, 1);
        for d in 0..90 {
            let day = start.plus_days(d);
            let out = days_out
                .iter()
                .any(|&(y, m, dd)| day == Date::ymd(y, m, dd));
            s.insert(day, if out { 3 } else { 20 });
        }
        s
    }

    #[test]
    fn detects_single_blackout() {
        let s = series_with_drop(&[(2019, 3, 7), (2019, 3, 8), (2019, 3, 9)]);
        let events = detect(&s, DetectorConfig::default());
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.start, Date::ymd(2019, 3, 7));
        assert_eq!(ev.end, Date::ymd(2019, 3, 9));
        assert_eq!(ev.duration_days(), 3);
        assert_eq!(ev.baseline, 20);
        assert_eq!(ev.trough, 3);
        assert!((ev.depth() - 0.85).abs() < 1e-9);
    }

    #[test]
    fn multi_day_outage_does_not_poison_baseline() {
        // A week-long blackout: the baseline must stay at the pre-outage
        // level for the whole window.
        let days: Vec<(i32, u8, u8)> = (7..=14).map(|d| (2019, 3, d)).collect();
        let s = series_with_drop(&days);
        let events = detect(&s, DetectorConfig::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].duration_days(), 8);
        assert_eq!(events[0].baseline, 20);
    }

    #[test]
    fn separate_events_are_distinct() {
        let s = series_with_drop(&[(2019, 3, 7), (2019, 3, 8), (2019, 3, 25), (2019, 3, 26)]);
        let events = detect(&s, DetectorConfig::default());
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].start, Date::ymd(2019, 3, 7));
        assert_eq!(events[1].start, Date::ymd(2019, 3, 25));
    }

    #[test]
    fn stable_series_has_no_events() {
        let s = series_with_drop(&[]);
        assert!(detect(&s, DetectorConfig::default()).is_empty());
    }

    #[test]
    fn shallow_dips_below_threshold_ignored() {
        let mut s = ReachabilitySeries::new();
        let start = Date::ymd(2019, 2, 1);
        for d in 0..60 {
            let day = start.plus_days(d);
            // 20 probes, occasionally 12 (40% dip — under the 50% bar).
            s.insert(day, if d % 10 == 5 { 12 } else { 20 });
        }
        assert!(detect(&s, DetectorConfig::default()).is_empty());
        // A stricter detector does flag them.
        let strict = DetectorConfig {
            drop_fraction: 0.7,
            ..DetectorConfig::default()
        };
        assert!(!detect(&s, strict).is_empty());
    }

    #[test]
    fn outage_still_open_at_series_end() {
        let mut s = ReachabilitySeries::new();
        let start = Date::ymd(2019, 3, 1);
        for d in 0..20 {
            s.insert(start.plus_days(d), if d >= 15 { 1 } else { 20 });
        }
        let events = detect(&s, DetectorConfig::default());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].end, start.plus_days(19));
    }

    #[test]
    fn empty_series() {
        assert!(detect(&ReachabilitySeries::new(), DetectorConfig::default()).is_empty());
        assert!(ReachabilitySeries::new().is_empty());
    }

    #[test]
    fn tsv_roundtrip_is_exact() {
        let s = series_with_drop(&[(2019, 3, 7), (2019, 3, 8)]);
        let text = s.to_tsv();
        assert!(text.starts_with("2019-02-01\t20\n"));
        let back = ReachabilitySeries::parse_tsv(&text).unwrap();
        assert_eq!(back, s);
        assert_eq!(
            detect(&back, DetectorConfig::default()),
            detect(&s, DetectorConfig::default())
        );
    }

    #[test]
    fn tsv_parse_rejects_malformed() {
        assert!(ReachabilitySeries::parse_tsv("2019-03-07 20\n").is_err());
        assert!(ReachabilitySeries::parse_tsv("2019-13-07\t20\n").is_err());
        assert!(ReachabilitySeries::parse_tsv("2019-03-07\tmany\n").is_err());
        let ok = ReachabilitySeries::parse_tsv("# header\n\n2019-03-07\t20\n").unwrap();
        assert_eq!(ok.len(), 1);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// parse_tsv(to_tsv(s)) == s for arbitrary series.
            #[test]
            fn tsv_roundtrip_proptest(
                start_day in 1u8..=28,
                days in 1usize..=120,
                base in 0u32..=500,
            ) {
                let mut s = ReachabilitySeries::new();
                let start = Date::ymd(2019, 1, start_day);
                for d in 0..days {
                    // Deterministic but varied counts.
                    let n = base.wrapping_add((d as u32 * 7919) % 97);
                    s.insert(start.plus_days(d as i64), n);
                }
                let back = ReachabilitySeries::parse_tsv(&s.to_tsv()).unwrap();
                prop_assert_eq!(back, s);
            }
        }
    }
}
