//! The probe registry.

use lacnet_types::{Asn, CountryCode, GeoPoint, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// A probe identifier.
pub type ProbeId = u32;

/// One Atlas probe: where it is, which network hosts it, and when it was
/// connected.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Probe id.
    pub id: ProbeId,
    /// Country of the hosting network.
    pub country: CountryCode,
    /// Probe coordinates.
    pub location: GeoPoint,
    /// Hosting AS.
    pub asn: Asn,
    /// First month the probe reported measurements.
    pub active_since: MonthStamp,
    /// Last month the probe reported, inclusive (`None` = still active).
    pub active_until: Option<MonthStamp>,
    /// Forced international egress point, if the probe's traffic detours
    /// through a remote gateway before reaching anycast infrastructure
    /// (e.g. a CANTV customer whose transit hauls everything to Miami).
    /// `None` means traffic takes the geographically direct route.
    pub egress: Option<GeoPoint>,
}

impl Probe {
    /// Whether the probe reported during `month`.
    pub fn active_in(&self, month: MonthStamp) -> bool {
        month >= self.active_since && self.active_until.is_none_or(|u| month <= u)
    }
}

/// All probes known to the platform.
#[derive(Debug, Clone, Default)]
pub struct ProbeRegistry {
    probes: Vec<Probe>,
}

impl ProbeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a probe. Ids are expected unique; duplicates are rejected.
    pub fn add(&mut self, probe: Probe) -> bool {
        if self.probes.iter().any(|p| p.id == probe.id) {
            return false;
        }
        self.probes.push(probe);
        true
    }

    /// Every probe ever registered.
    pub fn all(&self) -> &[Probe] {
        &self.probes
    }

    /// Number of registered probes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Probes active in `month`.
    pub fn active_in(&self, month: MonthStamp) -> Vec<&Probe> {
        self.probes.iter().filter(|p| p.active_in(month)).collect()
    }

    /// Probes active in `month` and hosted in `country`.
    pub fn active_in_country(&self, month: MonthStamp, country: CountryCode) -> Vec<&Probe> {
        self.probes
            .iter()
            .filter(|p| p.country == country && p.active_in(month))
            .collect()
    }

    /// Per-country active-probe counts for `month`.
    pub fn counts_by_country(&self, month: MonthStamp) -> BTreeMap<CountryCode, usize> {
        let mut out = BTreeMap::new();
        for p in self.active_in(month) {
            *out.entry(p.country).or_insert(0) += 1;
        }
        out
    }

    /// Monthly active-probe series for one country over `[start, end]` —
    /// one Fig. 17 line.
    pub fn count_series(
        &self,
        country: CountryCode,
        start: MonthStamp,
        end: MonthStamp,
    ) -> TimeSeries {
        start
            .through(end)
            .map(|m| (m, self.active_in_country(m, country).len() as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    fn probe(id: u32, cc: CountryCode, since: MonthStamp, until: Option<MonthStamp>) -> Probe {
        Probe {
            id,
            country: cc,
            location: GeoPoint::new(10.0, -66.0),
            asn: Asn(8048),
            active_since: since,
            active_until: until,
            egress: None,
        }
    }

    #[test]
    fn activity_windows() {
        let p = probe(1, country::VE, m(2016, 3), Some(m(2018, 6)));
        assert!(!p.active_in(m(2016, 2)));
        assert!(p.active_in(m(2016, 3)));
        assert!(p.active_in(m(2018, 6)));
        assert!(!p.active_in(m(2018, 7)));
        let open = probe(2, country::VE, m(2016, 3), None);
        assert!(open.active_in(m(2030, 1)));
    }

    #[test]
    fn registry_queries() {
        let mut reg = ProbeRegistry::new();
        assert!(reg.add(probe(1, country::VE, m(2016, 1), None)));
        assert!(reg.add(probe(2, country::VE, m(2020, 1), None)));
        assert!(reg.add(probe(3, country::BR, m(2016, 1), Some(m(2019, 12)))));
        assert!(
            !reg.add(probe(1, country::BR, m(2016, 1), None)),
            "duplicate id"
        );
        assert_eq!(reg.len(), 3);

        assert_eq!(reg.active_in(m(2017, 1)).len(), 2);
        assert_eq!(reg.active_in_country(m(2017, 1), country::VE).len(), 1);
        assert_eq!(reg.active_in_country(m(2021, 1), country::VE).len(), 2);
        assert_eq!(reg.active_in_country(m(2021, 1), country::BR).len(), 0);

        let counts = reg.counts_by_country(m(2017, 1));
        assert_eq!(counts[&country::VE], 1);
        assert_eq!(counts[&country::BR], 1);
    }

    #[test]
    fn count_series_shape() {
        let mut reg = ProbeRegistry::new();
        reg.add(probe(1, country::VE, m(2016, 1), None));
        reg.add(probe(2, country::VE, m(2016, 6), Some(m(2016, 8))));
        let s = reg.count_series(country::VE, m(2016, 1), m(2016, 12));
        assert_eq!(s.get(m(2016, 1)), Some(1.0));
        assert_eq!(s.get(m(2016, 7)), Some(2.0));
        assert_eq!(s.get(m(2016, 9)), Some(1.0));
        assert_eq!(s.len(), 12);
    }
}
