//! CHAOS TXT instance-identity grammars, one per root letter.
//!
//! Root operators answer `CH TXT hostname.bind` with an instance identity
//! that usually embeds an airport code — but every operator uses its own
//! naming scheme, and some changed schemes over time (the paper observes
//! both `ccs01.l.root-servers.org` and `aa.ve-mai.l.root` for L). The
//! study "developed regular expressions to extract these codes from each
//! of the 13 different types of responses"; this module is that decoder,
//! written as hand-rolled grammars (no regex crate), plus the matching
//! encoder the generator uses.

use crate::roots::{RootInstance, RootLetter};
use lacnet_types::{geo, CountryCode, Error, Result};

/// A decoded instance identity: which site (airport code) and unit the
/// response names, plus a country hint when the scheme embeds one
/// (K-root and new-style L-root do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRef {
    /// The letter the response belongs to.
    pub letter: RootLetter,
    /// Lowercase site code, e.g. `"ccs"`.
    pub site: String,
    /// Unit number at the site, when the scheme encodes one.
    pub unit: Option<u8>,
    /// Country embedded in the identity itself, if any.
    pub country_hint: Option<CountryCode>,
}

impl SiteRef {
    /// Resolve the hosting country: an embedded hint wins; otherwise the
    /// site code is looked up in the airport registry.
    pub fn country(&self) -> Option<CountryCode> {
        if let Some(cc) = self.country_hint {
            return Some(cc);
        }
        geo::airport(&self.site).and_then(|a| CountryCode::new(a.country).ok())
    }

    /// Unique replica key `letter/site/unit` (unit 1 when unspecified),
    /// aligned with [`RootInstance::identity`].
    pub fn identity(&self) -> String {
        format!("{}/{}/{}", self.letter, self.site, self.unit.unwrap_or(1))
    }
}

/// The month index before which L-root used its legacy naming scheme.
/// The generator switches new L instances to the `aa.<cc>-<site>.l.root`
/// style from 2019 onward, mirroring the two styles the paper saw.
const L_NEW_STYLE_FROM_YEAR: i32 = 2019;

/// Render the CHAOS TXT identity string for an instance, in the letter's
/// naming scheme.
pub fn encode(instance: &RootInstance) -> String {
    let site = instance.site.as_str();
    let unit = instance.unit;
    let cc = instance.country.as_str().to_ascii_lowercase();
    match instance.letter {
        RootLetter::A => format!("nnn1-{site}{unit}"),
        RootLetter::B => format!("b{unit}-{site}"),
        RootLetter::C => format!("{site}{unit}b.c.root-servers.org"),
        RootLetter::D => format!("dns{unit}.{site}.d.root-servers.net"),
        RootLetter::E => format!("e{unit}.{site}.eroot"),
        RootLetter::F => format!("{site}{unit}a.f.root-servers.org"),
        RootLetter::G => format!("groot-{site}-{unit}"),
        RootLetter::H => format!("h{unit}-{site}"),
        RootLetter::I => format!("s{unit}.{site}"),
        RootLetter::J => format!("rootns-{site}{unit}"),
        RootLetter::K => format!("ns{unit}.{cc}-{site}.k.ripe.net"),
        RootLetter::L => {
            if instance.active_since.year() >= L_NEW_STYLE_FROM_YEAR {
                format!("aa.{cc}-{site}.l.root")
            } else {
                format!("{site}{unit:02}.l.root-servers.org")
            }
        }
        RootLetter::M => format!("M-{site}-{unit}"),
    }
}

fn err(txt: &str) -> Error {
    Error::parse("CHAOS TXT instance identity", txt)
}

/// Split a trailing decimal unit off a token: `"ccs12"` → `("ccs", 12)`.
fn split_trailing_unit(token: &str) -> Option<(&str, u8)> {
    let digits = token
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .count();
    if digits == 0 || digits == token.len() {
        return None;
    }
    let (site, num) = token.split_at(token.len() - digits);
    num.parse::<u8>().ok().map(|u| (site, u))
}

fn valid_site(s: &str) -> bool {
    (2..=4).contains(&s.len()) && s.chars().all(|c| c.is_ascii_lowercase())
}

/// Parse `<cc>-<site>` (as in `ve-mai`), returning the hint and site.
fn parse_cc_site(token: &str) -> Result<(CountryCode, String)> {
    let (cc, site) = token.split_once('-').ok_or_else(|| err(token))?;
    let cc = CountryCode::new(cc).map_err(|_| err(token))?;
    if !valid_site(site) {
        return Err(err(token));
    }
    Ok((cc, site.to_owned()))
}

/// Decode a CHAOS TXT response for the given letter back into a
/// [`SiteRef`]. Unknown shapes yield a parse error — the campaign treats
/// those as unmappable responses, exactly as the paper's pipeline drops
/// strings its regexes cannot match.
pub fn decode(letter: RootLetter, txt: &str) -> Result<SiteRef> {
    let txt = txt.trim();
    let mk = |site: &str, unit: Option<u8>, hint: Option<CountryCode>| SiteRef {
        letter,
        site: site.to_owned(),
        unit,
        country_hint: hint,
    };
    match letter {
        RootLetter::A => {
            // nnn1-<site><unit>
            let rest = txt.strip_prefix("nnn1-").ok_or_else(|| err(txt))?;
            let (site, unit) = split_trailing_unit(rest).ok_or_else(|| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::B => {
            // b<unit>-<site>
            let rest = txt.strip_prefix('b').ok_or_else(|| err(txt))?;
            let (unit, site) = rest.split_once('-').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::C => {
            // <site><unit>b.c.root-servers.org
            let rest = txt
                .strip_suffix("b.c.root-servers.org")
                .ok_or_else(|| err(txt))?;
            let (site, unit) = split_trailing_unit(rest).ok_or_else(|| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::D => {
            // dns<unit>.<site>.d.root-servers.net
            let rest = txt.strip_prefix("dns").ok_or_else(|| err(txt))?;
            let rest = rest
                .strip_suffix(".d.root-servers.net")
                .ok_or_else(|| err(txt))?;
            let (unit, site) = rest.split_once('.').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::E => {
            // e<unit>.<site>.eroot
            let rest = txt.strip_prefix('e').ok_or_else(|| err(txt))?;
            let rest = rest.strip_suffix(".eroot").ok_or_else(|| err(txt))?;
            let (unit, site) = rest.split_once('.').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::F => {
            // <site><unit>a.f.root-servers.org
            let rest = txt
                .strip_suffix("a.f.root-servers.org")
                .ok_or_else(|| err(txt))?;
            let (site, unit) = split_trailing_unit(rest).ok_or_else(|| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::G => {
            // groot-<site>-<unit>
            let rest = txt.strip_prefix("groot-").ok_or_else(|| err(txt))?;
            let (site, unit) = rest.split_once('-').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::H => {
            // h<unit>-<site>
            let rest = txt.strip_prefix('h').ok_or_else(|| err(txt))?;
            let (unit, site) = rest.split_once('-').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::I => {
            // s<unit>.<site>
            let rest = txt.strip_prefix('s').ok_or_else(|| err(txt))?;
            let (unit, site) = rest.split_once('.').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::J => {
            // rootns-<site><unit>
            let rest = txt.strip_prefix("rootns-").ok_or_else(|| err(txt))?;
            let (site, unit) = split_trailing_unit(rest).ok_or_else(|| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
        RootLetter::K => {
            // ns<unit>.<cc>-<site>.k.ripe.net
            let rest = txt.strip_prefix("ns").ok_or_else(|| err(txt))?;
            let rest = rest.strip_suffix(".k.ripe.net").ok_or_else(|| err(txt))?;
            let (unit, ccsite) = rest.split_once('.').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            let (cc, site) = parse_cc_site(ccsite)?;
            Ok(mk(&site, Some(unit), Some(cc)))
        }
        RootLetter::L => {
            if let Some(rest) = txt.strip_prefix("aa.") {
                // aa.<cc>-<site>.l.root
                let rest = rest.strip_suffix(".l.root").ok_or_else(|| err(txt))?;
                let (cc, site) = parse_cc_site(rest)?;
                Ok(mk(&site, None, Some(cc)))
            } else {
                // <site><unit:02>.l.root-servers.org
                let rest = txt
                    .strip_suffix(".l.root-servers.org")
                    .ok_or_else(|| err(txt))?;
                let (site, unit) = split_trailing_unit(rest).ok_or_else(|| err(txt))?;
                if !valid_site(site) {
                    return Err(err(txt));
                }
                Ok(mk(site, Some(unit), None))
            }
        }
        RootLetter::M => {
            // M-<site>-<unit>
            let rest = txt.strip_prefix("M-").ok_or_else(|| err(txt))?;
            let (site, unit) = rest.split_once('-').ok_or_else(|| err(txt))?;
            let unit: u8 = unit.parse().map_err(|_| err(txt))?;
            if !valid_site(site) {
                return Err(err(txt));
            }
            Ok(mk(site, Some(unit), None))
        }
    }
}

/// A fully resolved CHAOS payload, as the batch decoder serves it: the
/// site reference plus its precomputed geolocation and identity string,
/// so per-probe consumers do no further allocation or airport lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedSite {
    /// The decoded site reference.
    pub site: SiteRef,
    /// `site.country()`, resolved once per distinct payload.
    pub country: Option<CountryCode>,
    /// `site.identity()`, rendered once per distinct payload.
    pub identity: String,
}

/// Memoizing batch decoder over CHAOS payloads.
///
/// A monthly round carries thousands of observations but only as many
/// *distinct* `(letter, txt)` payloads as there are active root
/// instances, so decoding (grammar walk, airport lookup, identity
/// rendering) per probe is pure waste. The decoder runs the full decode
/// pipeline once per distinct payload within a batch and serves every
/// repeat from the memo; undecodable payloads memoize as `None`.
#[derive(Debug, Default)]
pub struct BatchDecoder<'a> {
    memo: std::collections::BTreeMap<(RootLetter, &'a str), Option<DecodedSite>>,
}

impl<'a> BatchDecoder<'a> {
    /// An empty decoder; the memo lives as long as the batch it borrows
    /// payloads from.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode `(letter, txt)`, serving repeats from the memo. `None`
    /// means the payload is unmappable (decode failure).
    pub fn decode(&mut self, letter: RootLetter, txt: &'a str) -> Option<&DecodedSite> {
        self.memo
            .entry((letter, txt))
            .or_insert_with(|| {
                decode(letter, txt).ok().map(|site| DecodedSite {
                    country: site.country(),
                    identity: site.identity(),
                    site,
                })
            })
            .as_ref()
    }

    /// How many distinct payloads have been decoded (including
    /// unmappable ones) — the number of grammar walks actually run.
    pub fn unique_payloads(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::{country, GeoPoint, MonthStamp};

    fn instance(
        letter: RootLetter,
        site: &str,
        unit: u8,
        cc: CountryCode,
        year: i32,
    ) -> RootInstance {
        RootInstance {
            letter,
            site: site.into(),
            unit,
            country: cc,
            location: GeoPoint::new(0.0, 0.0),
            active_since: MonthStamp::new(year, 1),
            active_until: None,
            global: false,
        }
    }

    #[test]
    fn paper_quoted_strings_decode() {
        // §5.4 quotes three concrete identities.
        let l_old = decode(RootLetter::L, "ccs01.l.root-servers.org").unwrap();
        assert_eq!(l_old.site, "ccs");
        assert_eq!(l_old.unit, Some(1));
        assert_eq!(l_old.country(), Some(country::VE));

        let f = decode(RootLetter::F, "ccs1a.f.root-servers.org").unwrap();
        assert_eq!(f.site, "ccs");
        assert_eq!(f.country(), Some(country::VE));

        let l_new = decode(RootLetter::L, "aa.ve-mai.l.root").unwrap();
        assert_eq!(l_new.site, "mai");
        assert_eq!(l_new.country_hint, Some(country::VE));
        assert_eq!(
            l_new.country(),
            Some(country::VE),
            "hint beats airport table"
        );
    }

    #[test]
    fn encode_decode_roundtrip_all_letters() {
        for letter in RootLetter::ALL {
            for (site, cc) in [
                ("ccs", country::VE),
                ("bog", country::CO),
                ("gru", country::BR),
            ] {
                for year in [2016, 2021] {
                    let inst = instance(letter, site, 2, cc, year);
                    let txt = encode(&inst);
                    let decoded = decode(letter, &txt)
                        .unwrap_or_else(|e| panic!("letter {letter} txt {txt}: {e}"));
                    assert_eq!(decoded.site, site, "letter {letter} txt {txt}");
                    // Letters with embedded country hints must resolve to
                    // the instance's own country even for odd sites.
                    assert_eq!(decoded.country(), Some(cc), "letter {letter} txt {txt}");
                }
            }
        }
    }

    #[test]
    fn l_root_era_switch() {
        let old = instance(RootLetter::L, "ccs", 1, country::VE, 2016);
        assert_eq!(encode(&old), "ccs01.l.root-servers.org");
        let new = instance(RootLetter::L, "mai", 1, country::VE, 2019);
        assert_eq!(encode(&new), "aa.ve-mai.l.root");
    }

    #[test]
    fn unit_numbers_preserved() {
        let inst = instance(RootLetter::C, "mia", 3, country::US, 2016);
        let txt = encode(&inst);
        assert_eq!(txt, "mia3b.c.root-servers.org");
        assert_eq!(decode(RootLetter::C, &txt).unwrap().unit, Some(3));
        assert_eq!(decode(RootLetter::C, &txt).unwrap().identity(), "c/mia/3");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for letter in RootLetter::ALL {
            assert!(decode(letter, "").is_err(), "{letter}: empty");
            assert!(
                decode(letter, "completely-unrelated-string-1234").is_err(),
                "{letter}"
            );
            assert!(decode(letter, "...").is_err(), "{letter}");
        }
        // Wrong-letter shapes must not decode.
        assert!(decode(RootLetter::F, "ccs01.l.root-servers.org").is_err());
    }

    #[test]
    fn batch_decoder_memoizes_distinct_payloads() {
        let mut batch = BatchDecoder::new();
        let txt = "ccs01.l.root-servers.org";
        let first = batch.decode(RootLetter::L, txt).unwrap().clone();
        let reference = decode(RootLetter::L, txt).unwrap();
        assert_eq!(first.site, reference);
        assert_eq!(first.country, reference.country());
        assert_eq!(first.identity, reference.identity());
        // Repeats and failures are served from the memo.
        for _ in 0..10 {
            assert_eq!(batch.decode(RootLetter::L, txt), Some(&first));
            assert!(batch.decode(RootLetter::L, "garbage").is_none());
        }
        assert_eq!(batch.unique_payloads(), 2);
        assert!(decode(RootLetter::L, "ccs1a.f.root-servers.org").is_err());
        // Bad country hint.
        assert!(decode(RootLetter::L, "aa.v1-mai.l.root").is_err());
        // Unit overflow.
        assert!(decode(RootLetter::B, "b25-ccs").is_ok());
        assert!(decode(RootLetter::B, "b99999-ccs").is_err());
    }

    #[test]
    fn unknown_site_resolves_to_no_country() {
        let r = decode(RootLetter::F, "xyz1a.f.root-servers.org").unwrap();
        assert_eq!(r.site, "xyz");
        assert_eq!(r.country(), None);
    }

    #[test]
    fn identity_matches_instance_identity() {
        let inst = instance(RootLetter::F, "ccs", 1, country::VE, 2016);
        let decoded = decode(RootLetter::F, &encode(&inst)).unwrap();
        assert_eq!(decoded.identity(), inst.identity());
    }
}
