//! Root DNS letters, instances, and deployments over time.

use lacnet_types::{CountryCode, Error, GeoPoint, MonthStamp, Result};
use std::fmt;

/// The thirteen root-server letters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum RootLetter {
    A,
    B,
    C,
    D,
    E,
    F,
    G,
    H,
    I,
    J,
    K,
    L,
    M,
}

impl RootLetter {
    /// All thirteen letters, in order.
    pub const ALL: [RootLetter; 13] = [
        RootLetter::A,
        RootLetter::B,
        RootLetter::C,
        RootLetter::D,
        RootLetter::E,
        RootLetter::F,
        RootLetter::G,
        RootLetter::H,
        RootLetter::I,
        RootLetter::J,
        RootLetter::K,
        RootLetter::L,
        RootLetter::M,
    ];

    /// Lowercase letter, as used in hostnames.
    pub const fn as_char(self) -> char {
        match self {
            RootLetter::A => 'a',
            RootLetter::B => 'b',
            RootLetter::C => 'c',
            RootLetter::D => 'd',
            RootLetter::E => 'e',
            RootLetter::F => 'f',
            RootLetter::G => 'g',
            RootLetter::H => 'h',
            RootLetter::I => 'i',
            RootLetter::J => 'j',
            RootLetter::K => 'k',
            RootLetter::L => 'l',
            RootLetter::M => 'm',
        }
    }

    /// Parse from a (case-insensitive) letter.
    pub fn from_char(c: char) -> Result<Self> {
        match c.to_ascii_lowercase() {
            'a' => Ok(RootLetter::A),
            'b' => Ok(RootLetter::B),
            'c' => Ok(RootLetter::C),
            'd' => Ok(RootLetter::D),
            'e' => Ok(RootLetter::E),
            'f' => Ok(RootLetter::F),
            'g' => Ok(RootLetter::G),
            'h' => Ok(RootLetter::H),
            'i' => Ok(RootLetter::I),
            'j' => Ok(RootLetter::J),
            'k' => Ok(RootLetter::K),
            'l' => Ok(RootLetter::L),
            'm' => Ok(RootLetter::M),
            _ => Err(Error::invalid("root letter must be a..=m")),
        }
    }

    /// The operator of this letter (informational).
    pub const fn operator(self) -> &'static str {
        match self {
            RootLetter::A => "Verisign",
            RootLetter::B => "USC-ISI",
            RootLetter::C => "Cogent",
            RootLetter::D => "University of Maryland",
            RootLetter::E => "NASA Ames",
            RootLetter::F => "Internet Systems Consortium",
            RootLetter::G => "DISA",
            RootLetter::H => "US Army Research Lab",
            RootLetter::I => "Netnod",
            RootLetter::J => "Verisign",
            RootLetter::K => "RIPE NCC",
            RootLetter::L => "ICANN",
            RootLetter::M => "WIDE Project",
        }
    }
}

impl fmt::Display for RootLetter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_char())
    }
}

/// One anycast instance of a root letter at a specific site.
#[derive(Debug, Clone, PartialEq)]
pub struct RootInstance {
    /// The letter served.
    pub letter: RootLetter,
    /// IATA-style site code embedded in the instance's CHAOS identity
    /// (lowercase, e.g. `"ccs"`, `"mar"`, `"bog"`).
    pub site: String,
    /// Site sequence number (distinguishes multiple servers at a site).
    pub unit: u8,
    /// Country hosting the instance.
    pub country: CountryCode,
    /// Instance coordinates.
    pub location: GeoPoint,
    /// First month in service.
    pub active_since: MonthStamp,
    /// Last month in service, inclusive (`None` = still active).
    pub active_until: Option<MonthStamp>,
    /// Whether the instance announces globally or is a *local node* only
    /// visible to the hosting country (the common +Raíces configuration).
    pub global: bool,
}

impl RootInstance {
    /// Whether the instance served queries during `month`.
    pub fn active_in(&self, month: MonthStamp) -> bool {
        month >= self.active_since && self.active_until.is_none_or(|u| month <= u)
    }

    /// Stable site identity string `letter/site/unit`, used as a unique
    /// replica key when counting (matches how the study counts "unique
    /// CHAOS TXT strings").
    pub fn identity(&self) -> String {
        format!("{}/{}/{}", self.letter, self.site, self.unit)
    }
}

/// The time-varying set of root instances worldwide.
#[derive(Debug, Clone, Default)]
pub struct RootDeployment {
    instances: Vec<RootInstance>,
}

impl RootDeployment {
    /// An empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an instance.
    pub fn add(&mut self, instance: RootInstance) {
        self.instances.push(instance);
    }

    /// All instances ever deployed.
    pub fn all(&self) -> &[RootInstance] {
        &self.instances
    }

    /// Instances of `letter` active in `month`.
    pub fn active(&self, letter: RootLetter, month: MonthStamp) -> Vec<&RootInstance> {
        self.instances
            .iter()
            .filter(|i| i.letter == letter && i.active_in(month))
            .collect()
    }

    /// All instances active in `month`, any letter.
    pub fn active_any(&self, month: MonthStamp) -> Vec<&RootInstance> {
        self.instances
            .iter()
            .filter(|i| i.active_in(month))
            .collect()
    }

    /// Instances active in `month` hosted by `country`.
    pub fn active_in_country(&self, month: MonthStamp, country: CountryCode) -> Vec<&RootInstance> {
        self.active_any(month)
            .into_iter()
            .filter(|i| i.country == country)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    pub(crate) fn inst(
        letter: RootLetter,
        site: &str,
        cc: CountryCode,
        since: MonthStamp,
        until: Option<MonthStamp>,
    ) -> RootInstance {
        RootInstance {
            letter,
            site: site.into(),
            unit: 1,
            country: cc,
            location: GeoPoint::new(0.0, 0.0),
            active_since: since,
            active_until: until,
            global: false,
        }
    }

    #[test]
    fn letters_roundtrip() {
        for l in RootLetter::ALL {
            assert_eq!(RootLetter::from_char(l.as_char()).unwrap(), l);
            assert_eq!(
                RootLetter::from_char(l.as_char().to_ascii_uppercase()).unwrap(),
                l
            );
            assert!(!l.operator().is_empty());
        }
        assert!(RootLetter::from_char('z').is_err());
        assert_eq!(RootLetter::ALL.len(), 13);
    }

    #[test]
    fn instance_identity_and_window() {
        let i = inst(
            RootLetter::L,
            "ccs",
            country::VE,
            m(2016, 1),
            Some(m(2019, 6)),
        );
        assert_eq!(i.identity(), "l/ccs/1");
        assert!(i.active_in(m(2016, 1)));
        assert!(i.active_in(m(2019, 6)));
        assert!(!i.active_in(m(2019, 7)));
    }

    #[test]
    fn deployment_queries() {
        let mut d = RootDeployment::new();
        d.add(inst(
            RootLetter::L,
            "ccs",
            country::VE,
            m(2016, 1),
            Some(m(2019, 6)),
        ));
        d.add(inst(
            RootLetter::F,
            "ccs",
            country::VE,
            m(2016, 1),
            Some(m(2018, 3)),
        ));
        d.add(inst(
            RootLetter::L,
            "mar",
            country::VE,
            m(2019, 8),
            Some(m(2021, 2)),
        ));
        d.add(inst(RootLetter::L, "bog", country::CO, m(2016, 1), None));

        assert_eq!(d.active(RootLetter::L, m(2016, 6)).len(), 2);
        assert_eq!(d.active_in_country(m(2016, 6), country::VE).len(), 2);
        // The paper's regression: by 2022 nothing remains in VE.
        assert_eq!(d.active_in_country(m(2022, 1), country::VE).len(), 0);
        assert_eq!(d.active_in_country(m(2022, 1), country::CO).len(), 1);
        assert_eq!(d.active_any(m(2020, 1)).len(), 2);
    }
}
