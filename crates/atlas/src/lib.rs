//! # lacnet-atlas
//!
//! A RIPE-Atlas-shaped measurement substrate: a probe registry, an anycast
//! catchment model, per-root-letter CHAOS TXT naming grammars, and the two
//! built-in campaigns the study consumes:
//!
//! * **CHAOS TXT to all 13 root letters** (§3.1, §5.4, Appendices E/F):
//!   every 30 minutes on the real platform; here, monthly snapshots that
//!   decode instance identifiers to airport codes and countries, yielding
//!   the root-replica counts of Fig. 6, the origin heatmap of Fig. 16 and
//!   the probe-coverage series of Fig. 17.
//! * **Traceroutes to Google Public DNS** (MSM 1591146; §3.3, §7.2,
//!   Appendix J): monthly min-RTT per probe over a geographic latency
//!   model, yielding the country-median RTT series of Fig. 12 and the
//!   probe map of Fig. 20.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anycast;
pub mod campaign;
pub mod chaos;
pub mod gpdns;
pub mod outages;
pub mod probes;
pub mod roots;
pub mod traceroute;

pub use anycast::{AnycastFleet, AnycastSite, SiteScope};
pub use campaign::{ChaosCampaign, ChaosObservation};
pub use chaos::{decode, encode, SiteRef};
pub use gpdns::{GpdnsCampaign, GpdnsSite, LatencyModel, RttBucket, RttObservation};
pub use outages::{DetectorConfig, OutageEvent, ReachabilitySeries};
pub use probes::{Probe, ProbeId, ProbeRegistry};
pub use roots::{RootDeployment, RootInstance, RootLetter};
pub use traceroute::{Hop, Traceroute};
