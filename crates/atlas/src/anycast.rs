//! Anycast catchment: which instance a probe's queries land on.
//!
//! Root letters and Google Public DNS are reached over IP anycast, so
//! "which replica answers" is decided by BGP, not geography alone. The
//! model captures the two effects the paper's data shows:
//!
//! * **Scope** — many hosted replicas (the +Raíces style local nodes) are
//!   announced with `NO_EXPORT`-like scoping and serve only the hosting
//!   country; global nodes serve anyone.
//! * **Egress detours** — a probe whose upstream hauls international
//!   traffic through a remote gateway (Venezuelan networks transiting via
//!   Miami) reaches every *foreign* site through that gateway, which is
//!   why border probes on non-CANTV networks see Bogotá at <10 ms while
//!   Caracas probes see 36 ms (Fig. 20 / Appendix J).

use crate::probes::Probe;
use lacnet_types::{CountryCode, GeoPoint};

/// Announcement scope of an anycast site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteScope {
    /// Globally announced: any probe may be caught.
    Global,
    /// Announced only within the hosting country.
    Domestic(CountryCode),
}

/// One anycast site.
#[derive(Debug, Clone, PartialEq)]
pub struct AnycastSite {
    /// Stable identifier (for roots, the `letter/site/unit` identity).
    pub id: String,
    /// Site coordinates.
    pub location: GeoPoint,
    /// Announcement scope.
    pub scope: SiteScope,
}

impl AnycastSite {
    /// Whether `probe` can be caught by this site at all.
    pub fn visible_to(&self, probe: &Probe) -> bool {
        match self.scope {
            SiteScope::Global => true,
            SiteScope::Domestic(cc) => cc == probe.country,
        }
    }

    /// The path length in km the probe's packets travel to this site,
    /// honouring the probe's forced egress for non-domestic sites.
    pub fn path_km(&self, probe: &Probe) -> f64 {
        let domestic = matches!(self.scope, SiteScope::Domestic(cc) if cc == probe.country);
        match (domestic, probe.egress) {
            // Domestic traffic stays domestic.
            (true, _) | (false, None) => probe.location.distance_km(self.location),
            (false, Some(gw)) => probe.location.distance_km(gw) + gw.distance_km(self.location),
        }
    }
}

/// A set of simultaneously announced sites for one anycast service.
#[derive(Debug, Clone, Default)]
pub struct AnycastFleet {
    sites: Vec<AnycastSite>,
}

impl AnycastFleet {
    /// Build from sites.
    pub fn new(sites: Vec<AnycastSite>) -> Self {
        AnycastFleet { sites }
    }

    /// The sites.
    pub fn sites(&self) -> &[AnycastSite] {
        &self.sites
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The site that catches `probe`: the visible site with the shortest
    /// path, ties broken by site id for determinism. `None` when no site
    /// is visible.
    pub fn catch(&self, probe: &Probe) -> Option<&AnycastSite> {
        self.sites
            .iter()
            .filter(|s| s.visible_to(probe))
            .min_by(|a, b| {
                a.path_km(probe)
                    .partial_cmp(&b.path_km(probe))
                    .expect("path lengths are finite")
                    .then_with(|| a.id.cmp(&b.id))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::{country, geo, Asn, MonthStamp};

    fn probe_at(lat: f64, lon: f64, cc: CountryCode, egress: Option<GeoPoint>) -> Probe {
        Probe {
            id: 1,
            country: cc,
            location: GeoPoint::new(lat, lon),
            asn: Asn(8048),
            active_since: MonthStamp::new(2014, 1),
            active_until: None,
            egress,
        }
    }

    fn site(id: &str, code: &str, scope: SiteScope) -> AnycastSite {
        AnycastSite {
            id: id.into(),
            location: geo::airport(code).unwrap().location,
            scope,
        }
    }

    #[test]
    fn nearest_global_site_wins_without_detour() {
        let fleet = AnycastFleet::new(vec![
            site("bog", "bog", SiteScope::Global),
            site("mia", "mia", SiteScope::Global),
        ]);
        // Probe in western Venezuela, no forced egress: Bogotá is closer.
        let p = probe_at(8.6, -71.2, country::VE, None);
        assert_eq!(fleet.catch(&p).unwrap().id, "bog");
    }

    #[test]
    fn egress_detour_changes_catchment() {
        let fleet = AnycastFleet::new(vec![
            site("bog", "bog", SiteScope::Global),
            site("mia", "mia", SiteScope::Global),
        ]);
        // Same probe, but its transit hauls everything through Miami:
        // Miami now wins (zero extra hop from the gateway).
        let p = probe_at(
            8.6,
            -71.2,
            country::VE,
            Some(geo::airport("mia").unwrap().location),
        );
        assert_eq!(fleet.catch(&p).unwrap().id, "mia");
        // And the path via the gateway is much longer than direct Bogotá.
        let bog = &fleet.sites()[0];
        assert!(
            bog.path_km(&p)
                > 2.0
                    * geo::airport("bog")
                        .unwrap()
                        .location
                        .distance_km(p.location)
        );
    }

    #[test]
    fn domestic_scope_restricts_visibility() {
        let fleet = AnycastFleet::new(vec![
            site("ccs-local", "ccs", SiteScope::Domestic(country::VE)),
            site("mia", "mia", SiteScope::Global),
        ]);
        let ve = probe_at(10.5, -66.9, country::VE, None);
        assert_eq!(fleet.catch(&ve).unwrap().id, "ccs-local");
        let br = probe_at(-23.5, -46.6, country::BR, None);
        assert_eq!(
            fleet.catch(&br).unwrap().id,
            "mia",
            "domestic VE node invisible abroad"
        );
    }

    #[test]
    fn domestic_site_ignores_egress_detour() {
        // Local traffic must not take the international gateway.
        let fleet = AnycastFleet::new(vec![site(
            "ccs-local",
            "ccs",
            SiteScope::Domestic(country::VE),
        )]);
        let p = probe_at(
            10.5,
            -66.9,
            country::VE,
            Some(geo::airport("mia").unwrap().location),
        );
        let s = fleet.catch(&p).unwrap();
        assert!(
            s.path_km(&p) < 50.0,
            "domestic path stays short, got {}",
            s.path_km(&p)
        );
    }

    #[test]
    fn empty_or_invisible_fleet_catches_nothing() {
        let fleet = AnycastFleet::new(vec![]);
        let p = probe_at(10.5, -66.9, country::VE, None);
        assert!(fleet.catch(&p).is_none());
        let fleet = AnycastFleet::new(vec![site("scl", "scl", SiteScope::Domestic(country::CL))]);
        assert!(fleet.catch(&p).is_none());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let a = site("aaa", "mia", SiteScope::Global);
        let b = site("bbb", "mia", SiteScope::Global);
        let fleet = AnycastFleet::new(vec![b, a]);
        let p = probe_at(10.5, -66.9, country::VE, None);
        assert_eq!(fleet.catch(&p).unwrap().id, "aaa");
    }
}
