//! Hop-by-hop traceroute simulation and its archive format.
//!
//! The GPDNS campaign (MSM 1591146) is a *traceroute* measurement; the
//! study uses only the destination RTT, but the raw archive carries full
//! hop lists. This module produces those: a probe's path to an anycast
//! site expands into last-mile, per-AS transit, optional egress-gateway,
//! and destination hops, each with a plausible cumulative RTT. A
//! tab-separated archive format round-trips the records.

use crate::anycast::AnycastSite;
use crate::gpdns::LatencyModel;
use crate::probes::{Probe, ProbeId};
use lacnet_types::rng::Rng;
use lacnet_types::{Asn, Error, MonthStamp, Result};
use std::str::FromStr;

/// One traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hop {
    /// Hop index, 1-based.
    pub hop: u8,
    /// AS owning the responding router, when known (`None` renders as
    /// `*`, a non-responding hop).
    pub asn: Option<Asn>,
    /// RTT to this hop, ms.
    pub rtt_ms: f64,
}

/// One traceroute result.
#[derive(Debug, Clone, PartialEq)]
pub struct Traceroute {
    /// Probe that ran the measurement.
    pub probe: ProbeId,
    /// Measurement month.
    pub month: MonthStamp,
    /// Destination label (site id for anycast targets).
    pub target: String,
    /// The hops, in order.
    pub hops: Vec<Hop>,
    /// Whether the destination answered.
    pub dst_reached: bool,
}

impl Traceroute {
    /// The destination RTT, if reached.
    pub fn dst_rtt_ms(&self) -> Option<f64> {
        if self.dst_reached {
            self.hops.last().map(|h| h.rtt_ms)
        } else {
            None
        }
    }

    /// Serialise as archive text: a header line
    /// `probe<TAB>month<TAB>target<TAB>reached` followed by one
    /// `hop<TAB>asn|*<TAB>rtt` line per hop and a blank terminator.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "{}\t{}\t{}\t{}\n",
            self.probe,
            self.month,
            self.target,
            if self.dst_reached {
                "reached"
            } else {
                "incomplete"
            }
        );
        for h in &self.hops {
            let asn = h
                .asn
                .map(|a| a.raw().to_string())
                .unwrap_or_else(|| "*".into());
            out.push_str(&format!("{}\t{}\t{:.2}\n", h.hop, asn, h.rtt_ms));
        }
        out.push('\n');
        out
    }
}

/// Parse one or more traceroutes from archive text.
pub fn parse_traceroutes(text: &str) -> Result<Vec<Traceroute>> {
    let mut out = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(header) = lines.next() {
        let header = header.trim();
        if header.is_empty() {
            continue;
        }
        let cols: Vec<&str> = header.split('\t').collect();
        if cols.len() != 4 {
            return Err(Error::parse("traceroute header (4 columns)", header));
        }
        let probe: ProbeId = cols[0]
            .parse()
            .map_err(|_| Error::parse("probe id", header))?;
        let month: MonthStamp = cols[1].parse()?;
        let target = cols[2].to_owned();
        let dst_reached = match cols[3] {
            "reached" => true,
            "incomplete" => false,
            other => return Err(Error::parse("reached|incomplete", other)),
        };
        let mut hops = Vec::new();
        for line in lines.by_ref() {
            let line = line.trim();
            if line.is_empty() {
                break;
            }
            let h: Hop = line.parse()?;
            hops.push(h);
        }
        out.push(Traceroute {
            probe,
            month,
            target,
            hops,
            dst_reached,
        });
    }
    Ok(out)
}

impl FromStr for Hop {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        let cols: Vec<&str> = s.split('\t').collect();
        if cols.len() != 3 {
            return Err(Error::parse("hop line (3 columns)", s));
        }
        let hop: u8 = cols[0].parse().map_err(|_| Error::parse("hop index", s))?;
        let asn = if cols[1] == "*" {
            None
        } else {
            Some(Asn(cols[1]
                .parse()
                .map_err(|_| Error::parse("hop asn", s))?))
        };
        let rtt_ms: f64 = cols[2].parse().map_err(|_| Error::parse("hop rtt", s))?;
        Ok(Hop { hop, asn, rtt_ms })
    }
}

/// Simulate one traceroute from `probe` to `site`, expanding the AS path
/// into hops. `as_path` runs probe-side first (the probe's own AS) and
/// ends with the AS that hosts the destination. Per-hop RTTs are
/// monotone non-decreasing up to jitter; a small loss probability leaves
/// non-responding (`*`) hops.
pub fn simulate(
    probe: &Probe,
    site: &AnycastSite,
    model: &LatencyModel,
    as_path: &[Asn],
    month: MonthStamp,
    rng: &mut Rng,
) -> Traceroute {
    let total = model.base_rtt_ms(probe, site)
        + model.congestion_median_ms * rng.log_normal(0.0, model.congestion_sigma);
    // Hop budget: the last mile plus 2 hops per transit AS.
    let n_as = as_path.len().max(1);
    let mut hops = Vec::new();
    let mut idx = 1u8;
    // Last-mile hop inside the probe's AS.
    hops.push(Hop {
        hop: idx,
        asn: as_path.first().copied(),
        rtt_ms: model.last_mile_ms * (0.4 + 0.4 * rng.f64()),
    });
    idx += 1;
    // Transit hops: split the remaining propagation budget across the
    // path, front-loaded toward the destination side when an egress
    // detour exists (the long haul is the first inter-AS link).
    let remaining = (total - hops[0].rtt_ms).max(0.5);
    let inter = n_as.max(2) - 1;
    for (k, asn) in as_path.iter().enumerate().skip(1) {
        let frac = (k as f64) / inter as f64;
        // Two router hops per AS: entry and exit.
        for sub in 0..2 {
            let progress =
                (frac - 0.5 / inter as f64 + sub as f64 * 0.25 / inter as f64).clamp(0.05, 1.0);
            let rtt = hops[0].rtt_ms + remaining * progress * (0.95 + 0.1 * rng.f64());
            let responds = rng.f64() > 0.06;
            hops.push(Hop {
                hop: idx,
                asn: responds.then_some(*asn),
                rtt_ms: rtt,
            });
            idx += 1;
        }
    }
    // Destination hop at the full RTT.
    let dst_reached = rng.f64() > 0.02;
    if dst_reached {
        hops.push(Hop {
            hop: idx,
            asn: as_path.last().copied(),
            rtt_ms: total,
        });
    }
    Traceroute {
        probe: probe.id,
        month,
        target: site.id.clone(),
        hops,
        dst_reached,
    }
}

/// Convenience AS path for a GPDNS-style destination: the probe's AS, a
/// transit AS per thousand km of path (capped), and Google's AS15169.
pub fn gpdns_path(probe: &Probe, site: &AnycastSite, transits: &[Asn]) -> Vec<Asn> {
    let km = site.path_km(probe);
    let n = ((km / 1500.0).ceil() as usize).clamp(1, transits.len().max(1));
    let mut path = vec![probe.asn];
    path.extend(transits.iter().take(n).copied());
    path.push(Asn(15169));
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anycast::SiteScope;
    use lacnet_types::geo;
    use lacnet_types::{country, GeoPoint};

    fn probe() -> Probe {
        Probe {
            id: 7,
            country: country::VE,
            location: GeoPoint::new(10.48, -66.90),
            asn: Asn(8048),
            active_since: MonthStamp::new(2014, 1),
            active_until: None,
            egress: Some(geo::airport("mia").unwrap().location),
        }
    }

    fn site() -> AnycastSite {
        AnycastSite {
            id: "mia".into(),
            location: geo::airport("mia").unwrap().location,
            scope: SiteScope::Global,
        }
    }

    #[test]
    fn simulated_traceroute_shape() {
        let p = probe();
        let s = site();
        let model = LatencyModel::default();
        let path = gpdns_path(&p, &s, &[Asn(23520), Asn(6762)]);
        assert_eq!(path[0], Asn(8048));
        assert_eq!(*path.last().unwrap(), Asn(15169));
        let mut rng = Rng::seeded(5);
        let tr = simulate(&p, &s, &model, &path, MonthStamp::new(2020, 6), &mut rng);
        assert!(tr.hops.len() >= 3);
        assert_eq!(tr.hops[0].hop, 1);
        // Hop indices strictly increase.
        assert!(tr.hops.windows(2).all(|w| w[1].hop == w[0].hop + 1));
        if tr.dst_reached {
            let dst = tr.dst_rtt_ms().unwrap();
            assert!(dst >= model.base_rtt_ms(&p, &s), "dst RTT under the floor");
            // RTTs never decrease by more than jitter.
            assert!(tr.hops.windows(2).all(|w| w[1].rtt_ms >= w[0].rtt_ms * 0.8));
        }
    }

    #[test]
    fn destination_rtt_matches_model_scale() {
        let p = probe();
        let s = site();
        let model = LatencyModel::default();
        let path = gpdns_path(&p, &s, &[Asn(23520)]);
        let mut rng = Rng::seeded(11);
        let mut min = f64::INFINITY;
        for _ in 0..50 {
            let tr = simulate(&p, &s, &model, &path, MonthStamp::new(2020, 6), &mut rng);
            if let Some(d) = tr.dst_rtt_ms() {
                min = min.min(d);
            }
        }
        // Caracas→Miami via the model ≈ 34 ms floor.
        let base = model.base_rtt_ms(&p, &s);
        assert!((min - base).abs() < 3.0, "min {min} vs base {base}");
    }

    #[test]
    fn archive_roundtrip() {
        let p = probe();
        let s = site();
        let model = LatencyModel::default();
        let path = gpdns_path(&p, &s, &[Asn(23520), Asn(6762)]);
        let mut rng = Rng::seeded(3);
        let mut text = String::new();
        let mut originals = Vec::new();
        for _ in 0..5 {
            let tr = simulate(&p, &s, &model, &path, MonthStamp::new(2020, 6), &mut rng);
            text.push_str(&tr.to_text());
            originals.push(tr);
        }
        let parsed = parse_traceroutes(&text).expect("own output parses");
        assert_eq!(parsed.len(), originals.len());
        for (a, b) in parsed.iter().zip(&originals) {
            assert_eq!(a.probe, b.probe);
            assert_eq!(a.hops.len(), b.hops.len());
            assert_eq!(a.dst_reached, b.dst_reached);
            for (ha, hb) in a.hops.iter().zip(&b.hops) {
                assert_eq!(ha.asn, hb.asn);
                assert!((ha.rtt_ms - hb.rtt_ms).abs() < 0.01);
            }
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(
            parse_traceroutes("7\t2020-06\tmia\n").is_err(),
            "missing column"
        );
        assert!(parse_traceroutes("7\t2020-06\tmia\tmaybe\n").is_err());
        assert!(parse_traceroutes("7\t2020-06\tmia\treached\nbogus hop\n").is_err());
        assert!(parse_traceroutes("").unwrap().is_empty());
    }

    #[test]
    fn gpdns_path_scales_with_distance() {
        let p = probe();
        let near = AnycastSite {
            id: "bog".into(),
            location: geo::airport("bog").unwrap().location,
            scope: SiteScope::Global,
        };
        let transits = [Asn(23520), Asn(6762), Asn(3356), Asn(1299)];
        let far_path = gpdns_path(&p, &site(), &transits);
        let mut direct = p.clone();
        direct.egress = None;
        let near_path = gpdns_path(&direct, &near, &transits);
        assert!(far_path.len() >= near_path.len());
    }
}
