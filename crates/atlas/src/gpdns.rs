//! The Google Public DNS traceroute campaign (MSM 1591146 stand-in).
//!
//! Each month, every active probe traceroutes 8.8.8.8 repeatedly inside a
//! five-day window; the analysis keeps the per-probe *minimum* RTT to
//! strip diurnal congestion (§7.2). The latency model is geographric:
//! propagation over the anycast path (including any forced egress detour),
//! a per-probe last-mile access delay, and log-normal congestion noise
//! that the min() mostly removes.

use crate::anycast::{AnycastFleet, AnycastSite, SiteScope};
use crate::probes::{Probe, ProbeId, ProbeRegistry};
use lacnet_types::rng::Rng;
use lacnet_types::stats;
use lacnet_types::{geo, sweep, CountryCode, GeoPoint, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// One Google Public DNS point of presence.
#[derive(Debug, Clone, PartialEq)]
pub struct GpdnsSite {
    /// Site identifier (airport-style).
    pub id: String,
    /// Coordinates.
    pub location: GeoPoint,
    /// First month in service.
    pub active_since: MonthStamp,
    /// Last month in service, inclusive (`None` = still active).
    pub active_until: Option<MonthStamp>,
}

impl GpdnsSite {
    /// Whether the site answered queries in `month`.
    pub fn active_in(&self, month: MonthStamp) -> bool {
        month >= self.active_since && self.active_until.is_none_or(|u| month <= u)
    }
}

/// Tunable latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fibre path stretch over the great circle.
    pub stretch: f64,
    /// Mean last-mile access delay added per probe, ms.
    pub last_mile_ms: f64,
    /// Sigma of the log-normal congestion term (underlying normal).
    pub congestion_sigma: f64,
    /// Median of the congestion term, ms.
    pub congestion_median_ms: f64,
    /// Traceroutes per probe per monthly window; the minimum is kept.
    pub samples: usize,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            stretch: geo::DEFAULT_PATH_STRETCH,
            last_mile_ms: 4.0,
            congestion_sigma: 1.0,
            congestion_median_ms: 2.0,
            samples: 24,
        }
    }
}

impl LatencyModel {
    /// The deterministic floor RTT for `probe` hitting `site` (no noise):
    /// round-trip propagation plus the last mile.
    pub fn base_rtt_ms(&self, probe: &Probe, site: &AnycastSite) -> f64 {
        let km = site.path_km(probe);
        2.0 * km * self.stretch / geo::FIBER_KM_PER_MS + self.last_mile_ms
    }

    /// One noisy traceroute sample.
    fn sample_rtt_ms(&self, base: f64, rng: &mut Rng) -> f64 {
        base + self.congestion_median_ms * rng.log_normal(0.0, self.congestion_sigma)
    }

    /// The monthly min-RTT as the campaign records it.
    pub fn monthly_min_rtt(&self, probe: &Probe, site: &AnycastSite, rng: &mut Rng) -> f64 {
        let base = self.base_rtt_ms(probe, site);
        (0..self.samples.max(1))
            .map(|_| self.sample_rtt_ms(base, rng))
            .fold(f64::INFINITY, f64::min)
    }
}

/// One per-probe monthly record.
#[derive(Debug, Clone, PartialEq)]
pub struct RttObservation {
    /// Month of the window.
    pub month: MonthStamp,
    /// Probe id.
    pub probe: ProbeId,
    /// Probe country.
    pub probe_country: CountryCode,
    /// Location of the probe (kept for the Fig. 20 map).
    pub location: GeoPoint,
    /// Minimum RTT observed in the window, ms.
    pub rtt_ms: f64,
    /// Which site caught the probe.
    pub site_id: String,
}

/// The campaign driver.
pub struct GpdnsCampaign<'a> {
    probes: &'a ProbeRegistry,
    sites: &'a [GpdnsSite],
    model: LatencyModel,
    seed: u64,
}

impl<'a> GpdnsCampaign<'a> {
    /// Create a campaign over probes and the GPDNS site deployment.
    pub fn new(
        probes: &'a ProbeRegistry,
        sites: &'a [GpdnsSite],
        model: LatencyModel,
        seed: u64,
    ) -> Self {
        GpdnsCampaign {
            probes,
            sites,
            model,
            seed,
        }
    }

    fn fleet_for(&self, month: MonthStamp) -> AnycastFleet {
        AnycastFleet::new(
            self.sites
                .iter()
                .filter(|s| s.active_in(month))
                .map(|s| AnycastSite {
                    id: s.id.clone(),
                    location: s.location,
                    scope: SiteScope::Global,
                })
                .collect(),
        )
    }

    /// Run one monthly window across all active probes.
    pub fn run_month(&self, month: MonthStamp) -> Vec<RttObservation> {
        let fleet = self.fleet_for(month);
        if fleet.is_empty() {
            return Vec::new();
        }
        let root = Rng::seeded(self.seed);
        let mut out = Vec::new();
        for probe in self.probes.active_in(month) {
            let Some(site) = fleet.catch(probe) else {
                continue;
            };
            let mut rng = root.fork(&format!("gpdns/{}/{}", probe.id, month.index()));
            let rtt = self.model.monthly_min_rtt(probe, site, &mut rng);
            out.push(RttObservation {
                month,
                probe: probe.id,
                probe_country: probe.country,
                location: probe.location,
                rtt_ms: rtt,
                site_id: site.id.clone(),
            });
        }
        out
    }

    /// Per-country median min-RTT series over `[start, end]` — the Fig. 12
    /// country lines.
    ///
    /// Months are simulated across worker threads (every probe's RNG is
    /// forked from a per-probe-per-month label, so each month is an
    /// independent deterministic unit) and merged in month order.
    pub fn median_series(
        &self,
        start: MonthStamp,
        end: MonthStamp,
    ) -> BTreeMap<CountryCode, TimeSeries> {
        let monthly = sweep::month_range(start, end, |m| {
            let mut by_country: BTreeMap<CountryCode, Vec<f64>> = BTreeMap::new();
            for obs in self.run_month(m) {
                by_country
                    .entry(obs.probe_country)
                    .or_default()
                    .push(obs.rtt_ms);
            }
            by_country
                .into_iter()
                .filter_map(|(cc, mut rtts)| stats::median(&mut rtts).map(|med| (cc, med)))
                .collect::<Vec<_>>()
        });
        let mut out: BTreeMap<CountryCode, TimeSeries> = BTreeMap::new();
        for (m, medians) in monthly {
            for (cc, med) in medians {
                out.entry(cc).or_default().insert(m, med);
            }
        }
        out
    }
}

/// RTT bucket classification used by the Fig. 20 probe map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RttBucket {
    /// Below 10 ms (cyan circles in the paper's map).
    Under10,
    /// 10–20 ms (green circles).
    From10To20,
    /// 20–40 ms (yellow squares).
    From20To40,
    /// Above 40 ms (red diamonds).
    Over40,
}

impl RttBucket {
    /// Classify an RTT.
    pub fn of(rtt_ms: f64) -> Self {
        if rtt_ms < 10.0 {
            RttBucket::Under10
        } else if rtt_ms < 20.0 {
            RttBucket::From10To20
        } else if rtt_ms < 40.0 {
            RttBucket::From20To40
        } else {
            RttBucket::Over40
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::{country, Asn};

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    fn probe(id: u32, cc: CountryCode, lat: f64, lon: f64, egress: Option<&str>) -> Probe {
        Probe {
            id,
            country: cc,
            location: GeoPoint::new(lat, lon),
            asn: Asn(8048),
            active_since: m(2014, 1),
            active_until: None,
            egress: egress.map(|e| geo::airport(e).unwrap().location),
        }
    }

    fn site(code: &str, since: MonthStamp) -> GpdnsSite {
        GpdnsSite {
            id: code.into(),
            location: geo::airport(code).unwrap().location,
            active_since: since,
            active_until: None,
        }
    }

    fn world() -> (ProbeRegistry, Vec<GpdnsSite>) {
        let mut probes = ProbeRegistry::new();
        // Caracas probe behind a Miami-hauling incumbent.
        probes.add(probe(1, country::VE, 10.48, -66.90, Some("mia")));
        // Probe on the Colombian border, direct routing.
        probes.add(probe(2, country::VE, 8.3, -72.4, None));
        // Bogotá probe.
        probes.add(probe(3, country::CO, 4.7, -74.07, None));
        let sites = vec![site("mia", m(2014, 1)), site("bog", m(2016, 1))];
        (probes, sites)
    }

    #[test]
    fn border_probe_beats_caracas_probe() {
        let (probes, sites) = world();
        let campaign = GpdnsCampaign::new(&probes, &sites, LatencyModel::default(), 42);
        let obs = campaign.run_month(m(2020, 1));
        assert_eq!(obs.len(), 3);
        let by_id: BTreeMap<u32, &RttObservation> = obs.iter().map(|o| (o.probe, o)).collect();
        // The border probe reaches Bogotá directly, far faster than the
        // Caracas probe detouring through Miami.
        assert_eq!(by_id[&2].site_id, "bog");
        assert_eq!(by_id[&1].site_id, "mia");
        assert!(by_id[&2].rtt_ms < 16.0, "border: {}", by_id[&2].rtt_ms);
        assert!(
            by_id[&2].rtt_ms < by_id[&1].rtt_ms / 2.0,
            "border must be far faster"
        );
        assert!(by_id[&1].rtt_ms > 30.0, "caracas: {}", by_id[&1].rtt_ms);
        assert!(
            by_id[&3].rtt_ms < 10.0,
            "bogota local: {}",
            by_id[&3].rtt_ms
        );
    }

    #[test]
    fn min_rtt_close_to_base() {
        let (probes, sites) = world();
        let model = LatencyModel::default();
        let campaign = GpdnsCampaign::new(&probes, &sites, model, 42);
        let obs = campaign.run_month(m(2020, 1));
        for o in &obs {
            let p = probes.all().iter().find(|p| p.id == o.probe).unwrap();
            let s = sites.iter().find(|s| s.id == o.site_id).unwrap();
            let base = model.base_rtt_ms(
                p,
                &AnycastSite {
                    id: s.id.clone(),
                    location: s.location,
                    scope: SiteScope::Global,
                },
            );
            assert!(o.rtt_ms >= base, "min cannot undercut the floor");
            assert!(
                o.rtt_ms < base + 3.0,
                "min() should strip most congestion: {} vs {base}",
                o.rtt_ms
            );
        }
    }

    #[test]
    fn determinism_per_seed() {
        let (probes, sites) = world();
        let c1 = GpdnsCampaign::new(&probes, &sites, LatencyModel::default(), 42);
        let c2 = GpdnsCampaign::new(&probes, &sites, LatencyModel::default(), 42);
        assert_eq!(c1.run_month(m(2020, 1)), c2.run_month(m(2020, 1)));
        let c3 = GpdnsCampaign::new(&probes, &sites, LatencyModel::default(), 43);
        let a = c1.run_month(m(2020, 1));
        let b = c3.run_month(m(2020, 1));
        assert!(a.iter().zip(&b).any(|(x, y)| x.rtt_ms != y.rtt_ms));
    }

    #[test]
    fn site_activation_changes_history() {
        let (probes, sites) = world();
        let campaign = GpdnsCampaign::new(&probes, &sites, LatencyModel::default(), 42);
        // In 2015 Bogotá does not exist yet; the border probe goes to Miami.
        let obs = campaign.run_month(m(2015, 1));
        let border = obs.iter().find(|o| o.probe == 2).unwrap();
        assert_eq!(border.site_id, "mia");
        // Median series reflects the improvement for CO after 2016.
        let series = campaign.median_series(m(2015, 1), m(2016, 6));
        let co = &series[&country::CO];
        assert!(co.get(m(2015, 1)).unwrap() > co.get(m(2016, 6)).unwrap());
    }

    #[test]
    fn no_sites_no_observations() {
        let (probes, _) = world();
        let sites: Vec<GpdnsSite> = Vec::new();
        let campaign = GpdnsCampaign::new(&probes, &sites, LatencyModel::default(), 1);
        assert!(campaign.run_month(m(2020, 1)).is_empty());
        assert!(campaign.median_series(m(2020, 1), m(2020, 2)).is_empty());
    }

    #[test]
    fn buckets() {
        assert_eq!(RttBucket::of(5.0), RttBucket::Under10);
        assert_eq!(RttBucket::of(10.0), RttBucket::From10To20);
        assert_eq!(RttBucket::of(19.99), RttBucket::From10To20);
        assert_eq!(RttBucket::of(25.0), RttBucket::From20To40);
        assert_eq!(RttBucket::of(40.0), RttBucket::Over40);
    }
}
