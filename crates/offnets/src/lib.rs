//! # lacnet-offnets
//!
//! Hypergiant off-net detection in the style of Gigis et al. (SIGCOMM'21),
//! whose published artifacts the study reuses (§5.5, Appendix G), plus the
//! two auxiliary datasets the population weighting needs:
//!
//! * an **as2org+**-style AS-to-organisation mapping (deployments are
//!   aggregated at the organisational level to remove per-AS churn);
//! * **APNIC-style per-AS eyeball population estimates** (Table 1,
//!   Figs. 7/10/18/21 all weight by "% of the country's Internet users").
//!
//! The detection method itself: scan TLS certificates served from
//! addresses inside *other* networks; a certificate whose subject or
//! dnsNames belong to a hypergiant, served from an AS that is not the
//! hypergiant's own, reveals an off-net replica.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod as2org;
pub mod certs;
pub mod detect;
pub mod hypergiants;
pub mod population;

pub use as2org::AsOrgMap;
pub use certs::{CertScan, ScanRecord, TlsCert};
pub use detect::{detect_offnets, OffnetHosts};
pub use hypergiants::{Hypergiant, HYPERGIANTS};
pub use population::PopulationEstimates;
