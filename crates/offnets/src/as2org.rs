//! AS-to-organisation mapping (as2org+ style).
//!
//! §5.5: "We consider these eyeball populations at the organizational
//! level, using as2org+, to eliminate fluctuations in deployments across
//! networks belonging to the same organization." The mapping groups
//! sibling ASNs under one organisation id; an off-net detected in any
//! sibling credits the whole organisation's eyeballs.

use lacnet_types::Asn;
use std::collections::BTreeMap;

/// An organisation identifier.
pub type OrgId = u32;

/// The AS → organisation mapping.
#[derive(Debug, Clone, Default)]
pub struct AsOrgMap {
    asn_to_org: BTreeMap<Asn, OrgId>,
    org_names: BTreeMap<OrgId, String>,
}

impl AsOrgMap {
    /// An empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an organisation (idempotent on id).
    pub fn add_org(&mut self, org: OrgId, name: &str) {
        self.org_names.entry(org).or_insert_with(|| name.to_owned());
    }

    /// Assign an ASN to an organisation.
    pub fn assign(&mut self, asn: Asn, org: OrgId) {
        self.asn_to_org.insert(asn, org);
    }

    /// The organisation of `asn`. Unmapped ASNs are treated as singleton
    /// organisations keyed by their own ASN value (the as2org fallback).
    pub fn org_of(&self, asn: Asn) -> OrgId {
        self.asn_to_org.get(&asn).copied().unwrap_or(asn.raw())
    }

    /// Organisation display name, if registered.
    pub fn name_of(&self, org: OrgId) -> Option<&str> {
        self.org_names.get(&org).map(String::as_str)
    }

    /// All ASNs mapped to `org` (explicit assignments only).
    pub fn siblings(&self, org: OrgId) -> Vec<Asn> {
        self.asn_to_org
            .iter()
            .filter(|(_, &o)| o == org)
            .map(|(&a, _)| a)
            .collect()
    }

    /// Whether two ASNs belong to the same organisation.
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        self.org_of(a) == self.org_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_and_fallback_orgs() {
        let mut map = AsOrgMap::new();
        map.add_org(1, "Estado Venezolano");
        map.assign(Asn(8048), 1);
        map.assign(Asn(27889), 1);
        assert_eq!(map.org_of(Asn(8048)), 1);
        assert_eq!(map.org_of(Asn(27889)), 1);
        assert!(map.same_org(Asn(8048), Asn(27889)));
        // Unmapped: singleton org equal to the ASN.
        assert_eq!(map.org_of(Asn(21826)), 21826);
        assert!(!map.same_org(Asn(8048), Asn(21826)));
        assert_eq!(map.name_of(1), Some("Estado Venezolano"));
        assert_eq!(map.name_of(2), None);
        assert_eq!(map.siblings(1), vec![Asn(8048), Asn(27889)]);
        assert!(map.siblings(9).is_empty());
    }

    #[test]
    fn add_org_is_idempotent_on_first_name() {
        let mut map = AsOrgMap::new();
        map.add_org(1, "First");
        map.add_org(1, "Second");
        assert_eq!(map.name_of(1), Some("First"));
    }
}
