//! TLS certificates and scan snapshots.

use lacnet_types::{Asn, CountryCode, MonthStamp, Result};

/// The identity content of one served TLS certificate.
#[derive(Debug, Clone, PartialEq)]
pub struct TlsCert {
    /// Subject common name.
    pub subject_cn: String,
    /// Subject alternative names (dnsNames).
    pub dns_names: Vec<String>,
}

impl TlsCert {
    /// All names the certificate asserts (CN first, then SANs).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.subject_cn.as_str()).chain(self.dns_names.iter().map(String::as_str))
    }
}

/// One scan observation: a certificate served from an address inside an AS.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRecord {
    /// AS hosting the responding address.
    pub asn: Asn,
    /// Country the AS is registered in.
    pub country: CountryCode,
    /// The certificate presented.
    pub cert: TlsCert,
}

/// One scan snapshot (the artifacts are yearly; we key by month for
/// uniformity with every other dataset).
#[derive(Debug, Clone, PartialEq)]
pub struct CertScan {
    /// When the scan ran.
    pub month: MonthStamp,
    /// Every observation.
    pub records: Vec<ScanRecord>,
}

impl CertScan {
    /// An empty scan for `month`.
    pub fn new(month: MonthStamp) -> Self {
        CertScan {
            month,
            records: Vec::new(),
        }
    }

    /// Add an observation.
    pub fn push(&mut self, record: ScanRecord) {
        self.records.push(record);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the scan is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// JSON serialisation (the stand-in for the published artifacts).
    pub fn to_json(&self) -> String {
        lacnet_types::json::to_string(self)
    }

    /// Parse a JSON scan.
    pub fn from_json(text: &str) -> Result<Self> {
        lacnet_types::json::from_str(text)
    }
}

lacnet_types::impl_json_struct!(TlsCert {
    subject_cn,
    dns_names
});
lacnet_types::impl_json_struct!(ScanRecord { asn, country, cert });
lacnet_types::impl_json_struct!(CertScan { month, records });

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    #[test]
    fn cert_names_iterates_cn_and_sans() {
        let cert = TlsCert {
            subject_cn: "cache.google.com".into(),
            dns_names: vec!["*.gstatic.com".into(), "youtube.com".into()],
        };
        let names: Vec<&str> = cert.names().collect();
        assert_eq!(
            names,
            vec!["cache.google.com", "*.gstatic.com", "youtube.com"]
        );
    }

    #[test]
    fn scan_roundtrip() {
        let mut scan = CertScan::new(MonthStamp::new(2019, 1));
        scan.push(ScanRecord {
            asn: Asn(8048),
            country: country::VE,
            cert: TlsCert {
                subject_cn: "cache.google.com".into(),
                dns_names: vec![],
            },
        });
        assert_eq!(scan.len(), 1);
        let back = CertScan::from_json(&scan.to_json()).unwrap();
        assert_eq!(back, scan);
        assert!(CertScan::from_json("{]").is_err());
    }
}
