//! APNIC-style per-AS eyeball population estimates.

use crate::as2org::AsOrgMap;
use lacnet_types::{Asn, CountryCode};
use std::collections::{BTreeMap, BTreeSet};

/// Estimated Internet users per AS, per country.
#[derive(Debug, Clone, Default)]
pub struct PopulationEstimates {
    /// `(country, asn) → users`. An AS can serve users in several
    /// countries (regional carriers), hence the compound key.
    users: BTreeMap<(CountryCode, Asn), u64>,
}

impl PopulationEstimates {
    /// An empty estimate set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the user estimate for an AS in a country.
    pub fn set(&mut self, country: CountryCode, asn: Asn, users: u64) {
        self.users.insert((country, asn), users);
    }

    /// Users of `asn` in `country`.
    pub fn users_of(&self, country: CountryCode, asn: Asn) -> u64 {
        self.users.get(&(country, asn)).copied().unwrap_or(0)
    }

    /// Total estimated users in `country`.
    pub fn country_total(&self, country: CountryCode) -> u64 {
        self.users
            .range((country, Asn(0))..=(country, Asn(u32::MAX)))
            .map(|(_, &u)| u)
            .sum()
    }

    /// All `(asn, users)` pairs in `country`, descending by users.
    pub fn ranked(&self, country: CountryCode) -> Vec<(Asn, u64)> {
        let mut v: Vec<(Asn, u64)> = self
            .users
            .range((country, Asn(0))..=(country, Asn(u32::MAX)))
            .map(|(&(_, a), &u)| (a, u))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Fraction of `country`'s users served by the given ASes, in `[0,1]`.
    pub fn share_of(&self, country: CountryCode, asns: &BTreeSet<Asn>) -> f64 {
        let total = self.country_total(country);
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = asns.iter().map(|&a| self.users_of(country, a)).sum();
        covered as f64 / total as f64
    }

    /// Fraction of `country`'s users whose AS belongs to an organisation
    /// in `orgs` — the org-level weighting of §5.5.
    pub fn org_share_of(
        &self,
        country: CountryCode,
        orgs: &BTreeSet<u32>,
        as2org: &AsOrgMap,
    ) -> f64 {
        let total = self.country_total(country);
        if total == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .users
            .range((country, Asn(0))..=(country, Asn(u32::MAX)))
            .filter(|(&(_, a), _)| orgs.contains(&as2org.org_of(a)))
            .map(|(_, &u)| u)
            .sum();
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    /// Approximate Table 1 shape: CANTV 21.5%, Telemic 12.36%, …
    fn table1_like() -> PopulationEstimates {
        let mut p = PopulationEstimates::new();
        p.set(country::VE, Asn(8048), 4_330_868);
        p.set(country::VE, Asn(21826), 2_490_253);
        p.set(country::VE, Asn(6306), 2_110_464);
        p.set(country::VE, Asn(264731), 1_419_723);
        p.set(country::BR, Asn(28573), 30_000_000);
        p
    }

    #[test]
    fn totals_and_shares() {
        let p = table1_like();
        assert_eq!(p.country_total(country::VE), 10_351_308);
        assert_eq!(p.users_of(country::VE, Asn(8048)), 4_330_868);
        assert_eq!(p.users_of(country::BR, Asn(8048)), 0);
        let share = p.share_of(country::VE, &BTreeSet::from([Asn(8048)]));
        assert!((share - 0.4184).abs() < 0.001, "{share}");
        assert_eq!(p.share_of(country::US, &BTreeSet::from([Asn(8048)])), 0.0);
    }

    #[test]
    fn ranking_descends() {
        let p = table1_like();
        let ranked = p.ranked(country::VE);
        assert_eq!(ranked[0].0, Asn(8048));
        assert_eq!(ranked[1].0, Asn(21826));
        assert_eq!(ranked.len(), 4);
        assert!(p.ranked(country::CL).is_empty());
    }

    #[test]
    fn org_level_share_counts_siblings() {
        let p = table1_like();
        let mut map = AsOrgMap::new();
        map.add_org(1, "Estado");
        map.assign(Asn(8048), 1);
        map.assign(Asn(264731), 1);
        // Off-net detected only in AS8048's sibling 264731 still credits
        // the whole organisation.
        let orgs = BTreeSet::from([map.org_of(Asn(264731))]);
        let share = p.org_share_of(country::VE, &orgs, &map);
        let expect = (4_330_868 + 1_419_723) as f64 / 10_351_308.0;
        assert!((share - expect).abs() < 1e-9, "{share} vs {expect}");
    }
}
