//! The off-net detection method (Gigis et al.) and its aggregations.

use crate::as2org::AsOrgMap;
use crate::certs::CertScan;
use crate::hypergiants::Hypergiant;
use crate::population::PopulationEstimates;
use lacnet_types::{Asn, CountryCode, MonthStamp, TimeSeries};
use std::collections::BTreeSet;

/// ASes detected hosting a hypergiant's off-net replicas in one scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffnetHosts {
    /// The scan month.
    pub month: MonthStamp,
    /// The hypergiant name.
    pub hypergiant: &'static str,
    /// Host ASes (never the hypergiant's own).
    pub hosts: BTreeSet<Asn>,
}

/// Run the detection over one scan for one hypergiant: a certificate
/// asserting one of the hypergiant's names, served from an AS the
/// hypergiant does not own, marks that AS as an off-net host.
pub fn detect_offnets(scan: &CertScan, hg: &Hypergiant) -> OffnetHosts {
    let mut hosts = BTreeSet::new();
    for rec in &scan.records {
        if hg.owns_asn(rec.asn) {
            continue;
        }
        if rec.cert.names().any(|n| hg.matches_name(n)) {
            hosts.insert(rec.asn);
        }
    }
    OffnetHosts {
        month: scan.month,
        hypergiant: hg.name,
        hosts,
    }
}

/// The Fig. 7/18 metric for one `(hypergiant, country, scan)`: the
/// percentage of the country's Internet users inside organisations
/// hosting that hypergiant's off-nets.
pub fn population_coverage(
    hosts: &OffnetHosts,
    country: CountryCode,
    populations: &PopulationEstimates,
    as2org: &AsOrgMap,
) -> f64 {
    let orgs: BTreeSet<u32> = hosts.hosts.iter().map(|&a| as2org.org_of(a)).collect();
    populations.org_share_of(country, &orgs, as2org) * 100.0
}

/// Coverage time series for one hypergiant and country across scans.
pub fn coverage_series(
    scans: &[CertScan],
    hg: &Hypergiant,
    country: CountryCode,
    populations: &PopulationEstimates,
    as2org: &AsOrgMap,
) -> TimeSeries {
    scans
        .iter()
        .map(|scan| {
            let hosts = detect_offnets(scan, hg);
            (
                scan.month,
                population_coverage(&hosts, country, populations, as2org),
            )
        })
        .collect()
}

/// Mean coverage per country over a scan set, used for the paper's
/// rankings ("Venezuela ranks 19/27 for Google, …").
pub fn mean_coverage_ranking(
    scans: &[CertScan],
    hg: &Hypergiant,
    countries: &[CountryCode],
    populations: &PopulationEstimates,
    as2org: &AsOrgMap,
) -> Vec<(CountryCode, f64)> {
    let mut means: Vec<(CountryCode, f64)> = countries
        .iter()
        .map(|&cc| {
            let s = coverage_series(scans, hg, cc, populations, as2org);
            (cc, s.mean().unwrap_or(0.0))
        })
        .collect();
    means.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("coverage is finite")
            .then(a.0.cmp(&b.0))
    });
    means
}

/// The rank (1-based) of `country` in a ranking produced by
/// [`mean_coverage_ranking`]; `None` if absent.
pub fn rank_of(ranking: &[(CountryCode, f64)], country: CountryCode) -> Option<usize> {
    ranking
        .iter()
        .position(|&(cc, _)| cc == country)
        .map(|i| i + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certs::{ScanRecord, TlsCert};
    use crate::hypergiants::by_name;
    use lacnet_types::country;

    fn cert(cn: &str) -> TlsCert {
        TlsCert {
            subject_cn: cn.into(),
            dns_names: vec![],
        }
    }

    fn scan_2019() -> CertScan {
        let mut scan = CertScan::new(MonthStamp::new(2019, 1));
        // Google cache inside CANTV (off-net).
        scan.push(ScanRecord {
            asn: Asn(8048),
            country: country::VE,
            cert: cert("cache.google.com"),
        });
        // Google serving from its own AS — not an off-net.
        scan.push(ScanRecord {
            asn: Asn(15169),
            country: country::US,
            cert: cert("edge.google.com"),
        });
        // Netflix OCA inside a Brazilian ISP.
        scan.push(ScanRecord {
            asn: Asn(28573),
            country: country::BR,
            cert: cert("oca001.nflxvideo.net"),
        });
        // Unrelated cert inside CANTV.
        scan.push(ScanRecord {
            asn: Asn(8048),
            country: country::VE,
            cert: cert("www.banco.com.ve"),
        });
        scan
    }

    #[test]
    fn detection_excludes_own_networks() {
        let scan = scan_2019();
        let google = detect_offnets(&scan, by_name("Google").unwrap());
        assert_eq!(google.hosts, BTreeSet::from([Asn(8048)]));
        let netflix = detect_offnets(&scan, by_name("Netflix").unwrap());
        assert_eq!(netflix.hosts, BTreeSet::from([Asn(28573)]));
        let akamai = detect_offnets(&scan, by_name("Akamai").unwrap());
        assert!(akamai.hosts.is_empty());
    }

    #[test]
    fn detection_reads_dns_names_too() {
        let mut scan = CertScan::new(MonthStamp::new(2020, 1));
        scan.push(ScanRecord {
            asn: Asn(21826),
            country: country::VE,
            cert: TlsCert {
                subject_cn: "edge.example".into(),
                dns_names: vec!["static.akamaihd.net".into()],
            },
        });
        let akamai = detect_offnets(&scan, by_name("Akamai").unwrap());
        assert_eq!(akamai.hosts, BTreeSet::from([Asn(21826)]));
    }

    fn pops() -> PopulationEstimates {
        let mut p = PopulationEstimates::new();
        p.set(country::VE, Asn(8048), 4_000_000);
        p.set(country::VE, Asn(21826), 2_000_000);
        p.set(country::VE, Asn(6306), 2_000_000);
        p.set(country::BR, Asn(28573), 40_000_000);
        p.set(country::BR, Asn(26599), 60_000_000);
        p
    }

    #[test]
    fn coverage_percentages() {
        let scan = scan_2019();
        let map = AsOrgMap::new();
        let p = pops();
        let google = detect_offnets(&scan, by_name("Google").unwrap());
        let ve = population_coverage(&google, country::VE, &p, &map);
        assert!((ve - 50.0).abs() < 1e-9, "{ve}");
        let br = population_coverage(&google, country::BR, &p, &map);
        assert_eq!(br, 0.0);
        let netflix = detect_offnets(&scan, by_name("Netflix").unwrap());
        let br = population_coverage(&netflix, country::BR, &p, &map);
        assert!((br - 40.0).abs() < 1e-9, "{br}");
    }

    #[test]
    fn series_and_rankings() {
        let scans = vec![scan_2019()];
        let p = pops();
        let map = AsOrgMap::new();
        let google = by_name("Google").unwrap();
        let series = coverage_series(&scans, google, country::VE, &p, &map);
        assert_eq!(series.len(), 1);
        let ranking = mean_coverage_ranking(&scans, google, &[country::VE, country::BR], &p, &map);
        assert_eq!(ranking[0].0, country::VE);
        assert_eq!(rank_of(&ranking, country::BR), Some(2));
        assert_eq!(rank_of(&ranking, country::CL), None);
    }

    #[test]
    fn org_aggregation_widens_coverage() {
        let scan = scan_2019();
        let p = pops();
        let mut map = AsOrgMap::new();
        map.add_org(1, "Estado");
        map.assign(Asn(8048), 1);
        map.assign(Asn(6306), 1); // pretend sibling
        let google = detect_offnets(&scan, by_name("Google").unwrap());
        let ve = population_coverage(&google, country::VE, &p, &map);
        assert!((ve - 75.0).abs() < 1e-9, "org-level credit: {ve}");
    }
}
