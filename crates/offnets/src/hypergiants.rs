//! The hypergiant catalogue: certificate domains and home ASNs.

use lacnet_types::Asn;

/// A content hypergiant tracked by the off-net study.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypergiant {
    /// Canonical name as used in the figures.
    pub name: &'static str,
    /// Certificate name patterns: `*.suffix` matches any label under the
    /// suffix (and the bare suffix); anything else matches exactly.
    pub cert_patterns: &'static [&'static str],
    /// The hypergiant's own ASNs — certificates served from these do NOT
    /// indicate off-nets.
    pub own_asns: &'static [Asn],
}

impl Hypergiant {
    /// Whether a certificate name belongs to this hypergiant.
    pub fn matches_name(&self, name: &str) -> bool {
        let name = name.to_ascii_lowercase();
        self.cert_patterns
            .iter()
            .any(|pat| match pat.strip_prefix("*.") {
                Some(suffix) => name == suffix || name.ends_with(&format!(".{suffix}")),
                None => name == *pat,
            })
    }

    /// Whether `asn` is one of the hypergiant's own networks.
    pub fn owns_asn(&self, asn: Asn) -> bool {
        self.own_asns.contains(&asn)
    }
}

/// The ten hypergiants of Fig. 7 and Appendix G, with the certificate
/// vocabularies the detection keys on.
pub const HYPERGIANTS: &[Hypergiant] = &[
    Hypergiant {
        name: "Google",
        cert_patterns: &[
            "*.google.com",
            "*.gstatic.com",
            "*.googlevideo.com",
            "*.ggpht.com",
        ],
        own_asns: &[Asn(15169), Asn(36040), Asn(43515)],
    },
    Hypergiant {
        name: "Akamai",
        cert_patterns: &[
            "*.akamai.net",
            "*.akamaiedge.net",
            "*.akamaihd.net",
            "*.akamaized.net",
        ],
        own_asns: &[Asn(20940), Asn(16625), Asn(32787)],
    },
    Hypergiant {
        name: "Facebook",
        cert_patterns: &[
            "*.facebook.com",
            "*.fbcdn.net",
            "*.instagram.com",
            "*.whatsapp.net",
        ],
        own_asns: &[Asn(32934), Asn(63293)],
    },
    Hypergiant {
        name: "Netflix",
        cert_patterns: &["*.nflxvideo.net", "*.netflix.com", "*.nflximg.net"],
        own_asns: &[Asn(2906), Asn(40027)],
    },
    Hypergiant {
        name: "Microsoft",
        cert_patterns: &["*.msedge.net", "*.azureedge.net", "*.microsoft.com"],
        own_asns: &[Asn(8075), Asn(8068)],
    },
    Hypergiant {
        name: "Limelight",
        cert_patterns: &["*.llnwd.net", "*.llnwi.net"],
        own_asns: &[Asn(22822)],
    },
    Hypergiant {
        name: "Cdnetworks",
        cert_patterns: &["*.cdngc.net", "*.gccdn.net"],
        own_asns: &[Asn(36408)],
    },
    Hypergiant {
        name: "Alibaba",
        cert_patterns: &["*.alicdn.com", "*.alikunlun.com"],
        own_asns: &[Asn(45102), Asn(24429)],
    },
    Hypergiant {
        name: "Amazon",
        cert_patterns: &["*.cloudfront.net", "*.amazonaws.com", "*.media-amazon.com"],
        own_asns: &[Asn(16509), Asn(14618)],
    },
    Hypergiant {
        name: "Cloudflare",
        cert_patterns: &["*.cloudflare.com", "*.cloudflaressl.com"],
        own_asns: &[Asn(13335)],
    },
];

/// Look up a hypergiant by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<&'static Hypergiant> {
    HYPERGIANTS
        .iter()
        .find(|h| h.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_the_appendix_g_ten() {
        assert_eq!(HYPERGIANTS.len(), 10);
        for name in [
            "Google",
            "Akamai",
            "Facebook",
            "Netflix",
            "Microsoft",
            "Limelight",
            "Cdnetworks",
            "Alibaba",
            "Amazon",
            "Cloudflare",
        ] {
            assert!(by_name(name).is_some(), "{name} missing");
        }
        assert!(by_name("Yahoo").is_none());
    }

    #[test]
    fn wildcard_matching() {
        let google = by_name("google").unwrap();
        assert!(google.matches_name("cache.google.com"));
        assert!(google.matches_name("r3---sn-abc.googlevideo.com"));
        assert!(google.matches_name("google.com"), "bare suffix matches");
        assert!(
            google.matches_name("edge.GSTATIC.com"),
            "matching is case-insensitive"
        );
        assert!(!google.matches_name("notgoogle.com"));
        assert!(!google.matches_name("google.com.evil.example"));
        assert!(!google.matches_name("fbcdn.net"));
    }

    #[test]
    fn own_asn_detection() {
        let netflix = by_name("netflix").unwrap();
        assert!(netflix.owns_asn(Asn(2906)));
        assert!(!netflix.owns_asn(Asn(8048)));
    }

    #[test]
    fn patterns_do_not_overlap_across_hypergiants() {
        // A name matching one hypergiant must not match another — the
        // detection would otherwise double-attribute replicas.
        let names = [
            "edge.google.com",
            "x.akamaihd.net",
            "s.fbcdn.net",
            "v.nflxvideo.net",
            "c.msedge.net",
            "l.llnwd.net",
            "g.cdngc.net",
            "a.alicdn.com",
            "d.cloudfront.net",
            "w.cloudflare.com",
        ];
        for name in names {
            let hits = HYPERGIANTS.iter().filter(|h| h.matches_name(name)).count();
            assert_eq!(hits, 1, "{name} matched {hits} hypergiants");
        }
    }
}
