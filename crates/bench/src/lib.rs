//! Shared benchmark support: a lazily generated world so every Criterion
//! target amortises the one-time generation cost.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lacnet_core::DataSource;
use lacnet_crisis::{World, WorldConfig};
use std::sync::OnceLock;

/// The world all benches run against (reduced M-Lab volume keeps world
/// generation itself out of the measured loops' setup time).
pub fn bench_world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        World::generate(WorldConfig {
            mlab_volume_scale: 0.2,
            ..WorldConfig::default()
        })
    })
}

/// [`bench_world`] behind the in-memory battery interface, for the
/// per-artifact experiment benches.
pub fn bench_source() -> &'static DataSource<'static> {
    static SOURCE: OnceLock<DataSource<'static>> = OnceLock::new();
    SOURCE.get_or_init(|| DataSource::in_memory(bench_world()))
}
