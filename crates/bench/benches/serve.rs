//! Serving-path benchmarks: what one request costs against the resident
//! world, cold (full experiment compute) versus hot (LRU response-cache
//! hit), plus the cost of rendering the Prometheus exposition.
//!
//! The cold/hot ratio is the point of the response cache: a hit is pure
//! routing + map lookup + body clone, orders of magnitude under the
//! experiment compute it replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use lacnet_bench::bench_world;
use lacnet_core::serve::{respond, ServerState};
use lacnet_core::DataSource;
use lacnet_types::http::Request;
use std::hint::black_box;
use std::sync::Arc;

fn state() -> ServerState {
    ServerState::new(Arc::new(DataSource::in_memory(bench_world())), 128)
}

fn get(target: &str) -> Request {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    Request {
        method: "GET".into(),
        path,
        query,
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

/// One endpoint served cold: routing plus the full experiment compute.
/// A fresh state per iteration keeps the cache from hiding the work.
fn bench_cold(c: &mut Criterion) {
    let request = get("/fig/01?format=tsv");
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let state = state();
            black_box(respond(&state, &request).status)
        })
    });
    group.finish();
}

/// The same endpoint served hot, from the response cache.
fn bench_hit(c: &mut Criterion) {
    let state = state();
    let request = get("/fig/01?format=tsv");
    assert_eq!(respond(&state, &request).status, 200); // warm the key
    let mut group = c.benchmark_group("serve");
    group.bench_function("hit", |b| {
        b.iter(|| black_box(respond(&state, &request).body.len()))
    });
    group.finish();
}

/// Rendering `/metrics` with a populated registry.
fn bench_metrics(c: &mut Criterion) {
    let state = state();
    for target in ["/fig/01", "/tab01", "/healthz"] {
        let request = get(target);
        for _ in 0..100 {
            respond(&state, &request);
        }
    }
    let mut group = c.benchmark_group("serve");
    group.bench_function("metrics_render", |b| {
        b.iter(|| black_box(state.metrics().render().len()))
    });
    group.finish();
}

criterion_group!(benches, bench_cold, bench_hit, bench_metrics);
criterion_main!(benches);
