//! Serial-vs-parallel and cached-vs-uncached ablations for the sweep
//! engine, the pfx2as snapshot cache, the customer-cone cache and the
//! sharded NDT archive build.
//!
//! The serial and parallel sweeps are asserted byte-identical before any
//! timing starts, so the speedup numbers compare equal outputs.
//!
//! The sweep speedup scales with `std::thread::available_parallelism()`:
//! on a single-core host the engine deliberately falls back to the serial
//! path and the two sweep timings coincide. Run this bench on a
//! multi-core machine to see the ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use lacnet_bench::bench_world;
use lacnet_crisis::World;
use lacnet_types::{sweep, MonthStamp};
use std::hint::black_box;

/// A two-year window keeps one uncached serial sweep per sample
/// affordable while still giving the workers enough months to spread.
const SWEEP_START: MonthStamp = MonthStamp::new(2016, 1);
const SWEEP_END: MonthStamp = MonthStamp::new(2017, 12);

fn serial_tables(world: &World) -> Vec<(MonthStamp, String)> {
    SWEEP_START
        .through(SWEEP_END)
        .map(|m| (m, world.pfx2as_uncached(m).to_text()))
        .collect()
}

fn parallel_tables(world: &World) -> Vec<(MonthStamp, String)> {
    sweep::month_range(SWEEP_START, SWEEP_END, |m| {
        world.pfx2as_uncached(m).to_text()
    })
}

/// The fig02/fig14-style monthly pfx2as sweep, serial vs the sweep
/// engine, both on the uncached derivation path.
fn bench_sweep(c: &mut Criterion) {
    let world: &World = bench_world();
    assert_eq!(
        serial_tables(world),
        parallel_tables(world),
        "parallel sweep must be byte-identical to the serial reference"
    );
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| black_box(serial_tables(world))));
    group.bench_function("parallel", |b| b.iter(|| black_box(parallel_tables(world))));
    group.finish();
}

/// One month's table: fresh derivation vs the snapshot cache (warmed by
/// the first call).
fn bench_cache(c: &mut Criterion) {
    let world: &World = bench_world();
    let m = MonthStamp::new(2023, 6);
    assert_eq!(
        world.pfx2as_at(m).to_text(),
        world.pfx2as_uncached(m).to_text()
    );
    let mut group = c.benchmark_group("pfx2as_cache");
    group.sample_size(20);
    group.bench_function("uncached", |b| {
        b.iter(|| black_box(world.pfx2as_uncached(m)))
    });
    group.bench_function("cached", |b| b.iter(|| black_box(world.pfx2as_at(m))));
    group.finish();
}

/// CANTV's cone-size series across the topology: the fresh per-month
/// graph walk vs the world's `ConeCache` (warmed by the first call).
fn bench_cone(c: &mut Criterion) {
    let world: &World = bench_world();
    let cantv = lacnet_types::Asn(8048);
    assert_eq!(
        world.cone_size_series(cantv),
        lacnet_bgp::analytics::cone_size_series(&world.topology, cantv),
        "cached cone series must equal the fresh analytics walk"
    );
    let mut group = c.benchmark_group("cone");
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        b.iter(|| {
            black_box(lacnet_bgp::analytics::cone_size_series(
                &world.topology,
                cantv,
            ))
        })
    });
    group.bench_function("cached", |b| {
        b.iter(|| black_box(world.cone_size_series(cantv)))
    });
    group.finish();
}

/// The NDT archive build over a one-year window: the in-order serial
/// shard walk vs the sweep-engine fan-out (byte-identical by contract).
fn bench_ndt_shard(c: &mut Criterion) {
    use lacnet_crisis::bandwidth;
    let world: &World = bench_world();
    let (ops, seed) = (&world.operators, world.config.seed);
    let scale = world.config.mlab_volume_scale;
    let serial = bandwidth::build_archive_serial(ops, seed, scale, SWEEP_START, SWEEP_END);
    assert_eq!(
        bandwidth::build_archive(ops, seed, scale, SWEEP_START, SWEEP_END),
        serial,
        "sharded archive build must be byte-identical to the serial walk"
    );
    let mut group = c.benchmark_group("ndt_shard");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            black_box(bandwidth::build_archive_serial(
                ops,
                seed,
                scale,
                SWEEP_START,
                SWEEP_END,
            ))
        })
    });
    group.bench_function("sharded", |b| {
        b.iter(|| {
            black_box(bandwidth::build_archive(
                ops,
                seed,
                scale,
                SWEEP_START,
                SWEEP_END,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    name = parallel;
    config = Criterion::default();
    targets = bench_sweep, bench_cache, bench_cone, bench_ndt_shard
);
criterion_main!(parallel);
