//! Micro-benchmarks of the hot substrate primitives: format parsing,
//! CHAOS decoding, route propagation, RTT sampling, and world generation
//! itself.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lacnet_atlas::chaos;
use lacnet_atlas::RootLetter;
use lacnet_bench::bench_world;
use lacnet_bgp::{serial1, AsGraph, PfxToAs};
use lacnet_crisis::{World, WorldConfig};
use lacnet_mlab::ndt;
use lacnet_types::rng::Rng;
use lacnet_types::MonthStamp;
use std::hint::black_box;

fn bench_serial1_parse(c: &mut Criterion) {
    let world = bench_world();
    let graph = world
        .topology
        .get(MonthStamp::new(2020, 6))
        .expect("snapshot");
    let text = serial1::to_text(&graph.edges(), "bench");
    let mut group = c.benchmark_group("serial1");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_monthly_snapshot", |b| {
        b.iter(|| black_box(serial1::parse(black_box(&text)).expect("parses")))
    });
    group.bench_function("graph_from_edges", |b| {
        let edges = serial1::parse(&text).expect("parses");
        b.iter(|| black_box(AsGraph::from_edges(black_box(edges.iter().copied()))))
    });
    group.finish();
}

fn bench_pfx2as_parse(c: &mut Criterion) {
    let world = bench_world();
    let table = world.pfx2as_at(MonthStamp::new(2023, 6));
    let text = table.to_text();
    let mut group = c.benchmark_group("pfx2as");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_monthly_snapshot", |b| {
        b.iter(|| black_box(PfxToAs::parse(black_box(&text)).expect("parses")))
    });
    group.bench_function("build_trie", |b| b.iter(|| black_box(table.build_trie())));
    group.finish();
}

fn bench_chaos_decode(c: &mut Criterion) {
    let world = bench_world();
    let strings: Vec<(RootLetter, String)> = world
        .dns
        .roots
        .all()
        .iter()
        .map(|i| (i.letter, chaos::encode(i)))
        .collect();
    let mut group = c.benchmark_group("chaos");
    group.throughput(Throughput::Elements(strings.len() as u64));
    group.bench_function("decode_all_identities", |b| {
        b.iter(|| {
            for (letter, txt) in &strings {
                black_box(chaos::decode(*letter, txt).expect("decodes"));
            }
        })
    });
    group.finish();
}

fn bench_ndt_rows(c: &mut Criterion) {
    let world = bench_world();
    let mut rng = Rng::seeded(3).fork("bench");
    let tests = lacnet_crisis::bandwidth::generate_month(
        &world.operators,
        lacnet_types::country::BR,
        MonthStamp::new(2022, 6),
        5.0,
        &mut rng,
    );
    let text: String = tests.iter().map(|t| t.to_row() + "\n").collect();
    let mut group = c.benchmark_group("ndt");
    group.throughput(Throughput::Elements(tests.len() as u64));
    group.bench_function("parse_rows", |b| {
        b.iter(|| black_box(ndt::parse_rows(black_box(&text)).expect("parses")))
    });
    group.bench_function("aggregate_streaming", |b| {
        b.iter(|| {
            let mut agg = lacnet_mlab::aggregate::MonthlyAggregator::new(
                lacnet_mlab::aggregate::Mode::Streaming,
            );
            agg.observe_all(black_box(&tests));
            black_box(agg.group_count())
        })
    });
    group.finish();
}

fn bench_world_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    group.sample_size(10);
    group.bench_function("generate_default_scale_0_05", |b| {
        b.iter(|| {
            black_box(World::generate(WorldConfig {
                mlab_volume_scale: 0.05,
                ..WorldConfig::default()
            }))
        })
    });
    group.finish();
}

criterion_group!(
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_serial1_parse, bench_pfx2as_parse, bench_chaos_decode,
        bench_ndt_rows, bench_world_generation
);
criterion_main!(substrates);
