//! Archive-backend ablation: loading every dataset by parsing a dumped
//! native-format tree vs regenerating the world from its seed.
//!
//! Before any timing starts, the reloaded archive is asserted equivalent
//! to the generated world on the derived outputs the battery actually
//! consumes — topology size, a mid-window pfx2as table, the CANTV cone,
//! the M-Lab group census and Venezuela's median series — so the numbers
//! compare equal worlds, not a fast-but-wrong parser.

use criterion::{criterion_group, criterion_main, Criterion};
use lacnet_bench::bench_world;
use lacnet_core::{datasets, ArchiveWorld, DumpOptions};
use lacnet_crisis::World;
use lacnet_mlab::ShardFormat;
use lacnet_types::{country, MonthStamp};
use std::hint::black_box;
use std::path::PathBuf;

/// Dump the shared bench world once; every sample reloads the same tree.
fn dump_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lacnet-bench-archive-{}", std::process::id()));
    if !dir.join("MANIFEST.txt").exists() {
        datasets::dump(bench_world(), &dir).expect("dump succeeds");
    }
    dir
}

/// A second tree holding the identical world with columnar NDT shards.
fn columnar_dump_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lacnet-bench-ndtc-{}", std::process::id()));
    if !dir.join("MANIFEST.txt").exists() {
        let options = DumpOptions {
            shard_format: ShardFormat::Columnar,
            ..DumpOptions::default()
        };
        datasets::dump_with(bench_world(), &dir, options).expect("columnar dump succeeds");
    }
    dir
}

fn assert_equivalent(world: &World, reloaded: &ArchiveWorld) {
    assert_eq!(reloaded.config, world.config);
    assert_eq!(reloaded.topology.len(), world.topology.len());
    let m = MonthStamp::new(2020, 6);
    assert_eq!(
        reloaded.pfx2as_at(m).to_text(),
        world.pfx2as_at(m).to_text()
    );
    let cantv = lacnet_crisis::world::FOCAL_AS;
    assert_eq!(
        *reloaded.customer_cone_at(m, cantv),
        *world.customer_cone_at(m, cantv)
    );
    assert_eq!(reloaded.mlab.group_count(), world.mlab.group_count());
    assert_eq!(
        reloaded.mlab.median_series(country::VE),
        world.mlab.median_series(country::VE)
    );
}

/// Cold archive parse (serial-1 + pfx2as + delegations + JSON dumps +
/// streamed NDT shards) vs `World::generate` from the same config.
fn bench_archive_load(c: &mut Criterion) {
    let world = bench_world();
    let dir = dump_dir();
    assert_equivalent(world, &ArchiveWorld::load(&dir).expect("archive loads"));
    let mut group = c.benchmark_group("archive");
    group.sample_size(10);
    group.bench_function("load", |b| {
        b.iter(|| black_box(ArchiveWorld::load(&dir).expect("archive loads")))
    });
    group.bench_function("generate", |b| {
        b.iter(|| black_box(World::generate(world.config)))
    });
    group.finish();
}

/// Cold NDT ingestion, text vs columnar: the full shard-set load into a
/// fresh `MonthlyAggregator` through each on-disk format. Before timing,
/// both archives are asserted to produce the same monthly medians (and
/// the same group census) — the formats must be two encodings of one
/// dataset, not two datasets.
fn bench_cold_load(c: &mut Criterion) {
    let text_dir = dump_dir();
    let ndtc_dir = columnar_dump_dir();
    let text = ArchiveWorld::load_with(&text_dir, Some(ShardFormat::Text)).expect("text loads");
    let ndtc =
        ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("columnar loads");
    assert_eq!(text.mlab.group_count(), ndtc.mlab.group_count());
    assert_eq!(
        text.mlab.median_series(country::VE),
        ndtc.mlab.median_series(country::VE)
    );
    assert_eq!(
        text.mlab.median_series(country::BR),
        ndtc.mlab.median_series(country::BR)
    );
    // NDT-only ingestion through each format, mirroring the archive
    // loader's paths: text shards streamed through `observe_reader`,
    // columnar shards decoded on sweep workers and merged through
    // `observe_columns`. The whole-archive loads below include every
    // other dataset's parse cost, which dilutes the format difference.
    let plan = lacnet_crisis::bandwidth::shard_plan(
        lacnet_crisis::config::windows::mlab_start(),
        bench_world().config.end,
    );
    let ingest_text = || {
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for &shard in &plan {
            let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Text);
            let file = std::fs::File::open(text_dir.join(rel)).expect("text shard");
            agg.observe_reader(std::io::BufReader::new(file))
                .expect("text shard parses");
        }
        agg
    };
    let ingest_columnar = || {
        let batches = lacnet_types::sweep::parallel_map_with(
            lacnet_types::sweep::worker_count(plan.len()),
            &plan,
            |&shard| {
                let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
                let bytes = std::fs::read(ndtc_dir.join(rel)).expect("columnar shard");
                lacnet_mlab::columnar::decode(&bytes).expect("columnar shard decodes")
            },
        );
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for batch in &batches {
            agg.observe_columns(batch);
        }
        agg
    };
    // Both ingestion paths land the P² estimators in byte-identical
    // state — the formats encode one observation sequence.
    assert_eq!(
        format!("{:?}", ingest_text()),
        format!("{:?}", ingest_columnar())
    );

    let mut group = c.benchmark_group("cold_load");
    group.sample_size(10);
    group.bench_function("ndt/text", |b| b.iter(|| black_box(ingest_text())));
    group.bench_function("ndt/columnar", |b| b.iter(|| black_box(ingest_columnar())));
    group.bench_function("text", |b| {
        b.iter(|| {
            black_box(ArchiveWorld::load_with(&text_dir, Some(ShardFormat::Text)).expect("loads"))
        })
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            black_box(
                ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("loads"),
            )
        })
    });
    group.finish();
}

/// One `(country, month)` query, two strategies on the same v2 tree:
/// the footer-index route (`ndt_month_stats` — one shard file, matching
/// blocks, download column only) against the no-index baseline (decode
/// every container fully, aggregate, read one group). Both must agree
/// with the resident aggregate's group state — same count, bit-identical
/// P² median — before any timing starts.
fn bench_cold_query(c: &mut Criterion) {
    let ndtc_dir = columnar_dump_dir();
    let ndtc =
        ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("columnar loads");
    let (month, _) = ndtc
        .mlab
        .median_series(country::VE)
        .last()
        .expect("bench world has VE data");
    let resident = ndtc.mlab.group(country::VE, month).expect("group exists");
    let expected = (resident.count(), resident.median());
    let selective = || {
        ndtc.ndt_month_stats(country::VE, month)
            .expect("query succeeds")
            .expect("shard exists")
    };
    let plan = lacnet_crisis::bandwidth::shard_plan(
        lacnet_crisis::config::windows::mlab_start(),
        bench_world().config.end,
    );
    let whole_archive = || {
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for &shard in &plan {
            let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
            let bytes = std::fs::read(ndtc_dir.join(rel)).expect("columnar shard");
            let batch = lacnet_mlab::columnar::decode(&bytes).expect("columnar shard decodes");
            agg.observe_columns(&batch);
        }
        let g = agg.group(country::VE, month).expect("group exists").clone();
        (g.count(), g.median())
    };
    let s = selective();
    assert_eq!((s.rows, s.median_download), expected);
    assert_eq!(s.format, "columnar-v2");
    assert!(s.read.bytes_decoded > 0);
    assert_eq!(whole_archive(), expected);

    let mut group = c.benchmark_group("cold_query");
    group.sample_size(10);
    group.bench_function("selective", |b| b.iter(|| black_box(selective())));
    group.bench_function("whole_archive", |b| b.iter(|| black_box(whole_archive())));
    group.finish();
}

/// Two comparisons in one group. `fanout` vs `whole_archive` times the
/// product range path (`ndt_range_stats` — index walk, day-span
/// pruning, file reads, sweep fan-out, plan-order merge) against the
/// no-index whole-archive decode on the bench tree; both must land on
/// the identical row total and bit-identical mean-of-monthly-medians
/// before any timing starts — the P² estimator is order-sensitive, so
/// agreement pins the fan-out's visit order. `borrowed` vs `owned`
/// isolates the zero-copy decode claim on a single production-scale
/// in-memory container where the two paths differ only in
/// materialization; they must agree on row count, download sum, and
/// the bit-exact P² median before timing.
fn bench_range_query(c: &mut Criterion) {
    let ndtc_dir = columnar_dump_dir();
    let ndtc =
        ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("columnar loads");
    let series: Vec<_> = ndtc.mlab.median_series(country::VE).iter().collect();
    assert!(series.len() >= 6, "bench world spans months");
    let (from, _) = series[series.len() - 6];
    let (to, _) = *series.last().unwrap();

    let fanout = || {
        ndtc.ndt_range_stats(country::VE, from, to)
            .expect("range query succeeds")
    };
    // The borrowed-vs-owned pair isolates the zero-copy claim on one
    // buffer big enough that materialization cost is visible over the
    // shared per-block work (CRC, varint decode): a production-scale
    // month — 98 304 rows in 2048-row blocks — scanned with every
    // column selected. Identical selection, identical consumption; the
    // only difference is `scan_counted`'s borrowed `BlockView`s (floats
    // sliced in place, dictionaries into one reused scratch) against
    // `read_counted`'s owned `ColumnBatch` (every column allocated and
    // copied per call).
    let big_rows: Vec<lacnet_mlab::NdtTest> = (0..98_304u32)
        .map(|i| lacnet_mlab::NdtTest {
            date: lacnet_types::Date::from_days_since_epoch(18_078 + (i as i64 % 30)),
            country: if i % 7 == 0 { country::BR } else { country::VE },
            asn: lacnet_types::Asn(8_048 + (i % 11) * 991),
            download_mbps: 0.3 + (i % 997) as f64 * 0.01,
            upload_mbps: 0.1 + (i % 499) as f64 * 0.01,
            min_rtt_ms: 15.0 + (i % 120) as f64,
            loss_rate: (i % 50) as f64 / 100.0,
        })
        .collect();
    let big = lacnet_mlab::columnar::encode_v2(&lacnet_mlab::ColumnBatch::from_rows(&big_rows));
    let big_selection = lacnet_mlab::ColumnSelection::all().with_country(country::VE);
    let borrowed = || {
        let reader = lacnet_mlab::ColumnReader::open(&big).expect("container opens");
        let mut scratch = lacnet_mlab::DecodeScratch::new();
        let (mut rows, mut sum) = (0usize, 0.0f64);
        reader
            .scan_counted(&big_selection, &mut scratch, |view| {
                rows += view.rows();
                for v in view.download().iter() {
                    sum += v;
                }
                Ok(())
            })
            .expect("borrowed scan");
        (rows, sum)
    };
    let owned = || {
        let reader = lacnet_mlab::ColumnReader::open(&big).expect("container opens");
        let (batch, _) = reader.read_counted(&big_selection).expect("owned decode");
        let mut sum = 0.0f64;
        for &v in batch.download() {
            sum += v;
        }
        (batch.len(), sum)
    };
    let plan = lacnet_crisis::bandwidth::shard_plan(
        lacnet_crisis::config::windows::mlab_start(),
        bench_world().config.end,
    );
    let whole_archive = || {
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for &shard in &plan {
            let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
            let bytes = std::fs::read(ndtc_dir.join(rel)).expect("columnar shard");
            let batch = lacnet_mlab::columnar::decode(&bytes).expect("columnar shard decodes");
            agg.observe_columns(&batch);
        }
        let mut rows_total = 0usize;
        let mut median_sum = 0.0f64;
        let mut medians = 0usize;
        for month in from.through(to) {
            let Some(g) = agg.group(country::VE, month) else {
                continue;
            };
            rows_total += g.count();
            if let Some(m) = g.median() {
                median_sum += m;
                medians += 1;
            }
        }
        let mean = (medians > 0).then(|| median_sum / medians as f64);
        (rows_total, mean)
    };

    let fanned = fanout();
    assert_eq!(fanned.months.len(), 6, "every window month has a shard");
    assert_eq!((fanned.rows, fanned.mean_monthly_median), whole_archive());
    let (b_rows, b_sum) = borrowed();
    assert_eq!((b_rows, b_sum), owned(), "borrowed and owned scans agree");
    assert!(b_rows > 80_000, "country filter keeps the VE majority");
    // Bit-exact median agreement pins the borrowed visit order to the
    // owned batch order (P² is order-sensitive).
    let owned_median = {
        let reader = lacnet_mlab::ColumnReader::open(&big).expect("container opens");
        let (batch, _) = reader.read_counted(&big_selection).expect("owned decode");
        let mut p2 = lacnet_types::stats::P2Quantile::median();
        for &v in batch.download() {
            p2.observe(v);
        }
        p2.value()
    };
    let borrowed_median = {
        let reader = lacnet_mlab::ColumnReader::open(&big).expect("container opens");
        let mut scratch = lacnet_mlab::DecodeScratch::new();
        let mut p2 = lacnet_types::stats::P2Quantile::median();
        reader
            .scan_counted(&big_selection, &mut scratch, |view| {
                for v in view.download().iter() {
                    p2.observe(v);
                }
                Ok(())
            })
            .expect("borrowed scan");
        p2.value()
    };
    assert_eq!(borrowed_median, owned_median, "medians bit-identical");
    // Selectivity: the fan-out decoded one column of each shard's
    // matching blocks, never the whole tree.
    assert_eq!(fanned.read.columns_decoded, fanned.read.blocks_decoded);

    let mut group = c.benchmark_group("range_query");
    group.sample_size(10);
    group.bench_function("borrowed", |b| b.iter(|| black_box(borrowed())));
    group.bench_function("owned", |b| b.iter(|| black_box(owned())));
    group.bench_function("fanout", |b| b.iter(|| black_box(fanout())));
    group.bench_function("whole_archive", |b| b.iter(|| black_box(whole_archive())));
    group.finish();
}

criterion_group!(
    name = archive;
    config = Criterion::default();
    targets = bench_archive_load, bench_cold_load, bench_cold_query, bench_range_query
);
criterion_main!(archive);
