//! Archive-backend ablation: loading every dataset by parsing a dumped
//! native-format tree vs regenerating the world from its seed.
//!
//! Before any timing starts, the reloaded archive is asserted equivalent
//! to the generated world on the derived outputs the battery actually
//! consumes — topology size, a mid-window pfx2as table, the CANTV cone,
//! the M-Lab group census and Venezuela's median series — so the numbers
//! compare equal worlds, not a fast-but-wrong parser.

use criterion::{criterion_group, criterion_main, Criterion};
use lacnet_bench::bench_world;
use lacnet_core::{datasets, ArchiveWorld, DumpOptions};
use lacnet_crisis::World;
use lacnet_mlab::ShardFormat;
use lacnet_types::{country, MonthStamp};
use std::hint::black_box;
use std::path::PathBuf;

/// Dump the shared bench world once; every sample reloads the same tree.
fn dump_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lacnet-bench-archive-{}", std::process::id()));
    if !dir.join("MANIFEST.txt").exists() {
        datasets::dump(bench_world(), &dir).expect("dump succeeds");
    }
    dir
}

/// A second tree holding the identical world with columnar NDT shards.
fn columnar_dump_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lacnet-bench-ndtc-{}", std::process::id()));
    if !dir.join("MANIFEST.txt").exists() {
        let options = DumpOptions {
            shard_format: ShardFormat::Columnar,
            ..DumpOptions::default()
        };
        datasets::dump_with(bench_world(), &dir, options).expect("columnar dump succeeds");
    }
    dir
}

fn assert_equivalent(world: &World, reloaded: &ArchiveWorld) {
    assert_eq!(reloaded.config, world.config);
    assert_eq!(reloaded.topology.len(), world.topology.len());
    let m = MonthStamp::new(2020, 6);
    assert_eq!(
        reloaded.pfx2as_at(m).to_text(),
        world.pfx2as_at(m).to_text()
    );
    let cantv = lacnet_crisis::world::FOCAL_AS;
    assert_eq!(
        *reloaded.customer_cone_at(m, cantv),
        *world.customer_cone_at(m, cantv)
    );
    assert_eq!(reloaded.mlab.group_count(), world.mlab.group_count());
    assert_eq!(
        reloaded.mlab.median_series(country::VE),
        world.mlab.median_series(country::VE)
    );
}

/// Cold archive parse (serial-1 + pfx2as + delegations + JSON dumps +
/// streamed NDT shards) vs `World::generate` from the same config.
fn bench_archive_load(c: &mut Criterion) {
    let world = bench_world();
    let dir = dump_dir();
    assert_equivalent(world, &ArchiveWorld::load(&dir).expect("archive loads"));
    let mut group = c.benchmark_group("archive");
    group.sample_size(10);
    group.bench_function("load", |b| {
        b.iter(|| black_box(ArchiveWorld::load(&dir).expect("archive loads")))
    });
    group.bench_function("generate", |b| {
        b.iter(|| black_box(World::generate(world.config)))
    });
    group.finish();
}

/// Cold NDT ingestion, text vs columnar: the full shard-set load into a
/// fresh `MonthlyAggregator` through each on-disk format. Before timing,
/// both archives are asserted to produce the same monthly medians (and
/// the same group census) — the formats must be two encodings of one
/// dataset, not two datasets.
fn bench_cold_load(c: &mut Criterion) {
    let text_dir = dump_dir();
    let ndtc_dir = columnar_dump_dir();
    let text = ArchiveWorld::load_with(&text_dir, Some(ShardFormat::Text)).expect("text loads");
    let ndtc =
        ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("columnar loads");
    assert_eq!(text.mlab.group_count(), ndtc.mlab.group_count());
    assert_eq!(
        text.mlab.median_series(country::VE),
        ndtc.mlab.median_series(country::VE)
    );
    assert_eq!(
        text.mlab.median_series(country::BR),
        ndtc.mlab.median_series(country::BR)
    );
    // NDT-only ingestion through each format, mirroring the archive
    // loader's paths: text shards streamed through `observe_reader`,
    // columnar shards decoded on sweep workers and merged through
    // `observe_columns`. The whole-archive loads below include every
    // other dataset's parse cost, which dilutes the format difference.
    let plan = lacnet_crisis::bandwidth::shard_plan(
        lacnet_crisis::config::windows::mlab_start(),
        bench_world().config.end,
    );
    let ingest_text = || {
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for &shard in &plan {
            let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Text);
            let file = std::fs::File::open(text_dir.join(rel)).expect("text shard");
            agg.observe_reader(std::io::BufReader::new(file))
                .expect("text shard parses");
        }
        agg
    };
    let ingest_columnar = || {
        let batches = lacnet_types::sweep::parallel_map_with(
            lacnet_types::sweep::worker_count(plan.len()),
            &plan,
            |&shard| {
                let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
                let bytes = std::fs::read(ndtc_dir.join(rel)).expect("columnar shard");
                lacnet_mlab::columnar::decode(&bytes).expect("columnar shard decodes")
            },
        );
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for batch in &batches {
            agg.observe_columns(batch);
        }
        agg
    };
    // Both ingestion paths land the P² estimators in byte-identical
    // state — the formats encode one observation sequence.
    assert_eq!(
        format!("{:?}", ingest_text()),
        format!("{:?}", ingest_columnar())
    );

    let mut group = c.benchmark_group("cold_load");
    group.sample_size(10);
    group.bench_function("ndt/text", |b| b.iter(|| black_box(ingest_text())));
    group.bench_function("ndt/columnar", |b| b.iter(|| black_box(ingest_columnar())));
    group.bench_function("text", |b| {
        b.iter(|| {
            black_box(ArchiveWorld::load_with(&text_dir, Some(ShardFormat::Text)).expect("loads"))
        })
    });
    group.bench_function("columnar", |b| {
        b.iter(|| {
            black_box(
                ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("loads"),
            )
        })
    });
    group.finish();
}

/// One `(country, month)` query, two strategies on the same v2 tree:
/// the footer-index route (`ndt_month_stats` — one shard file, matching
/// blocks, download column only) against the no-index baseline (decode
/// every container fully, aggregate, read one group). Both must agree
/// with the resident aggregate's group state — same count, bit-identical
/// P² median — before any timing starts.
fn bench_cold_query(c: &mut Criterion) {
    let ndtc_dir = columnar_dump_dir();
    let ndtc =
        ArchiveWorld::load_with(&ndtc_dir, Some(ShardFormat::Columnar)).expect("columnar loads");
    let (month, _) = ndtc
        .mlab
        .median_series(country::VE)
        .last()
        .expect("bench world has VE data");
    let resident = ndtc.mlab.group(country::VE, month).expect("group exists");
    let expected = (resident.count(), resident.median());
    let selective = || {
        ndtc.ndt_month_stats(country::VE, month)
            .expect("query succeeds")
            .expect("shard exists")
    };
    let plan = lacnet_crisis::bandwidth::shard_plan(
        lacnet_crisis::config::windows::mlab_start(),
        bench_world().config.end,
    );
    let whole_archive = || {
        let mut agg =
            lacnet_mlab::aggregate::MonthlyAggregator::new(lacnet_mlab::aggregate::Mode::Streaming);
        for &shard in &plan {
            let rel = datasets::mlab_shard_path_with(shard, ShardFormat::Columnar);
            let bytes = std::fs::read(ndtc_dir.join(rel)).expect("columnar shard");
            let batch = lacnet_mlab::columnar::decode(&bytes).expect("columnar shard decodes");
            agg.observe_columns(&batch);
        }
        let g = agg.group(country::VE, month).expect("group exists").clone();
        (g.count(), g.median())
    };
    let s = selective();
    assert_eq!((s.rows, s.median_download), expected);
    assert_eq!(s.format, "columnar-v2");
    assert!(s.read.bytes_decoded > 0);
    assert_eq!(whole_archive(), expected);

    let mut group = c.benchmark_group("cold_query");
    group.sample_size(10);
    group.bench_function("selective", |b| b.iter(|| black_box(selective())));
    group.bench_function("whole_archive", |b| b.iter(|| black_box(whole_archive())));
    group.finish();
}

criterion_group!(
    name = archive;
    config = Criterion::default();
    targets = bench_archive_load, bench_cold_load, bench_cold_query
);
criterion_main!(archive);
