//! Archive-backend ablation: loading every dataset by parsing a dumped
//! native-format tree vs regenerating the world from its seed.
//!
//! Before any timing starts, the reloaded archive is asserted equivalent
//! to the generated world on the derived outputs the battery actually
//! consumes — topology size, a mid-window pfx2as table, the CANTV cone,
//! the M-Lab group census and Venezuela's median series — so the numbers
//! compare equal worlds, not a fast-but-wrong parser.

use criterion::{criterion_group, criterion_main, Criterion};
use lacnet_bench::bench_world;
use lacnet_core::{datasets, ArchiveWorld};
use lacnet_crisis::World;
use lacnet_types::{country, MonthStamp};
use std::hint::black_box;
use std::path::PathBuf;

/// Dump the shared bench world once; every sample reloads the same tree.
fn dump_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lacnet-bench-archive-{}", std::process::id()));
    if !dir.join("MANIFEST.txt").exists() {
        datasets::dump(bench_world(), &dir).expect("dump succeeds");
    }
    dir
}

fn assert_equivalent(world: &World, reloaded: &ArchiveWorld) {
    assert_eq!(reloaded.config, world.config);
    assert_eq!(reloaded.topology.len(), world.topology.len());
    let m = MonthStamp::new(2020, 6);
    assert_eq!(
        reloaded.pfx2as_at(m).to_text(),
        world.pfx2as_at(m).to_text()
    );
    let cantv = lacnet_crisis::world::FOCAL_AS;
    assert_eq!(
        *reloaded.customer_cone_at(m, cantv),
        *world.customer_cone_at(m, cantv)
    );
    assert_eq!(reloaded.mlab.group_count(), world.mlab.group_count());
    assert_eq!(
        reloaded.mlab.median_series(country::VE),
        world.mlab.median_series(country::VE)
    );
}

/// Cold archive parse (serial-1 + pfx2as + delegations + JSON dumps +
/// streamed NDT shards) vs `World::generate` from the same config.
fn bench_archive_load(c: &mut Criterion) {
    let world = bench_world();
    let dir = dump_dir();
    assert_equivalent(world, &ArchiveWorld::load(&dir).expect("archive loads"));
    let mut group = c.benchmark_group("archive");
    group.sample_size(10);
    group.bench_function("load", |b| {
        b.iter(|| black_box(ArchiveWorld::load(&dir).expect("archive loads")))
    });
    group.bench_function("generate", |b| {
        b.iter(|| black_box(World::generate(world.config)))
    });
    group.finish();
}

criterion_group!(
    name = archive;
    config = Criterion::default();
    targets = bench_archive_load
);
criterion_main!(archive);
