//! The DESIGN.md ablations: measure the design choices the pipeline makes.
//!
//! 1. prefix trie vs linear scan for pfx2as longest-prefix lookups;
//! 2. streaming P² quantiles vs exact sort for month-country medians;
//! 3. valley-free propagation vs naive "connected component" visibility;
//! 4. anycast catchment with vs without egress-detour awareness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lacnet_atlas::{AnycastFleet, AnycastSite, SiteScope};
use lacnet_bench::bench_world;
use lacnet_bgp::propagation::RouteSim;
use lacnet_types::rng::Rng;
use lacnet_types::stats::{self, P2Quantile};
use lacnet_types::{geo, Asn, GeoPoint, MonthStamp};
use std::hint::black_box;
use std::net::Ipv4Addr;

/// Ablation 1 — longest-prefix match: trie vs linear scan over the
/// full 2023 pfx2as table.
fn ablation_lpm(c: &mut Criterion) {
    let world = bench_world();
    let table = world.pfx2as_at(MonthStamp::new(2023, 6));
    let entries: Vec<_> = table.iter().map(|(p, o)| (p, o.clone())).collect();
    let trie = table.build_trie();
    let mut rng = Rng::seeded(7);
    let probes: Vec<Ipv4Addr> = (0..256)
        .map(|_| Ipv4Addr::from(rng.next_u64() as u32))
        .collect();

    let mut group = c.benchmark_group("ablation_lpm");
    group.bench_function(BenchmarkId::new("trie", entries.len()), |b| {
        b.iter(|| {
            for &ip in &probes {
                black_box(trie.longest_match(black_box(ip)));
            }
        })
    });
    group.bench_function(BenchmarkId::new("linear", entries.len()), |b| {
        b.iter(|| {
            for &ip in &probes {
                let best = entries
                    .iter()
                    .filter(|(p, _)| p.contains(ip))
                    .max_by_key(|(p, _)| p.len());
                black_box(best);
            }
        })
    });
    group.finish();
}

/// Ablation 2 — median estimation: P² streaming vs exact sort, at the
/// observation counts a busy country-month sees.
fn ablation_median(c: &mut Criterion) {
    let mut rng = Rng::seeded(9);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.log_normal(1.0, 0.9)).collect();

    let mut group = c.benchmark_group("ablation_median");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_function(BenchmarkId::new("p2_streaming", n), |b| {
            b.iter(|| {
                let mut p2 = P2Quantile::median();
                for &x in &samples[..n] {
                    p2.observe(x);
                }
                black_box(p2.value())
            })
        });
        group.bench_function(BenchmarkId::new("exact_sort", n), |b| {
            b.iter(|| {
                let mut buf = samples[..n].to_vec();
                black_box(stats::median(&mut buf))
            })
        });
    }
    group.finish();
}

/// Ablation 3 — visibility: valley-free propagation vs a naive
/// reachability flood that ignores export policy (the naive model
/// overstates visibility and is barely cheaper).
fn ablation_visibility(c: &mut Criterion) {
    let world = bench_world();
    let graph = world
        .topology
        .get(MonthStamp::new(2020, 6))
        .expect("snapshot");
    let origins: Vec<Asn> = world
        .operators
        .eyeballs(lacnet_types::country::VE)
        .iter()
        .map(|o| o.asn)
        .filter(|a| graph.contains(*a))
        .collect();

    let mut group = c.benchmark_group("ablation_visibility");
    group.bench_function("valley_free", |b| {
        b.iter(|| {
            let sim = RouteSim::new(graph);
            for &o in &origins {
                black_box(sim.propagate(o).reach_count());
            }
        })
    });
    group.bench_function("naive_flood", |b| {
        b.iter(|| {
            // Undirected BFS over all adjacency kinds.
            for &o in &origins {
                let mut seen = std::collections::BTreeSet::new();
                let mut stack = vec![o];
                while let Some(n) = stack.pop() {
                    if !seen.insert(n) {
                        continue;
                    }
                    if let Some(adj) = graph.adjacency(n) {
                        stack.extend(adj.providers.iter());
                        stack.extend(adj.customers.iter());
                        stack.extend(adj.peers.iter());
                    }
                }
                black_box(seen.len());
            }
        })
    });
    group.finish();
}

/// Ablation 4 — anycast catchment with vs without egress awareness:
/// the detour-aware model is what produces Venezuela's Miami-shaped
/// latencies; this measures its cost.
fn ablation_catchment(c: &mut Criterion) {
    let world = bench_world();
    let probes = world.dns.probes.active_in(MonthStamp::new(2023, 6));
    let fleet = AnycastFleet::new(
        world
            .dns
            .gpdns_sites
            .iter()
            .map(|s| AnycastSite {
                id: s.id.clone(),
                location: s.location,
                scope: SiteScope::Global,
            })
            .collect(),
    );
    // The egress-blind variant strips the detours.
    let blind: Vec<_> = probes
        .iter()
        .map(|p| {
            let mut q = (*p).clone();
            q.egress = None;
            q
        })
        .collect();

    let mut group = c.benchmark_group("ablation_catchment");
    group.bench_function("egress_aware", |b| {
        b.iter(|| {
            for p in &probes {
                black_box(fleet.catch(p));
            }
        })
    });
    group.bench_function("egress_blind", |b| {
        b.iter(|| {
            for p in &blind {
                black_box(fleet.catch(p));
            }
        })
    });
    group.finish();

    // Side effect worth printing once: how many probes change catchment.
    let moved = probes
        .iter()
        .zip(&blind)
        .filter(|(a, b)| fleet.catch(a).map(|s| &s.id) != fleet.catch(b).map(|s| &s.id))
        .count();
    let miami = geo::airport("mia")
        .map(|a| a.location)
        .unwrap_or(GeoPoint::new(0.0, 0.0));
    let _ = miami;
    eprintln!(
        "[ablation_catchment] {moved} of {} probes change site without egress modelling",
        probes.len()
    );
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = ablation_lpm, ablation_median, ablation_visibility, ablation_catchment
);
criterion_main!(ablations);
