//! One benchmark per paper artifact: how long the analysis pipeline takes
//! to regenerate each figure/table from the world's datasets. (World
//! generation is one-time setup, outside the measured loops.)

use criterion::{criterion_group, criterion_main, Criterion};
use lacnet_bench::bench_source;
use lacnet_core::{experiments as ex, DataSource};
use std::hint::black_box;

macro_rules! artifact_bench {
    ($fn_name:ident, $id:literal, $module:ident) => {
        fn $fn_name(c: &mut Criterion) {
            let src: &DataSource = bench_source();
            c.bench_function($id, |b| {
                b.iter(|| black_box(ex::$module::run(black_box(src))))
            });
        }
    };
}

artifact_bench!(bench_fig01, "fig01_macro", fig01_macro);
artifact_bench!(bench_fig03, "fig03_facilities", fig03_facilities);
artifact_bench!(bench_fig04, "fig04_cables", fig04_cables);
artifact_bench!(bench_fig05, "fig05_ipv6", fig05_ipv6);
artifact_bench!(bench_fig07, "fig07_offnets", fig07_offnets);
artifact_bench!(bench_fig08, "fig08_cantv_degree", fig08_cantv_degree);
artifact_bench!(bench_fig09, "fig09_transit_heatmap", fig09_transit_heatmap);
artifact_bench!(bench_fig10, "fig10_ixp_matrix", fig10_ixp_matrix);
artifact_bench!(bench_fig11, "fig11_bandwidth", fig11_bandwidth);
artifact_bench!(bench_fig13, "fig13_gdp_ranks", fig13_gdp_ranks);
artifact_bench!(bench_fig15, "fig15_ve_facilities", fig15_ve_facilities);
artifact_bench!(bench_fig17, "fig17_probe_coverage", fig17_probe_coverage);
artifact_bench!(bench_fig18, "fig18_all_hypergiants", fig18_all_hypergiants);
artifact_bench!(bench_fig19, "fig19_third_party", fig19_third_party);
artifact_bench!(bench_fig20, "fig20_probe_map", fig20_probe_map);
artifact_bench!(bench_fig21, "fig21_us_ixps", fig21_us_ixps);
artifact_bench!(bench_tab01, "tab01_isps", tab01_isps);

/// The heavy experiments (monthly routing/propagation sweeps and
/// campaign simulations) get a reduced sample count.
fn bench_heavy(c: &mut Criterion) {
    let src: &DataSource = bench_source();
    let mut group = c.benchmark_group("heavy");
    group.sample_size(10);
    group.bench_function("fig02_address_space", |b| {
        b.iter(|| black_box(ex::fig02_address_space::run(black_box(src))))
    });
    group.bench_function("fig06_roots", |b| {
        b.iter(|| black_box(ex::fig06_roots::run(black_box(src))))
    });
    group.bench_function("fig12_gpdns_rtt", |b| {
        b.iter(|| black_box(ex::fig12_gpdns_rtt::run(black_box(src))))
    });
    group.bench_function("fig14_prefix_heatmap", |b| {
        b.iter(|| black_box(ex::fig14_prefix_heatmap::run(black_box(src))))
    });
    group.bench_function("fig16_root_origins", |b| {
        b.iter(|| black_box(ex::fig16_root_origins::run(black_box(src))))
    });
    group.finish();
}

criterion_group!(
    name = artifacts;
    config = Criterion::default().sample_size(20);
    targets = bench_fig01, bench_fig03, bench_fig04, bench_fig05, bench_fig07,
        bench_fig08, bench_fig09, bench_fig10, bench_fig11, bench_fig13,
        bench_fig15, bench_fig17, bench_fig18, bench_fig19, bench_fig20,
        bench_fig21, bench_tab01, bench_heavy
);
criterion_main!(artifacts);
