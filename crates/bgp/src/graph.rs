//! The AS-level topology graph.

use crate::relationship::{AsRelationship, RelEdge};
use lacnet_types::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// An AS-level topology for one snapshot month: per-AS provider, customer,
/// and peer adjacency derived from relationship edges.
///
/// Duplicate edges are deduplicated; contradictory duplicates (the same
/// pair appearing both as p2c and p2p) keep *both* adjacencies, matching
/// how CAIDA consumers usually treat hybrid relationships.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    nodes: BTreeMap<Asn, Adjacency>,
    edge_count: usize,
}

/// Neighbour sets of one AS.
#[derive(Debug, Clone, Default)]
pub struct Adjacency {
    /// ASes selling transit to this AS.
    pub providers: BTreeSet<Asn>,
    /// ASes buying transit from this AS.
    pub customers: BTreeSet<Asn>,
    /// Settlement-free peers.
    pub peers: BTreeSet<Asn>,
}

impl AsGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from relationship edges.
    pub fn from_edges(edges: impl IntoIterator<Item = RelEdge>) -> Self {
        let mut g = AsGraph::new();
        for e in edges {
            g.insert(e);
        }
        g
    }

    /// Insert one edge. Returns `true` if it was new.
    pub fn insert(&mut self, edge: RelEdge) -> bool {
        let fresh = match edge.rel {
            AsRelationship::ProviderToCustomer => {
                let inserted = self
                    .nodes
                    .entry(edge.b)
                    .or_default()
                    .providers
                    .insert(edge.a);
                self.nodes
                    .entry(edge.a)
                    .or_default()
                    .customers
                    .insert(edge.b);
                inserted
            }
            AsRelationship::PeerToPeer => {
                let inserted = self.nodes.entry(edge.a).or_default().peers.insert(edge.b);
                self.nodes.entry(edge.b).or_default().peers.insert(edge.a);
                inserted
            }
        };
        if fresh {
            self.edge_count += 1;
        }
        fresh
    }

    /// Number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of ASes with at least one edge.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `asn` appears in the graph.
    pub fn contains(&self, asn: Asn) -> bool {
        self.nodes.contains_key(&asn)
    }

    /// Iterate over all ASes.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.nodes.keys().copied()
    }

    /// The adjacency of `asn`, if present.
    pub fn adjacency(&self, asn: Asn) -> Option<&Adjacency> {
        self.nodes.get(&asn)
    }

    /// Transit providers of `asn` (its *upstreams* in the paper's Fig. 8).
    pub fn providers(&self, asn: Asn) -> BTreeSet<Asn> {
        self.nodes
            .get(&asn)
            .map(|a| a.providers.clone())
            .unwrap_or_default()
    }

    /// Transit customers of `asn` (its *downstreams* in Fig. 8).
    pub fn customers(&self, asn: Asn) -> BTreeSet<Asn> {
        self.nodes
            .get(&asn)
            .map(|a| a.customers.clone())
            .unwrap_or_default()
    }

    /// Peers of `asn`.
    pub fn peers(&self, asn: Asn) -> BTreeSet<Asn> {
        self.nodes
            .get(&asn)
            .map(|a| a.peers.clone())
            .unwrap_or_default()
    }

    /// Number of upstream providers.
    pub fn upstream_count(&self, asn: Asn) -> usize {
        self.nodes.get(&asn).map(|a| a.providers.len()).unwrap_or(0)
    }

    /// Number of downstream customers.
    pub fn downstream_count(&self, asn: Asn) -> usize {
        self.nodes.get(&asn).map(|a| a.customers.len()).unwrap_or(0)
    }

    /// The customer cone of `asn`: the set of ASes reachable by walking
    /// only provider→customer edges, *including* `asn` itself. This is the
    /// CAIDA AS-rank notion used to size transit networks.
    pub fn customer_cone(&self, asn: Asn) -> BTreeSet<Asn> {
        let mut cone = BTreeSet::new();
        let mut stack = vec![asn];
        while let Some(n) = stack.pop() {
            if !cone.insert(n) {
                continue;
            }
            if let Some(adj) = self.nodes.get(&n) {
                stack.extend(adj.customers.iter().copied());
            }
        }
        cone
    }

    /// ASes with no providers (the "clique"/top of the hierarchy).
    pub fn transit_free(&self) -> BTreeSet<Asn> {
        self.nodes
            .iter()
            .filter(|(_, adj)| adj.providers.is_empty() && !adj.customers.is_empty())
            .map(|(&asn, _)| asn)
            .collect()
    }

    /// All edges, in canonical form, sorted — suitable for serial-1 output.
    pub fn edges(&self) -> Vec<RelEdge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (&asn, adj) in &self.nodes {
            for &c in &adj.customers {
                out.push(RelEdge::transit(asn, c));
            }
            for &p in &adj.peers {
                if asn <= p {
                    out.push(RelEdge::peering(asn, p));
                }
            }
        }
        out.sort_by_key(|e| (e.a, e.b, e.rel.code()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AsGraph {
        // 701 ─┬─> 8048 ──> 27889
        //      └─> 6306 <── 1299
        // 8048 <peer> 6306
        AsGraph::from_edges([
            RelEdge::transit(Asn(701), Asn(8048)),
            RelEdge::transit(Asn(701), Asn(6306)),
            RelEdge::transit(Asn(1299), Asn(6306)),
            RelEdge::transit(Asn(8048), Asn(27889)),
            RelEdge::peering(Asn(8048), Asn(6306)),
        ])
    }

    #[test]
    fn adjacency_construction() {
        let g = toy();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.providers(Asn(8048)), BTreeSet::from([Asn(701)]));
        assert_eq!(
            g.providers(Asn(6306)),
            BTreeSet::from([Asn(701), Asn(1299)])
        );
        assert_eq!(g.customers(Asn(8048)), BTreeSet::from([Asn(27889)]));
        assert_eq!(g.peers(Asn(8048)), BTreeSet::from([Asn(6306)]));
        assert_eq!(g.peers(Asn(6306)), BTreeSet::from([Asn(8048)]));
        assert_eq!(g.upstream_count(Asn(6306)), 2);
        assert_eq!(g.downstream_count(Asn(701)), 2);
        assert_eq!(g.upstream_count(Asn(99999)), 0);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = toy();
        assert!(!g.insert(RelEdge::transit(Asn(701), Asn(8048))));
        assert!(
            !g.insert(RelEdge::peering(Asn(6306), Asn(8048))),
            "peer edges are symmetric"
        );
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn customer_cone() {
        let g = toy();
        assert_eq!(
            g.customer_cone(Asn(701)),
            BTreeSet::from([Asn(701), Asn(8048), Asn(6306), Asn(27889)])
        );
        assert_eq!(
            g.customer_cone(Asn(8048)),
            BTreeSet::from([Asn(8048), Asn(27889)])
        );
        assert_eq!(g.customer_cone(Asn(27889)), BTreeSet::from([Asn(27889)]));
        // Unknown AS: cone of itself only.
        assert_eq!(g.customer_cone(Asn(4)), BTreeSet::from([Asn(4)]));
    }

    #[test]
    fn cone_handles_cycles() {
        // Pathological mutual-transit loop must terminate.
        let g = AsGraph::from_edges([
            RelEdge::transit(Asn(1), Asn(2)),
            RelEdge::transit(Asn(2), Asn(1)),
        ]);
        assert_eq!(g.customer_cone(Asn(1)), BTreeSet::from([Asn(1), Asn(2)]));
    }

    #[test]
    fn transit_free_clique() {
        let g = toy();
        assert_eq!(g.transit_free(), BTreeSet::from([Asn(701), Asn(1299)]));
    }

    #[test]
    fn edges_roundtrip_through_serial1() {
        let g = toy();
        let text = crate::serial1::to_text(&g.edges(), "test");
        let g2 = AsGraph::from_edges(crate::serial1::parse(&text).unwrap());
        assert_eq!(g2.edges(), g.edges());
        assert_eq!(g2.edge_count(), g.edge_count());
    }
}
