//! AS-relationship inference from AS paths — the Gao-style baseline.
//!
//! CAIDA's serial-1 files are themselves *inferred* from BGP paths. To
//! make the substrate honest about that provenance, this module
//! implements the classic degree-based heuristic (Gao 2001): in each
//! path, the AS with the highest degree is the "top"; edges before it
//! are customer→provider, edges after it are provider→customer, and the
//! edge at the top between two similar-degree ASes is peering. Tests
//! check the inference against the ground-truth topology the paths were
//! generated from.

use crate::graph::AsGraph;
use crate::paths::PathOutcome;
use crate::relationship::RelEdge;
use lacnet_types::Asn;
use std::collections::{BTreeMap, BTreeSet};

/// Votes accumulated for one undirected AS pair.
#[derive(Debug, Clone, Copy, Default)]
struct PairVotes {
    /// Votes for "first (lower ASN) is the provider".
    first_provider: u32,
    /// Votes for "second (higher ASN) is the provider".
    second_provider: u32,
    /// Votes for peering.
    peer: u32,
}

/// Relationship inference over a set of AS paths.
#[derive(Debug, Clone, Default)]
pub struct RelationshipInference {
    /// Distinct-neighbour degree (Gao's metric), not occurrence counts —
    /// transited hubs would otherwise dwarf everything.
    neighbors: BTreeMap<Asn, BTreeSet<Asn>>,
    votes: BTreeMap<(Asn, Asn), PairVotes>,
    peer_ratio_threshold: f64,
}

impl RelationshipInference {
    /// Create an inference engine. `peer_ratio_threshold` is the degree
    /// ratio under which a top-of-path edge votes "peer" (Gao used ≈R=60
    /// on real data; the synthetic worlds here are cleaner and use small
    /// thresholds).
    pub fn new(peer_ratio_threshold: f64) -> Self {
        RelationshipInference {
            peer_ratio_threshold,
            ..Default::default()
        }
    }

    /// First pass: collect each AS's distinct neighbours across the path
    /// set; the degree is the neighbour-set size.
    pub fn observe_degrees(&mut self, paths: &[Vec<Asn>]) {
        for path in paths {
            for w in path.windows(2) {
                self.neighbors.entry(w[0]).or_default().insert(w[1]);
                self.neighbors.entry(w[1]).or_default().insert(w[0]);
            }
        }
    }

    fn deg(&self, a: Asn) -> u32 {
        self.neighbors.get(&a).map(|s| s.len() as u32).unwrap_or(0)
    }

    /// Second pass: vote on each edge of each path. Paths run vantage →
    /// origin; the "top" is the maximum-degree AS on the path.
    pub fn observe_paths(&mut self, paths: &[Vec<Asn>]) {
        for path in paths {
            if path.len() < 2 {
                continue;
            }
            let top_idx = (0..path.len())
                .max_by_key(|&i| self.deg(path[i]))
                .expect("non-empty path");
            for (i, w) in path.windows(2).enumerate() {
                let (a, b) = (w[0], w[1]);
                let key = if a < b { (a, b) } else { (b, a) };
                // Degree lookups happen before the mutable votes borrow.
                let (d1, d2) = (self.deg(w[0]).max(1) as f64, self.deg(w[1]).max(1) as f64);
                let v = self.votes.entry(key).or_default();
                // The path runs vantage → origin. On the origin side of
                // the top (i ≥ top_idx) the announcement climbed
                // customer→provider, so the AS closer to the top —
                // path[i] — is the provider; on the vantage side it is
                // path[i+1]. Translate that into the sorted key's frame.
                let provider = if i >= top_idx { w[0] } else { w[1] };
                let first_is_provider = provider == key.0;
                // Only an edge touching the peak of the path can be the
                // valley-free plateau (ties between equal-degree tier-1s
                // land on either side of the argmax), and it votes peer
                // only when the two degrees are comparable. Everything
                // else is a climb or a descent.
                let at_top = i == top_idx || i + 1 == top_idx;
                let ratio = d1.max(d2) / d1.min(d2);
                if at_top && ratio <= self.peer_ratio_threshold {
                    v.peer += 1;
                } else if first_is_provider {
                    v.first_provider += 1;
                } else {
                    v.second_provider += 1;
                }
            }
        }
    }

    /// Produce the inferred edge set by majority vote per pair.
    pub fn infer(&self) -> Vec<RelEdge> {
        self.votes
            .iter()
            .map(|(&(a, b), v)| {
                if v.peer > v.first_provider && v.peer > v.second_provider {
                    RelEdge::peering(a, b)
                } else if v.first_provider >= v.second_provider {
                    RelEdge::transit(a, b)
                } else {
                    RelEdge::transit(b, a)
                }
            })
            .collect()
    }

    /// Convenience: run both passes over a synthetic collector RIB built
    /// by propagating every AS of `graph` as an origin, then infer.
    pub fn infer_from_graph(graph: &AsGraph, peer_ratio_threshold: f64) -> Vec<RelEdge> {
        let mut paths = Vec::new();
        for origin in graph.asns() {
            paths.extend(PathOutcome::compute(graph, origin).all_paths());
        }
        Self::infer_from_paths(paths, peer_ratio_threshold)
    }

    /// [`infer_from_graph`] with the per-origin path computations served
    /// through a [`ConeCache`]: identical output, but each `(month,
    /// origin)` route tree is computed at most once per process, however
    /// many inference runs share the cache.
    ///
    /// The caller vouches that `graph` is the `month` snapshot, as with
    /// every other month-keyed memo on the cache.
    ///
    /// [`infer_from_graph`]: RelationshipInference::infer_from_graph
    pub fn infer_from_graph_cached(
        graph: &AsGraph,
        month: lacnet_types::MonthStamp,
        peer_ratio_threshold: f64,
        cache: &crate::cone::ConeCache,
    ) -> Vec<RelEdge> {
        let mut paths = Vec::new();
        for origin in graph.asns() {
            paths.extend(cache.paths(month, graph, origin).all_paths());
        }
        Self::infer_from_paths(paths, peer_ratio_threshold)
    }

    fn infer_from_paths(paths: Vec<Vec<Asn>>, peer_ratio_threshold: f64) -> Vec<RelEdge> {
        let mut inf = RelationshipInference::new(peer_ratio_threshold);
        inf.observe_degrees(&paths);
        inf.observe_paths(&paths);
        inf.infer()
    }
}

/// Accuracy of an inferred edge set against ground truth: the fraction of
/// ground-truth edges recovered with the correct type and orientation.
pub fn accuracy(truth: &AsGraph, inferred: &[RelEdge]) -> f64 {
    let truth_edges = truth.edges();
    if truth_edges.is_empty() {
        return 1.0;
    }
    let inferred: std::collections::BTreeSet<(Asn, Asn, i8)> = inferred
        .iter()
        .map(|e| {
            let c = e.canonical();
            (c.a, c.b, c.rel.code())
        })
        .collect();
    let hit = truth_edges
        .iter()
        .filter(|e| {
            let c = e.canonical();
            inferred.contains(&(c.a, c.b, c.rel.code()))
        })
        .count();
    hit as f64 / truth_edges.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::AsRelationship;

    /// A clean three-tier hierarchy: two peered tier-1s with four
    /// tier-2 customers each, three stubs per tier-2. Degrees descend
    /// tier by tier (5 > 4 > 1), as the heuristic assumes.
    fn hierarchy() -> AsGraph {
        let mut edges = vec![RelEdge::peering(Asn(1), Asn(2))];
        for t2 in 10..18u32 {
            let t1 = if t2 % 2 == 0 { 1 } else { 2 };
            edges.push(RelEdge::transit(Asn(t1), Asn(t2)));
            for s in 0..3u32 {
                edges.push(RelEdge::transit(Asn(t2), Asn(t2 * 10 + s)));
            }
        }
        AsGraph::from_edges(edges)
    }

    #[test]
    fn recovers_clean_hierarchy() {
        let g = hierarchy();
        let inferred = RelationshipInference::infer_from_graph(&g, 1.1);
        let acc = accuracy(&g, &inferred);
        assert!(acc >= 0.85, "accuracy {acc}");
    }

    #[test]
    fn transit_orientation_mostly_correct() {
        let g = hierarchy();
        let inferred = RelationshipInference::infer_from_graph(&g, 1.1);
        // Tier-1 → tier-2 edges must all be oriented downward.
        let mut correct = 0;
        let mut total = 0;
        for e in &inferred {
            if e.rel == AsRelationship::ProviderToCustomer
                && (e.a == Asn(1) || e.a == Asn(2))
                && e.b.raw() >= 10
                && e.b.raw() < 18
            {
                correct += 1;
            }
            if (e.touches(Asn(1)) || e.touches(Asn(2)))
                && e.rel == AsRelationship::ProviderToCustomer
            {
                total += 1;
            }
        }
        assert!(total > 0);
        assert_eq!(
            correct, total,
            "some tier-1 transit edges inverted: {inferred:?}"
        );
    }

    #[test]
    fn peer_edge_found_at_the_top() {
        let g = hierarchy();
        let inferred = RelationshipInference::infer_from_graph(&g, 1.1);
        assert!(
            inferred.iter().any(|e| e.rel == AsRelationship::PeerToPeer
                && e.touches(Asn(1))
                && e.touches(Asn(2))),
            "tier-1 peering not recovered: {inferred:?}"
        );
    }

    #[test]
    fn cached_inference_matches_and_memoizes_paths() {
        use crate::cone::ConeCache;
        let g = hierarchy();
        let cache = ConeCache::new();
        let month = lacnet_types::MonthStamp::new(2020, 1);
        let cached = RelationshipInference::infer_from_graph_cached(&g, month, 1.1, &cache);
        assert_eq!(cached, RelationshipInference::infer_from_graph(&g, 1.1));
        let n = g.asns().count();
        assert_eq!(cache.path_computations(), n);
        // A second run over the same snapshot is pure cache hits.
        RelationshipInference::infer_from_graph_cached(&g, month, 1.1, &cache);
        assert_eq!(cache.path_computations(), n);
    }

    #[test]
    fn empty_inputs() {
        let inf = RelationshipInference::new(1.5);
        assert!(inf.infer().is_empty());
        assert_eq!(accuracy(&AsGraph::new(), &[]), 1.0);
    }

    #[test]
    fn accuracy_detects_inversion() {
        let g = AsGraph::from_edges([RelEdge::transit(Asn(1), Asn(2))]);
        assert_eq!(accuracy(&g, &[RelEdge::transit(Asn(1), Asn(2))]), 1.0);
        assert_eq!(accuracy(&g, &[RelEdge::transit(Asn(2), Asn(1))]), 0.0);
        assert_eq!(accuracy(&g, &[RelEdge::peering(Asn(1), Asn(2))]), 0.0);
    }
}
