//! Valley-free (Gao–Rexford) route propagation.
//!
//! Deciding whether an announced prefix is *visible* at route collectors —
//! the signal behind Fig. 2's announced-space series and Fig. 14's
//! Telefónica visibility heatmap — requires knowing which ASes learn a
//! route to a given origin under standard export policies:
//!
//! * routes learned **from a customer** are exported to everyone;
//! * routes learned **from a peer or provider** are exported only to
//!   customers;
//! * preference is customer > peer > provider, then shorter AS path.
//!
//! We compute the all-AS outcome for one origin with the classic
//! three-phase BFS (up the customer→provider edges, one hop across peer
//! edges, down the provider→customer edges), which is `O(V + E)` per
//! origin.

use crate::graph::AsGraph;
use lacnet_types::Asn;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// How an AS learned its best route to the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteKind {
    /// The AS is the origin itself.
    Origin,
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
}

/// The best route one AS holds toward the origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Preference class of the best route.
    pub kind: RouteKind,
    /// AS-path length in hops (origin = 0).
    pub hops: u32,
}

/// Result of propagating one origin's announcement over the graph.
#[derive(Debug, Clone)]
pub struct PropagationOutcome {
    origin: Asn,
    routes: BTreeMap<Asn, Route>,
}

impl PropagationOutcome {
    /// The origin AS.
    pub fn origin(&self) -> Asn {
        self.origin
    }

    /// The best route `asn` holds, if it learned one.
    pub fn route(&self, asn: Asn) -> Option<Route> {
        self.routes.get(&asn).copied()
    }

    /// Whether `asn` learned any route.
    pub fn reaches(&self, asn: Asn) -> bool {
        self.routes.contains_key(&asn)
    }

    /// Number of ASes with a route (including the origin).
    pub fn reach_count(&self) -> usize {
        self.routes.len()
    }

    /// Fraction of the given collector set that learned a route. Empty
    /// collector sets yield 0.
    pub fn visibility(&self, collectors: &[Asn]) -> f64 {
        if collectors.is_empty() {
            return 0.0;
        }
        let seen = collectors.iter().filter(|&&c| self.reaches(c)).count();
        seen as f64 / collectors.len() as f64
    }

    /// Iterate over `(asn, route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Route)> + '_ {
        self.routes.iter().map(|(&a, &r)| (a, r))
    }
}

/// Valley-free propagation simulator over one topology snapshot.
pub struct RouteSim<'g> {
    graph: &'g AsGraph,
}

impl<'g> RouteSim<'g> {
    /// Create a simulator borrowing the graph.
    pub fn new(graph: &'g AsGraph) -> Self {
        RouteSim { graph }
    }

    /// Propagate an announcement originated by `origin` to every AS the
    /// export rules allow, recording each AS's *best* route (preference
    /// class first, then hop count).
    pub fn propagate(&self, origin: Asn) -> PropagationOutcome {
        let mut routes: BTreeMap<Asn, Route> = BTreeMap::new();
        routes.insert(
            origin,
            Route {
                kind: RouteKind::Origin,
                hops: 0,
            },
        );

        // Phase 1 — customer routes ride up provider edges. BFS gives
        // minimal hop counts within the class.
        let mut queue: VecDeque<Asn> = VecDeque::from([origin]);
        while let Some(u) = queue.pop_front() {
            let hops = routes[&u].hops;
            if let Some(adj) = self.graph.adjacency(u) {
                for &p in &adj.providers {
                    if let std::collections::btree_map::Entry::Vacant(slot) = routes.entry(p) {
                        slot.insert(Route {
                            kind: RouteKind::Customer,
                            hops: hops + 1,
                        });
                        queue.push_back(p);
                    }
                }
            }
        }

        // Phase 2 — every AS holding a customer (or origin) route exports
        // it one hop across peer edges. Peer routes do not propagate
        // further across peers.
        let phase1: Vec<(Asn, u32)> = routes.iter().map(|(&a, r)| (a, r.hops)).collect();
        for (u, hops) in phase1 {
            if let Some(adj) = self.graph.adjacency(u) {
                for &v in &adj.peers {
                    let candidate = Route {
                        kind: RouteKind::Peer,
                        hops: hops + 1,
                    };
                    // Customer/origin routes always win regardless of
                    // length; an existing peer route is only replaced by a
                    // strictly shorter one. (Provider routes cannot exist
                    // yet in this phase.)
                    let replace = match routes.get(&v) {
                        None => true,
                        Some(r) => r.kind == RouteKind::Peer && candidate.hops < r.hops,
                    };
                    if replace {
                        routes.insert(v, candidate);
                    }
                }
            }
        }

        // Phase 3 — all routed ASes export down customer edges; provider
        // routes keep flowing down. Multi-source BFS with heterogeneous
        // initial distances: seeding the FIFO in ascending hop order keeps
        // every recorded hop count minimal within the provider class.
        let mut seeds: Vec<Asn> = routes.keys().copied().collect();
        seeds.sort_by_key(|a| routes[a].hops);
        let mut queue: VecDeque<Asn> = seeds.into();
        while let Some(u) = queue.pop_front() {
            let hops = routes[&u].hops;
            if let Some(adj) = self.graph.adjacency(u) {
                for &c in &adj.customers {
                    if let std::collections::btree_map::Entry::Vacant(slot) = routes.entry(c) {
                        slot.insert(Route {
                            kind: RouteKind::Provider,
                            hops: hops + 1,
                        });
                        queue.push_back(c);
                    }
                }
            }
        }

        PropagationOutcome { origin, routes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::RelEdge;

    /// A small two-tier topology:
    ///
    /// ```text
    ///        10 ───peer─── 20          (tier 1)
    ///       /  \          /  \
    ///     11    12      21    22       (tier 2, customers of tier 1)
    ///      |                   |
    ///     111                 221      (stubs)
    /// ```
    fn two_tier() -> AsGraph {
        AsGraph::from_edges([
            RelEdge::peering(Asn(10), Asn(20)),
            RelEdge::transit(Asn(10), Asn(11)),
            RelEdge::transit(Asn(10), Asn(12)),
            RelEdge::transit(Asn(20), Asn(21)),
            RelEdge::transit(Asn(20), Asn(22)),
            RelEdge::transit(Asn(11), Asn(111)),
            RelEdge::transit(Asn(22), Asn(221)),
        ])
    }

    #[test]
    fn stub_announcement_reaches_everyone() {
        let g = two_tier();
        let out = RouteSim::new(&g).propagate(Asn(111));
        assert_eq!(out.reach_count(), g.node_count());
        // Up the chain: customer routes.
        assert_eq!(out.route(Asn(11)).unwrap().kind, RouteKind::Customer);
        assert_eq!(out.route(Asn(10)).unwrap().kind, RouteKind::Customer);
        // Across the peering: peer route at 20.
        assert_eq!(out.route(Asn(20)).unwrap().kind, RouteKind::Peer);
        // Down from both tier-1s: provider routes at the far stubs.
        assert_eq!(out.route(Asn(221)).unwrap().kind, RouteKind::Provider);
        assert_eq!(out.route(Asn(12)).unwrap().kind, RouteKind::Provider);
        // Hop counts: 111→11→10 is 2; 20 is 3; 22 is 4; 221 is 5.
        assert_eq!(out.route(Asn(10)).unwrap().hops, 2);
        assert_eq!(out.route(Asn(20)).unwrap().hops, 3);
        assert_eq!(out.route(Asn(221)).unwrap().hops, 5);
    }

    #[test]
    fn valley_freeness_blocks_peer_to_peer_transit() {
        // origin ── peer ── A ── peer ── B : B must NOT hear the route,
        // because A's peer-learned route is only exported to customers.
        let g = AsGraph::from_edges([
            RelEdge::peering(Asn(1), Asn(2)),
            RelEdge::peering(Asn(2), Asn(3)),
        ]);
        let out = RouteSim::new(&g).propagate(Asn(1));
        assert!(out.reaches(Asn(2)));
        assert!(
            !out.reaches(Asn(3)),
            "peer route must not re-export to a peer"
        );
    }

    #[test]
    fn provider_route_not_exported_upward() {
        // origin ── provider P ── its provider Q; then Q has a customer
        // route. But a *sibling customer* S of P hears a provider route
        // and must not export it to its own peer T.
        let g = AsGraph::from_edges([
            RelEdge::transit(Asn(5), Asn(1)), // P=5 provider of origin 1
            RelEdge::transit(Asn(5), Asn(6)), // S=6 sibling customer
            RelEdge::peering(Asn(6), Asn(7)), // T=7 peer of S
        ]);
        let out = RouteSim::new(&g).propagate(Asn(1));
        assert_eq!(out.route(Asn(6)).unwrap().kind, RouteKind::Provider);
        assert!(!out.reaches(Asn(7)), "provider route must not reach a peer");
    }

    #[test]
    fn origin_with_no_edges_reaches_only_itself() {
        let g = two_tier();
        let out = RouteSim::new(&g).propagate(Asn(999));
        assert_eq!(out.reach_count(), 1);
        assert!(out.reaches(Asn(999)));
        assert_eq!(out.route(Asn(999)).unwrap().kind, RouteKind::Origin);
    }

    #[test]
    fn visibility_fraction() {
        let g = two_tier();
        let out = RouteSim::new(&g).propagate(Asn(111));
        assert_eq!(out.visibility(&[Asn(10), Asn(20)]), 1.0);
        assert_eq!(out.visibility(&[]), 0.0);
        let out = RouteSim::new(&g).propagate(Asn(999));
        assert_eq!(out.visibility(&[Asn(10), Asn(20)]), 0.0);
    }

    #[test]
    fn preference_customer_over_peer() {
        // AS 30 hears the route both from its customer 31 (which hears it
        // from origin) and from its peer... construct: origin 40 is
        // customer of 31; 31 customer of 30; origin also peers with 30.
        let g = AsGraph::from_edges([
            RelEdge::transit(Asn(31), Asn(40)),
            RelEdge::transit(Asn(30), Asn(31)),
            RelEdge::peering(Asn(30), Asn(40)),
        ]);
        let out = RouteSim::new(&g).propagate(Asn(40));
        let r = out.route(Asn(30)).unwrap();
        assert_eq!(
            r.kind,
            RouteKind::Customer,
            "customer route preferred over shorter peer route"
        );
        assert_eq!(r.hops, 2);
    }

    #[test]
    fn peer_hop_counts_take_minimum() {
        // Origin 1 has two providers (2 short, 3 via a chain); peer X of
        // both should record the shorter peer path.
        let g = AsGraph::from_edges([
            RelEdge::transit(Asn(2), Asn(1)),
            RelEdge::transit(Asn(4), Asn(1)),
            RelEdge::transit(Asn(3), Asn(4)),
            RelEdge::peering(Asn(2), Asn(9)),
            RelEdge::peering(Asn(3), Asn(9)),
        ]);
        let out = RouteSim::new(&g).propagate(Asn(1));
        assert_eq!(
            out.route(Asn(9)).unwrap(),
            Route {
                kind: RouteKind::Peer,
                hops: 2
            }
        );
    }
}
