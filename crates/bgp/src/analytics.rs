//! Longitudinal AS-connectivity analytics.
//!
//! These are the derivations behind §6.1: the upstream/downstream degree
//! series of Fig. 8 and the provider-presence heatmap of Fig. 9 (which
//! providers served CANTV in which months, restricted to providers present
//! for at least twelve months).

use crate::cone::ConeCache;
use crate::store::TopologyArchive;
use lacnet_types::{Asn, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Monthly count of upstream (transit) providers of `asn` — Fig. 8 top.
pub fn upstream_series(archive: &TopologyArchive, asn: Asn) -> TimeSeries {
    archive
        .iter()
        .map(|(m, g)| (m, g.upstream_count(asn) as f64))
        .collect()
}

/// Monthly count of downstream (customer) ASes of `asn` — Fig. 8 bottom.
pub fn downstream_series(archive: &TopologyArchive, asn: Asn) -> TimeSeries {
    archive
        .iter()
        .map(|(m, g)| (m, g.downstream_count(asn) as f64))
        .collect()
}

/// Monthly size of the customer cone of `asn` — AS-rank's transit-size
/// metric, the quantity behind the Fig. 8 degree narrative. This is the
/// serial reference; [`cone_size_series_cached`] is the memoized path.
pub fn cone_size_series(archive: &TopologyArchive, asn: Asn) -> TimeSeries {
    archive
        .iter()
        .map(|(m, g)| (m, g.customer_cone(asn).len() as f64))
        .collect()
}

/// [`cone_size_series`] served through a [`ConeCache`]: identical output,
/// but each `(month, asn)` cone walks the graph at most once per process
/// however many analytics share the cache.
pub fn cone_size_series_cached(
    archive: &TopologyArchive,
    asn: Asn,
    cache: &ConeCache,
) -> TimeSeries {
    archive
        .iter()
        .map(|(m, g)| (m, cache.cone(m, g, asn).len() as f64))
        .collect()
}

/// Monthly transit degree of `asn`: distinct transit neighbours, i.e.
/// providers plus customers — the cone-adjacent analytic the Fig. 8/9
/// exodus story reads alongside cone size.
pub fn transit_degree_series(archive: &TopologyArchive, asn: Asn) -> TimeSeries {
    archive
        .iter()
        .map(|(m, g)| (m, (g.upstream_count(asn) + g.downstream_count(asn)) as f64))
        .collect()
}

/// [`transit_degree_series`] served through the cache's transit-neighbour
/// memo: identical output, and the memoized neighbourhoods are the very
/// rows [`ProviderPresence::compute_cached`] reads, so the Fig. 8 degree
/// panel and the Fig. 9 matrix share one walk per `(month, asn)`.
pub fn transit_degree_series_cached(
    archive: &TopologyArchive,
    asn: Asn,
    cache: &ConeCache,
) -> TimeSeries {
    archive
        .iter()
        .map(|(m, g)| {
            (
                m,
                cache.transit_neighbors(m, g, asn).transit_degree() as f64,
            )
        })
        .collect()
}

/// The Fig. 9 provider-presence matrix: for one customer AS, which
/// providers served it in which months.
#[derive(Debug, Clone)]
pub struct ProviderPresence {
    /// The customer AS the matrix describes.
    pub customer: Asn,
    /// Row labels: providers, ascending by ASN, that served the customer
    /// for at least the requested number of months.
    pub providers: Vec<Asn>,
    /// Column labels: every month in the archive, ascending.
    pub months: Vec<MonthStamp>,
    /// `presence[row][col]` — whether `providers[row]` served the customer
    /// in `months[col]`.
    pub presence: Vec<Vec<bool>>,
}

impl ProviderPresence {
    /// Build the matrix from an archive, keeping only providers present in
    /// at least `min_months` snapshots (the paper uses 12).
    pub fn compute(archive: &TopologyArchive, customer: Asn, min_months: usize) -> Self {
        Self::build(archive, customer, min_months, |_, graph| {
            graph.providers(customer)
        })
    }

    /// [`compute`](ProviderPresence::compute) served through the cache's
    /// transit-neighbour memo: identical output, but the per-month
    /// provider sets — the full matrix Fig. 9 consumes — are computed at
    /// most once per process and shared with the degree analytics.
    pub fn compute_cached(
        archive: &TopologyArchive,
        customer: Asn,
        min_months: usize,
        cache: &ConeCache,
    ) -> Self {
        Self::build(archive, customer, min_months, |m, graph| {
            cache
                .transit_neighbors(m, graph, customer)
                .providers
                .clone()
        })
    }

    fn build(
        archive: &TopologyArchive,
        customer: Asn,
        min_months: usize,
        mut providers_at: impl FnMut(
            MonthStamp,
            &crate::graph::AsGraph,
        ) -> std::collections::BTreeSet<Asn>,
    ) -> Self {
        let months: Vec<MonthStamp> = archive.iter().map(|(m, _)| m).collect();
        let mut tally: BTreeMap<Asn, Vec<bool>> = BTreeMap::new();
        for (col, (m, graph)) in archive.iter().enumerate() {
            for p in providers_at(m, graph) {
                tally.entry(p).or_insert_with(|| vec![false; months.len()])[col] = true;
            }
        }
        tally.retain(|_, row| row.iter().filter(|&&b| b).count() >= min_months);
        let providers: Vec<Asn> = tally.keys().copied().collect();
        let presence: Vec<Vec<bool>> = tally.into_values().collect();
        ProviderPresence {
            customer,
            providers,
            months,
            presence,
        }
    }

    /// Months during which `provider` served the customer (row sum).
    pub fn months_served(&self, provider: Asn) -> usize {
        self.providers
            .iter()
            .position(|&p| p == provider)
            .map(|i| self.presence[i].iter().filter(|&&b| b).count())
            .unwrap_or(0)
    }

    /// The last month in which `provider` appears, if ever.
    pub fn last_seen(&self, provider: Asn) -> Option<MonthStamp> {
        let row = self.providers.iter().position(|&p| p == provider)?;
        self.presence[row]
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &b)| b)
            .map(|(col, _)| self.months[col])
    }

    /// The first month in which `provider` appears, if ever.
    pub fn first_seen(&self, provider: Asn) -> Option<MonthStamp> {
        let row = self.providers.iter().position(|&p| p == provider)?;
        self.presence[row]
            .iter()
            .enumerate()
            .find(|(_, &b)| b)
            .map(|(col, _)| self.months[col])
    }
}

/// Providers of `asn` that departed (present at some point, absent in the
/// final snapshot), with their last month of service — the §6.1 exodus
/// narrative ("Verizon, Sprint and AT&T in 2013, GTT in 2017, Level3 in
/// 2018 …").
pub fn departed_providers(archive: &TopologyArchive, asn: Asn) -> Vec<(Asn, MonthStamp)> {
    let Some(last_month) = archive.last_month() else {
        return Vec::new();
    };
    let final_providers = archive
        .get(last_month)
        .map(|g| g.providers(asn))
        .unwrap_or_default();
    let mut last_seen: BTreeMap<Asn, MonthStamp> = BTreeMap::new();
    for (m, g) in archive.iter() {
        for p in g.providers(asn) {
            last_seen.insert(p, m);
        }
    }
    last_seen
        .into_iter()
        .filter(|(p, _)| !final_providers.contains(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AsGraph;
    use crate::relationship::RelEdge;

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    /// Three-month archive: AS701 serves 8048 in months 1-2 then leaves;
    /// AS23520 serves in all three; AS5511 appears only in month 3.
    fn toy_archive() -> TopologyArchive {
        let mut arch = TopologyArchive::new();
        arch.insert(
            m(2013, 1),
            AsGraph::from_edges([
                RelEdge::transit(Asn(701), Asn(8048)),
                RelEdge::transit(Asn(23520), Asn(8048)),
                RelEdge::transit(Asn(8048), Asn(27889)),
            ]),
        );
        arch.insert(
            m(2013, 2),
            AsGraph::from_edges([
                RelEdge::transit(Asn(701), Asn(8048)),
                RelEdge::transit(Asn(23520), Asn(8048)),
                RelEdge::transit(Asn(8048), Asn(27889)),
                RelEdge::transit(Asn(8048), Asn(21826)),
            ]),
        );
        arch.insert(
            m(2013, 3),
            AsGraph::from_edges([
                RelEdge::transit(Asn(23520), Asn(8048)),
                RelEdge::transit(Asn(5511), Asn(8048)),
                RelEdge::transit(Asn(8048), Asn(27889)),
                RelEdge::transit(Asn(8048), Asn(21826)),
            ]),
        );
        arch
    }

    #[test]
    fn degree_series() {
        let arch = toy_archive();
        let up = upstream_series(&arch, Asn(8048));
        assert_eq!(up.get(m(2013, 1)), Some(2.0));
        assert_eq!(up.get(m(2013, 3)), Some(2.0));
        let down = downstream_series(&arch, Asn(8048));
        assert_eq!(down.get(m(2013, 1)), Some(1.0));
        assert_eq!(down.get(m(2013, 3)), Some(2.0));
        // Absent AS: all-zero series, not missing months.
        let up = upstream_series(&arch, Asn(99999));
        assert_eq!(up.get(m(2013, 2)), Some(0.0));
    }

    #[test]
    fn cone_and_transit_degree_series() {
        let arch = toy_archive();
        let cones = cone_size_series(&arch, Asn(8048));
        // Month 1: {8048, 27889}; month 3: {8048, 27889, 21826}.
        assert_eq!(cones.get(m(2013, 1)), Some(2.0));
        assert_eq!(cones.get(m(2013, 3)), Some(3.0));
        let cache = ConeCache::new();
        assert_eq!(cone_size_series_cached(&arch, Asn(8048), &cache), cones);
        assert_eq!(cache.computations(), 3);
        // Serving the series again is pure cache hits.
        assert_eq!(cone_size_series_cached(&arch, Asn(8048), &cache), cones);
        assert_eq!(cache.computations(), 3);
        let deg = transit_degree_series(&arch, Asn(8048));
        assert_eq!(deg.get(m(2013, 1)), Some(3.0));
        assert_eq!(deg.get(m(2013, 3)), Some(4.0));
    }

    #[test]
    fn cached_variants_match_serial_and_share_the_memo() {
        let arch = toy_archive();
        let cache = ConeCache::new();
        assert_eq!(
            transit_degree_series_cached(&arch, Asn(8048), &cache),
            transit_degree_series(&arch, Asn(8048))
        );
        assert_eq!(cache.degree_computations(), 3);
        let pp = ProviderPresence::compute_cached(&arch, Asn(8048), 1, &cache);
        let serial = ProviderPresence::compute(&arch, Asn(8048), 1);
        assert_eq!(pp.providers, serial.providers);
        assert_eq!(pp.months, serial.months);
        assert_eq!(pp.presence, serial.presence);
        assert_eq!(
            cache.degree_computations(),
            3,
            "the matrix reuses the degree series' memoized neighbourhoods"
        );
    }

    #[test]
    fn presence_matrix() {
        let arch = toy_archive();
        let pp = ProviderPresence::compute(&arch, Asn(8048), 1);
        assert_eq!(pp.providers, vec![Asn(701), Asn(5511), Asn(23520)]);
        assert_eq!(pp.months.len(), 3);
        assert_eq!(pp.months_served(Asn(701)), 2);
        assert_eq!(pp.months_served(Asn(23520)), 3);
        assert_eq!(pp.months_served(Asn(5511)), 1);
        assert_eq!(pp.last_seen(Asn(701)), Some(m(2013, 2)));
        assert_eq!(pp.first_seen(Asn(5511)), Some(m(2013, 3)));
        assert_eq!(pp.last_seen(Asn(9999)), None);
    }

    #[test]
    fn presence_matrix_min_months_filter() {
        let arch = toy_archive();
        let pp = ProviderPresence::compute(&arch, Asn(8048), 2);
        assert_eq!(
            pp.providers,
            vec![Asn(701), Asn(23520)],
            "5511 served only 1 month"
        );
        let pp = ProviderPresence::compute(&arch, Asn(8048), 4);
        assert!(pp.providers.is_empty());
    }

    #[test]
    fn departures() {
        let arch = toy_archive();
        let gone = departed_providers(&arch, Asn(8048));
        assert_eq!(gone, vec![(Asn(701), m(2013, 2))]);
        assert!(departed_providers(&TopologyArchive::new(), Asn(8048)).is_empty());
    }
}
