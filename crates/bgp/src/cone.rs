//! Shared memoization of customer cones across sweep workers.
//!
//! The Fig. 8/9 analytics walk [`AsGraph::customer_cone`] for the same
//! `(month, asn)` pairs from many places — degree panels, transit
//! heatmaps, prewarming, dataset export — and, under
//! `lacnet_types::sweep`, from many racing worker threads at once.
//! [`ConeCache`] memoizes each cone the same way the crisis crate's
//! `SnapshotCache` memoizes pfx2as tables: a slot map under a read-write
//! lock, with a `OnceLock` per key so each cone BFS runs **at most once
//! per process** no matter how many workers ask for it concurrently.
//! Distinct keys still compute in parallel.

use crate::graph::AsGraph;
use lacnet_types::{Asn, MonthStamp};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Thread-safe, compute-at-most-once cache of customer cones keyed by
/// `(month, asn)`.
#[derive(Default)]
pub struct ConeCache {
    #[allow(clippy::type_complexity)]
    slots: RwLock<BTreeMap<(MonthStamp, Asn), Arc<OnceLock<Arc<BTreeSet<Asn>>>>>>,
    computations: AtomicUsize,
}

impl ConeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The customer cone of `asn` in `graph` (the snapshot for `month`),
    /// computing it on first use and serving the shared result afterwards.
    ///
    /// The caller vouches that `graph` *is* the `month` snapshot — the
    /// cache keys on the month stamp, not the graph contents, exactly as
    /// the pfx2as `SnapshotCache` keys on the month of the table it
    /// derives.
    pub fn cone(&self, month: MonthStamp, graph: &AsGraph, asn: Asn) -> Arc<BTreeSet<Asn>> {
        self.get_or_compute(month, asn, || graph.customer_cone(asn))
    }

    /// The cone for `(month, asn)`, computing it with `compute` on first
    /// use.
    pub fn get_or_compute(
        &self,
        month: MonthStamp,
        asn: Asn,
        compute: impl FnOnce() -> BTreeSet<Asn>,
    ) -> Arc<BTreeSet<Asn>> {
        let key = (month, asn);
        let slot = {
            let slots = self.slots.read().expect("cone cache lock poisoned");
            slots.get(&key).cloned()
        };
        let slot = match slot {
            Some(slot) => slot,
            None => {
                let mut slots = self.slots.write().expect("cone cache lock poisoned");
                slots.entry(key).or_default().clone()
            }
        };
        slot.get_or_init(|| {
            self.computations.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        })
        .clone()
    }

    /// How many cones have actually been computed (not served from cache)
    /// so far.
    pub fn computations(&self) -> usize {
        self.computations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::{AsRelationship, RelEdge};
    use lacnet_types::sweep;

    fn chain_graph() -> AsGraph {
        // 1 → 2 → 3 (p2c chain): cone(1) = {1,2,3}.
        AsGraph::from_edges([
            RelEdge {
                a: Asn(1),
                b: Asn(2),
                rel: AsRelationship::ProviderToCustomer,
            },
            RelEdge {
                a: Asn(2),
                b: Asn(3),
                rel: AsRelationship::ProviderToCustomer,
            },
        ])
    }

    #[test]
    fn serves_identical_cones_and_computes_once() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        let first = cache.cone(m, &g, Asn(1));
        assert_eq!(*first, g.customer_cone(Asn(1)));
        let again = cache.cone(m, &g, Asn(1));
        assert!(Arc::ptr_eq(&first, &again), "second hit shares the Arc");
        assert_eq!(cache.computations(), 1);
        // A different month or AS is a different key.
        cache.cone(MonthStamp::new(2020, 2), &g, Asn(1));
        cache.cone(m, &g, Asn(2));
        assert_eq!(cache.computations(), 3);
    }

    #[test]
    fn unknown_as_behaves_like_the_graph() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        assert_eq!(
            *cache.cone(m, &g, Asn(999)),
            BTreeSet::from([Asn(999)]),
            "unknown AS cones are the singleton, as customer_cone defines"
        );
    }

    #[test]
    fn racing_workers_compute_each_key_once() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        let hits: Vec<Asn> = (0..64).map(|i| Asn(1 + (i % 2))).collect();
        let cones = sweep::parallel_map_with(8, &hits, |&asn| cache.cone(m, &g, asn));
        for (asn, cone) in hits.iter().zip(&cones) {
            assert_eq!(**cone, g.customer_cone(*asn));
        }
        assert_eq!(cache.computations(), 2, "two distinct keys, two BFS runs");
    }
}
