//! Shared memoization of customer cones across sweep workers.
//!
//! The Fig. 8/9 analytics walk [`AsGraph::customer_cone`] for the same
//! `(month, asn)` pairs from many places — degree panels, transit
//! heatmaps, prewarming, dataset export — and, under
//! `lacnet_types::sweep`, from many racing worker threads at once.
//! [`ConeCache`] memoizes each cone the same way the crisis crate's
//! `SnapshotCache` memoizes pfx2as tables: a slot map under a read-write
//! lock, with a `OnceLock` per key so each cone BFS runs **at most once
//! per process** no matter how many workers ask for it concurrently.
//! Distinct keys still compute in parallel.
//!
//! The cache also memoizes the two other per-`(month, asn)` walks the
//! battery repeats: the transit-neighbour sets behind the Fig. 9
//! presence matrix and transit-degree series, and the [`PathOutcome`]
//! route trees the inference extension recomputes per origin.

use crate::graph::AsGraph;
use crate::paths::PathOutcome;
use lacnet_types::{Asn, MonthStamp};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A keyed compute-at-most-once store: one `OnceLock` per key, a counter
/// of actual computations. The building block behind every memo here.
struct SlotMap<K, V> {
    #[allow(clippy::type_complexity)]
    slots: RwLock<BTreeMap<K, Arc<OnceLock<Arc<V>>>>>,
    computations: AtomicUsize,
}

impl<K, V> Default for SlotMap<K, V> {
    fn default() -> Self {
        SlotMap {
            slots: RwLock::new(BTreeMap::new()),
            computations: AtomicUsize::new(0),
        }
    }
}

impl<K: Ord + Clone, V> SlotMap<K, V> {
    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> Arc<V> {
        let slot = {
            let slots = self.slots.read().expect("cone cache lock poisoned");
            slots.get(&key).cloned()
        };
        let slot = match slot {
            Some(slot) => slot,
            None => {
                let mut slots = self.slots.write().expect("cone cache lock poisoned");
                slots.entry(key).or_default().clone()
            }
        };
        slot.get_or_init(|| {
            self.computations.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        })
        .clone()
    }

    fn computations(&self) -> usize {
        self.computations.load(Ordering::Relaxed)
    }
}

/// The transit neighbourhood of one AS in one snapshot: who provides to
/// it and who buys from it — the row ingredients of the Fig. 9 presence
/// matrix and the terms of the transit-degree series.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransitNeighbors {
    /// Providers of the AS in this snapshot.
    pub providers: BTreeSet<Asn>,
    /// Customers of the AS in this snapshot.
    pub customers: BTreeSet<Asn>,
}

impl TransitNeighbors {
    /// Distinct transit neighbours (providers plus customers).
    pub fn transit_degree(&self) -> usize {
        self.providers.len() + self.customers.len()
    }
}

/// Thread-safe, compute-at-most-once cache of per-`(month, asn)` graph
/// walks: customer cones, transit neighbourhoods, and path outcomes.
#[derive(Default)]
pub struct ConeCache {
    cones: SlotMap<(MonthStamp, Asn), BTreeSet<Asn>>,
    degrees: SlotMap<(MonthStamp, Asn), TransitNeighbors>,
    paths: SlotMap<(MonthStamp, Asn), PathOutcome>,
}

impl ConeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The customer cone of `asn` in `graph` (the snapshot for `month`),
    /// computing it on first use and serving the shared result afterwards.
    ///
    /// The caller vouches that `graph` *is* the `month` snapshot — the
    /// cache keys on the month stamp, not the graph contents, exactly as
    /// the pfx2as `SnapshotCache` keys on the month of the table it
    /// derives.
    pub fn cone(&self, month: MonthStamp, graph: &AsGraph, asn: Asn) -> Arc<BTreeSet<Asn>> {
        self.get_or_compute(month, asn, || graph.customer_cone(asn))
    }

    /// The cone for `(month, asn)`, computing it with `compute` on first
    /// use.
    pub fn get_or_compute(
        &self,
        month: MonthStamp,
        asn: Asn,
        compute: impl FnOnce() -> BTreeSet<Asn>,
    ) -> Arc<BTreeSet<Asn>> {
        self.cones.get_or_compute((month, asn), compute)
    }

    /// How many cones have actually been computed (not served from cache)
    /// so far.
    pub fn computations(&self) -> usize {
        self.cones.computations()
    }

    /// The transit neighbourhood of `asn` in the `month` snapshot,
    /// computed at most once per key. Same month/graph contract as
    /// [`cone`](ConeCache::cone).
    pub fn transit_neighbors(
        &self,
        month: MonthStamp,
        graph: &AsGraph,
        asn: Asn,
    ) -> Arc<TransitNeighbors> {
        self.degrees
            .get_or_compute((month, asn), || TransitNeighbors {
                providers: graph.providers(asn),
                customers: graph.customers(asn),
            })
    }

    /// How many transit neighbourhoods have actually been computed.
    pub fn degree_computations(&self) -> usize {
        self.degrees.computations()
    }

    /// The [`PathOutcome`] for `origin` in the `month` snapshot, computed
    /// at most once per key — the inference extension replays the same
    /// origins across runs, so the route trees are shared.
    pub fn paths(&self, month: MonthStamp, graph: &AsGraph, origin: Asn) -> Arc<PathOutcome> {
        self.paths
            .get_or_compute((month, origin), || PathOutcome::compute(graph, origin))
    }

    /// How many path outcomes have actually been computed.
    pub fn path_computations(&self) -> usize {
        self.paths.computations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::{AsRelationship, RelEdge};
    use lacnet_types::sweep;

    fn chain_graph() -> AsGraph {
        // 1 → 2 → 3 (p2c chain): cone(1) = {1,2,3}.
        AsGraph::from_edges([
            RelEdge {
                a: Asn(1),
                b: Asn(2),
                rel: AsRelationship::ProviderToCustomer,
            },
            RelEdge {
                a: Asn(2),
                b: Asn(3),
                rel: AsRelationship::ProviderToCustomer,
            },
        ])
    }

    #[test]
    fn serves_identical_cones_and_computes_once() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        let first = cache.cone(m, &g, Asn(1));
        assert_eq!(*first, g.customer_cone(Asn(1)));
        let again = cache.cone(m, &g, Asn(1));
        assert!(Arc::ptr_eq(&first, &again), "second hit shares the Arc");
        assert_eq!(cache.computations(), 1);
        // A different month or AS is a different key.
        cache.cone(MonthStamp::new(2020, 2), &g, Asn(1));
        cache.cone(m, &g, Asn(2));
        assert_eq!(cache.computations(), 3);
    }

    #[test]
    fn unknown_as_behaves_like_the_graph() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        assert_eq!(
            *cache.cone(m, &g, Asn(999)),
            BTreeSet::from([Asn(999)]),
            "unknown AS cones are the singleton, as customer_cone defines"
        );
    }

    #[test]
    fn racing_workers_compute_each_key_once() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        let hits: Vec<Asn> = (0..64).map(|i| Asn(1 + (i % 2))).collect();
        let cones = sweep::parallel_map_with(8, &hits, |&asn| cache.cone(m, &g, asn));
        for (asn, cone) in hits.iter().zip(&cones) {
            assert_eq!(**cone, g.customer_cone(*asn));
        }
        assert_eq!(cache.computations(), 2, "two distinct keys, two BFS runs");
    }

    #[test]
    fn transit_neighbors_match_graph_and_compute_once() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        let n = cache.transit_neighbors(m, &g, Asn(2));
        assert_eq!(n.providers, g.providers(Asn(2)));
        assert_eq!(n.customers, g.customers(Asn(2)));
        assert_eq!(n.transit_degree(), 2);
        let again = cache.transit_neighbors(m, &g, Asn(2));
        assert!(Arc::ptr_eq(&n, &again));
        assert_eq!(cache.degree_computations(), 1);
        // Independent of the cone memo's counter.
        assert_eq!(cache.computations(), 0);
    }

    #[test]
    fn paths_memo_matches_direct_compute() {
        let g = chain_graph();
        let cache = ConeCache::new();
        let m = MonthStamp::new(2020, 1);
        let memo = cache.paths(m, &g, Asn(3));
        assert_eq!(
            memo.all_paths(),
            PathOutcome::compute(&g, Asn(3)).all_paths()
        );
        let again = cache.paths(m, &g, Asn(3));
        assert!(Arc::ptr_eq(&memo, &again));
        assert_eq!(cache.path_computations(), 1);
    }
}
