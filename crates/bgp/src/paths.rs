//! AS-path reconstruction on top of valley-free propagation.
//!
//! [`crate::propagation::RouteSim`] records, for each AS, only the best
//! route's class and hop count — enough for visibility analysis. The
//! path-aware simulator here also records each AS's chosen *next hop*,
//! from which full AS paths (as a route collector would see them) can be
//! reconstructed. These paths feed the relationship-inference baseline
//! ([`crate::inference`]) and the traceroute models in `lacnet-atlas`.

use crate::graph::AsGraph;
use crate::propagation::RouteKind;
use lacnet_types::Asn;
use std::collections::{BTreeMap, VecDeque};

/// One AS's best route toward the origin, with its chosen next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathRoute {
    /// Preference class.
    pub kind: RouteKind,
    /// AS-path length in hops.
    pub hops: u32,
    /// The neighbour the route was learned from (`None` at the origin).
    pub next_hop: Option<Asn>,
}

/// All-AS best routes with next hops, for one origin.
#[derive(Debug, Clone)]
pub struct PathOutcome {
    origin: Asn,
    routes: BTreeMap<Asn, PathRoute>,
}

impl PathOutcome {
    /// Propagate `origin`'s announcement over `graph`, recording next
    /// hops. Same preference and export rules as
    /// [`crate::propagation::RouteSim`]; ties inside a class break toward
    /// the lowest neighbour ASN, as real BGP tie-breaks are deterministic.
    pub fn compute(graph: &AsGraph, origin: Asn) -> Self {
        let mut routes: BTreeMap<Asn, PathRoute> = BTreeMap::new();
        routes.insert(
            origin,
            PathRoute {
                kind: RouteKind::Origin,
                hops: 0,
                next_hop: None,
            },
        );

        // Phase 1 — customer routes up provider edges (BFS: minimal hops;
        // first writer wins, and neighbours are visited in ascending ASN
        // order via the BTreeSet adjacency, giving the lowest-ASN tie-break).
        let mut queue: VecDeque<Asn> = VecDeque::from([origin]);
        while let Some(u) = queue.pop_front() {
            let hops = routes[&u].hops;
            if let Some(adj) = graph.adjacency(u) {
                for &p in &adj.providers {
                    routes.entry(p).or_insert_with(|| {
                        queue.push_back(p);
                        PathRoute {
                            kind: RouteKind::Customer,
                            hops: hops + 1,
                            next_hop: Some(u),
                        }
                    });
                }
            }
        }

        // Phase 2 — one hop across peering edges.
        let phase1: Vec<(Asn, u32)> = routes.iter().map(|(&a, r)| (a, r.hops)).collect();
        for (u, hops) in phase1 {
            if let Some(adj) = graph.adjacency(u) {
                for &v in &adj.peers {
                    let candidate = PathRoute {
                        kind: RouteKind::Peer,
                        hops: hops + 1,
                        next_hop: Some(u),
                    };
                    let replace = match routes.get(&v) {
                        None => true,
                        Some(r) => r.kind == RouteKind::Peer && candidate.hops < r.hops,
                    };
                    if replace {
                        routes.insert(v, candidate);
                    }
                }
            }
        }

        // Phase 3 — down customer edges, seeded in ascending hop order.
        let mut seeds: Vec<Asn> = routes.keys().copied().collect();
        seeds.sort_by_key(|a| routes[a].hops);
        let mut queue: VecDeque<Asn> = seeds.into();
        while let Some(u) = queue.pop_front() {
            let hops = routes[&u].hops;
            if let Some(adj) = graph.adjacency(u) {
                for &c in &adj.customers {
                    routes.entry(c).or_insert_with(|| {
                        queue.push_back(c);
                        PathRoute {
                            kind: RouteKind::Provider,
                            hops: hops + 1,
                            next_hop: Some(u),
                        }
                    });
                }
            }
        }

        PathOutcome { origin, routes }
    }

    /// The origin.
    pub fn origin(&self) -> Asn {
        self.origin
    }

    /// The best route at `asn`, if any.
    pub fn route(&self, asn: Asn) -> Option<PathRoute> {
        self.routes.get(&asn).copied()
    }

    /// The full AS path from `vantage` to the origin (vantage first,
    /// origin last), or `None` if the vantage has no route.
    pub fn as_path(&self, vantage: Asn) -> Option<Vec<Asn>> {
        let mut path = vec![vantage];
        let mut cur = self.routes.get(&vantage)?;
        // Bounded by hop count; a cycle would indicate a bug.
        for _ in 0..=cur.hops {
            match cur.next_hop {
                None => return Some(path),
                Some(nh) => {
                    path.push(nh);
                    cur = self.routes.get(&nh)?;
                }
            }
        }
        debug_assert!(false, "next-hop chain longer than hop count");
        None
    }

    /// The paths from every routed AS — a synthetic route-collector RIB
    /// for this origin.
    pub fn all_paths(&self) -> Vec<Vec<Asn>> {
        self.routes
            .keys()
            .filter_map(|&a| self.as_path(a))
            .filter(|p| p.len() > 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::RelEdge;

    fn two_tier() -> AsGraph {
        AsGraph::from_edges([
            RelEdge::peering(Asn(10), Asn(20)),
            RelEdge::transit(Asn(10), Asn(11)),
            RelEdge::transit(Asn(10), Asn(12)),
            RelEdge::transit(Asn(20), Asn(21)),
            RelEdge::transit(Asn(20), Asn(22)),
            RelEdge::transit(Asn(11), Asn(111)),
            RelEdge::transit(Asn(22), Asn(221)),
        ])
    }

    #[test]
    fn paths_reconstruct_exactly() {
        let g = two_tier();
        let out = PathOutcome::compute(&g, Asn(111));
        assert_eq!(out.as_path(Asn(111)).unwrap(), vec![Asn(111)]);
        assert_eq!(
            out.as_path(Asn(10)).unwrap(),
            vec![Asn(10), Asn(11), Asn(111)]
        );
        assert_eq!(
            out.as_path(Asn(20)).unwrap(),
            vec![Asn(20), Asn(10), Asn(11), Asn(111)]
        );
        assert_eq!(
            out.as_path(Asn(221)).unwrap(),
            vec![Asn(221), Asn(22), Asn(20), Asn(10), Asn(11), Asn(111)]
        );
        assert_eq!(out.as_path(Asn(999)), None);
    }

    #[test]
    fn path_lengths_match_hop_counts() {
        let g = two_tier();
        for origin in [Asn(111), Asn(221), Asn(12)] {
            let out = PathOutcome::compute(&g, origin);
            for &asn in g.asns().collect::<Vec<_>>().iter() {
                if let Some(r) = out.route(asn) {
                    let path = out.as_path(asn).unwrap();
                    assert_eq!(path.len() as u32, r.hops + 1, "{asn} to {origin}");
                    assert_eq!(*path.last().unwrap(), origin);
                    assert_eq!(path[0], asn);
                }
            }
        }
    }

    #[test]
    fn paths_are_valley_free() {
        // Walk every reconstructed path and check the classic pattern:
        // zero or more c2p, at most one p2p, zero or more p2c.
        let g = two_tier();
        for origin in [Asn(111), Asn(221), Asn(21)] {
            let out = PathOutcome::compute(&g, origin);
            for path in out.all_paths() {
                // Reverse: origin-outward direction.
                let fwd: Vec<Asn> = path.iter().rev().copied().collect();
                let mut state = 0; // 0 = climbing, 1 = peered, 2 = descending
                for w in fwd.windows(2) {
                    let (from, to) = (w[0], w[1]);
                    let adj = g.adjacency(from).unwrap();
                    let step = if adj.providers.contains(&to) {
                        0 // going up
                    } else if adj.peers.contains(&to) {
                        1
                    } else {
                        2 // going down
                    };
                    assert!(
                        step >= state || (step == 2 && state <= 2),
                        "valley in {path:?}"
                    );
                    if step == 1 {
                        assert!(state == 0, "peer edge after descent in {path:?}");
                        state = 2; // after a peer edge only descent is allowed
                    } else {
                        state = state.max(step);
                    }
                }
            }
        }
    }

    #[test]
    fn all_paths_covers_every_routed_as() {
        let g = two_tier();
        let out = PathOutcome::compute(&g, Asn(111));
        // 7 ASes besides the origin hear the route.
        assert_eq!(out.all_paths().len(), g.node_count() - 1);
    }

    #[test]
    fn agrees_with_route_sim_classes() {
        use crate::propagation::RouteSim;
        let g = two_tier();
        for origin in [Asn(111), Asn(221), Asn(12), Asn(10)] {
            let paths = PathOutcome::compute(&g, origin);
            let sim = RouteSim::new(&g).propagate(origin);
            for asn in g.asns() {
                let a = paths.route(asn).map(|r| (r.kind, r.hops));
                let b = sim.route(asn).map(|r| (r.kind, r.hops));
                assert_eq!(a, b, "{asn} from {origin}");
            }
        }
    }
}
