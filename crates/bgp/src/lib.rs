//! # lacnet-bgp
//!
//! The interdomain-routing substrate of the `lacnet` workspace.
//!
//! The SIGCOMM 2024 Venezuelan-crisis study reads two CAIDA products:
//!
//! * **AS relationship files** ("serial-1"), monthly since 1998, giving the
//!   provider/customer/peer edges from which CANTV's upstream exodus
//!   (Figs. 8 and 9) is computed;
//! * **prefix-to-AS files** (RouteViews pfx2as), monthly since 2008, giving
//!   the announced address space per origin AS from which the CANTV vs
//!   Telefónica address-space shares (Fig. 2) and the Telefónica prefix
//!   visibility heatmap (Fig. 14 / Appendix C) are computed.
//!
//! This crate implements both formats byte-for-byte, an [`AsGraph`] with
//! customer-cone and degree analytics, a Gao–Rexford **valley-free route
//! propagation** simulator (used by `lacnet-crisis` to decide which
//! prefixes are *visible* at collectors, reproducing Telefónica's
//! 2016–2023 visibility gap), and a longitudinal [`TopologyArchive`]
//! holding one graph per month.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod proptests;

pub mod analytics;
pub mod cone;
pub mod graph;
pub mod inference;
pub mod paths;
pub mod pfx2as;
pub mod propagation;
pub mod relationship;
pub mod serial1;
pub mod store;

pub use cone::ConeCache;
pub use graph::AsGraph;
pub use paths::{PathOutcome, PathRoute};
pub use pfx2as::{OriginSet, PfxToAs};
pub use propagation::{PropagationOutcome, RouteSim};
pub use relationship::{AsRelationship, RelEdge};
pub use store::TopologyArchive;
