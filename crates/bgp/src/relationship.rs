//! AS business relationships and edges.

use lacnet_types::{Asn, Error, Result};
use std::fmt;
use std::str::FromStr;

/// The business relationship between two ASes, in CAIDA serial-1 coding.
///
/// In a serial-1 line `a|b|code`, `code == -1` means *a is a provider of b*
/// (a transit, "p2c") and `code == 0` means *a and b are peers* ("p2p").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsRelationship {
    /// Provider-to-customer: the first AS sells transit to the second.
    ProviderToCustomer,
    /// Settlement-free peering.
    PeerToPeer,
}

impl AsRelationship {
    /// The serial-1 integer code.
    pub const fn code(self) -> i8 {
        match self {
            AsRelationship::ProviderToCustomer => -1,
            AsRelationship::PeerToPeer => 0,
        }
    }

    /// Decode a serial-1 integer code.
    pub fn from_code(code: i8) -> Result<Self> {
        match code {
            -1 => Ok(AsRelationship::ProviderToCustomer),
            0 => Ok(AsRelationship::PeerToPeer),
            _ => Err(Error::invalid("relationship code must be -1 or 0")),
        }
    }
}

impl fmt::Display for AsRelationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsRelationship::ProviderToCustomer => f.write_str("p2c"),
            AsRelationship::PeerToPeer => f.write_str("p2p"),
        }
    }
}

/// One edge of the AS-level topology: `(a, b, relationship)` with the
/// serial-1 orientation (`a` is the provider when the relationship is
/// provider-to-customer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelEdge {
    /// First AS (provider side for p2c edges).
    pub a: Asn,
    /// Second AS (customer side for p2c edges).
    pub b: Asn,
    /// Relationship between `a` and `b`.
    pub rel: AsRelationship,
}

impl RelEdge {
    /// A provider→customer edge.
    pub const fn transit(provider: Asn, customer: Asn) -> Self {
        RelEdge {
            a: provider,
            b: customer,
            rel: AsRelationship::ProviderToCustomer,
        }
    }

    /// A peering edge. Stored with the given order; [`RelEdge::canonical`]
    /// normalises peer edges to `a < b` for set semantics.
    pub const fn peering(a: Asn, b: Asn) -> Self {
        RelEdge {
            a,
            b,
            rel: AsRelationship::PeerToPeer,
        }
    }

    /// Canonical form: peer edges ordered `a <= b`; p2c edges unchanged
    /// (their orientation is meaningful).
    pub fn canonical(self) -> Self {
        match self.rel {
            AsRelationship::PeerToPeer if self.b < self.a => RelEdge {
                a: self.b,
                b: self.a,
                rel: self.rel,
            },
            _ => self,
        }
    }

    /// Whether the edge touches `asn`.
    pub fn touches(self, asn: Asn) -> bool {
        self.a == asn || self.b == asn
    }
}

impl fmt::Display for RelEdge {
    /// Serial-1 line format (no trailing newline): `a|b|code`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}|{}|{}", self.a.raw(), self.b.raw(), self.rel.code())
    }
}

impl FromStr for RelEdge {
    type Err = Error;

    /// Parses a serial-1 data line `a|b|code`. Trailing fields (serial-2
    /// adds a source column) are tolerated and ignored.
    fn from_str(s: &str) -> Result<Self> {
        let mut parts = s.split('|');
        let (Some(a), Some(b), Some(code)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(Error::parse("serial-1 edge (a|b|code)", s));
        };
        let a: u32 = a.trim().parse().map_err(|_| Error::parse("ASN", s))?;
        let b: u32 = b.trim().parse().map_err(|_| Error::parse("ASN", s))?;
        let code: i8 = code
            .trim()
            .parse()
            .map_err(|_| Error::parse("relationship code", s))?;
        let rel = AsRelationship::from_code(code)
            .map_err(|_| Error::parse("relationship code -1|0", s))?;
        Ok(RelEdge {
            a: Asn(a),
            b: Asn(b),
            rel,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        assert_eq!(
            AsRelationship::from_code(-1).unwrap(),
            AsRelationship::ProviderToCustomer
        );
        assert_eq!(
            AsRelationship::from_code(0).unwrap(),
            AsRelationship::PeerToPeer
        );
        assert!(AsRelationship::from_code(1).is_err());
        assert_eq!(AsRelationship::ProviderToCustomer.code(), -1);
    }

    #[test]
    fn edge_parse_display_roundtrip() {
        let e: RelEdge = "701|8048|-1".parse().unwrap();
        assert_eq!(e, RelEdge::transit(Asn(701), Asn(8048)));
        assert_eq!(e.to_string(), "701|8048|-1");
        let p: RelEdge = "8048|6306|0".parse().unwrap();
        assert_eq!(p.rel, AsRelationship::PeerToPeer);
    }

    #[test]
    fn edge_parse_tolerates_serial2_source_column() {
        let e: RelEdge = "701|8048|-1|bgp".parse().unwrap();
        assert_eq!(e, RelEdge::transit(Asn(701), Asn(8048)));
    }

    #[test]
    fn edge_parse_rejects_garbage() {
        assert!("".parse::<RelEdge>().is_err());
        assert!("701|8048".parse::<RelEdge>().is_err());
        assert!("701|8048|7".parse::<RelEdge>().is_err());
        assert!("a|b|-1".parse::<RelEdge>().is_err());
    }

    #[test]
    fn canonical_orders_peers_only() {
        let p = RelEdge::peering(Asn(9), Asn(3)).canonical();
        assert_eq!((p.a, p.b), (Asn(3), Asn(9)));
        let t = RelEdge::transit(Asn(9), Asn(3)).canonical();
        assert_eq!(
            (t.a, t.b),
            (Asn(9), Asn(3)),
            "p2c orientation is meaningful"
        );
    }

    #[test]
    fn touches() {
        let e = RelEdge::transit(Asn(701), Asn(8048));
        assert!(e.touches(Asn(701)));
        assert!(e.touches(Asn(8048)));
        assert!(!e.touches(Asn(1299)));
    }
}
