//! Property-based tests over randomly generated valley-free topologies.
//!
//! The generators build arbitrary layered hierarchies (random tier sizes,
//! random provider assignments, random peering at the top) and check the
//! invariants every consumer of the propagation machinery relies on.

#![cfg(test)]

use crate::cone::ConeCache;
use crate::graph::AsGraph;
use crate::paths::PathOutcome;
use crate::propagation::{RouteKind, RouteSim};
use crate::relationship::RelEdge;
use lacnet_types::{Asn, MonthStamp};
use proptest::prelude::*;

/// Strategy: a random 3-layer hierarchy. Tier-1s form a full peering
/// mesh; every lower node buys transit from 1–2 random nodes one layer
/// up. ASNs are layer-coded for readability (1x, 2xx, 3xxx).
fn hierarchy_strategy() -> impl Strategy<Value = AsGraph> {
    (2usize..4, 2usize..6, 2usize..10, any::<u64>()).prop_map(|(n1, n2, n3, seed)| {
        let mut rng = lacnet_types::rng::Rng::seeded(seed);
        let t1: Vec<Asn> = (0..n1).map(|i| Asn(10 + i as u32)).collect();
        let t2: Vec<Asn> = (0..n2).map(|i| Asn(200 + i as u32)).collect();
        let t3: Vec<Asn> = (0..n3).map(|i| Asn(3000 + i as u32)).collect();
        let mut edges = Vec::new();
        for (i, &a) in t1.iter().enumerate() {
            for &b in t1.iter().skip(i + 1) {
                edges.push(RelEdge::peering(a, b));
            }
        }
        for &c in &t2 {
            let n_prov = 1 + rng.below(2) as usize;
            for k in 0..n_prov {
                let p = t1[(rng.below(t1.len() as u64) as usize + k) % t1.len()];
                edges.push(RelEdge::transit(p, c));
            }
        }
        for &c in &t3 {
            let n_prov = 1 + rng.below(2) as usize;
            for k in 0..n_prov {
                let p = t2[(rng.below(t2.len() as u64) as usize + k) % t2.len()];
                edges.push(RelEdge::transit(p, c));
            }
        }
        AsGraph::from_edges(edges)
    })
}

/// Strategy: an *arbitrary* transit digraph — random p2c edges over a
/// small ASN pool, cycles very much allowed. The cone analytics must
/// behave identically cached and fresh even off the valley-free happy
/// path.
fn tangled_strategy() -> impl Strategy<Value = AsGraph> {
    (2u32..12, 1usize..40, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut rng = lacnet_types::rng::Rng::seeded(seed);
        let mut edges = Vec::new();
        for _ in 0..m {
            let a = Asn(1 + rng.below(n as u64) as u32);
            let b = Asn(1 + rng.below(n as u64) as u32);
            if a != b {
                edges.push(RelEdge::transit(a, b));
            }
        }
        AsGraph::from_edges(edges)
    })
}

/// Walk a path origin-outward and assert the valley-free pattern.
fn assert_valley_free(g: &AsGraph, path: &[Asn]) {
    // Forward direction: origin → vantage.
    let fwd: Vec<Asn> = path.iter().rev().copied().collect();
    let mut descended = false;
    let mut peered = false;
    for w in fwd.windows(2) {
        let (from, to) = (w[0], w[1]);
        let adj = g.adjacency(from).expect("path AS exists");
        if adj.providers.contains(&to) {
            assert!(
                !descended && !peered,
                "climb after descent/peer in {path:?}"
            );
        } else if adj.peers.contains(&to) {
            assert!(!descended && !peered, "second plateau in {path:?}");
            peered = true;
        } else {
            assert!(adj.customers.contains(&to), "non-edge step in {path:?}");
            descended = true;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn full_hierarchy_reaches_everyone(g in hierarchy_strategy()) {
        // In a connected hierarchy (every node has a transit chain to the
        // fully meshed top), every announcement reaches every AS.
        let sim = RouteSim::new(&g);
        let asns: Vec<Asn> = g.asns().collect();
        for &origin in asns.iter().take(4) {
            let out = sim.propagate(origin);
            prop_assert_eq!(out.reach_count(), g.node_count(), "origin {}", origin);
        }
    }

    #[test]
    fn every_reconstructed_path_is_valley_free(g in hierarchy_strategy()) {
        let asns: Vec<Asn> = g.asns().collect();
        for &origin in asns.iter().rev().take(3) {
            let out = PathOutcome::compute(&g, origin);
            for path in out.all_paths() {
                assert_valley_free(&g, &path);
            }
        }
    }

    #[test]
    fn path_outcome_and_route_sim_agree(g in hierarchy_strategy()) {
        let asns: Vec<Asn> = g.asns().collect();
        let sim = RouteSim::new(&g);
        for &origin in asns.iter().take(3) {
            let a = PathOutcome::compute(&g, origin);
            let b = sim.propagate(origin);
            for &asn in &asns {
                let ra = a.route(asn).map(|r| (r.kind, r.hops));
                let rb = b.route(asn).map(|r| (r.kind, r.hops));
                prop_assert_eq!(ra, rb, "{} from {}", asn, origin);
            }
        }
    }

    #[test]
    fn customer_routes_at_ancestors_only(g in hierarchy_strategy()) {
        // An AS holds a customer route iff the origin is in its customer
        // cone (strictly below it).
        let sim = RouteSim::new(&g);
        let asns: Vec<Asn> = g.asns().collect();
        for &origin in asns.iter().rev().take(3) {
            let out = sim.propagate(origin);
            for &asn in &asns {
                if asn == origin {
                    continue;
                }
                let has_customer_route =
                    out.route(asn).is_some_and(|r| r.kind == RouteKind::Customer);
                let in_cone = g.customer_cone(asn).contains(&origin);
                prop_assert_eq!(has_customer_route, in_cone, "{} vs origin {}", asn, origin);
            }
        }
    }

    #[test]
    fn hop_counts_are_shortest_within_class(g in hierarchy_strategy()) {
        // Customer-route hop counts equal the shortest provider-edge
        // distance (BFS over the reversed customer-cone edges).
        let sim = RouteSim::new(&g);
        let asns: Vec<Asn> = g.asns().collect();
        let origin = *asns.last().expect("non-empty");
        let out = sim.propagate(origin);
        // Independent BFS up provider edges.
        let mut dist = std::collections::BTreeMap::new();
        dist.insert(origin, 0u32);
        let mut queue = std::collections::VecDeque::from([origin]);
        while let Some(u) = queue.pop_front() {
            let d = dist[&u];
            if let Some(adj) = g.adjacency(u) {
                for &p in &adj.providers {
                    dist.entry(p).or_insert_with(|| {
                        queue.push_back(p);
                        d + 1
                    });
                }
            }
        }
        for (asn, d) in dist {
            let r = out.route(asn).expect("ancestor routed");
            prop_assert_eq!(r.hops, d, "{}", asn);
        }
    }

    #[test]
    fn serial1_roundtrip_preserves_any_graph(g in hierarchy_strategy()) {
        let text = crate::serial1::to_text(&g.edges(), "proptest");
        let back = AsGraph::from_edges(crate::serial1::parse(&text).unwrap());
        prop_assert_eq!(back.edges(), g.edges());
    }

    #[test]
    fn cone_cache_equals_fresh_computation(g in hierarchy_strategy()) {
        // Every AS (plus one unknown) served by the cache matches a fresh
        // `customer_cone`, each key computes exactly once, and repeats
        // stay served from the memo.
        let cache = ConeCache::new();
        let month = MonthStamp::new(2020, 1);
        let mut asns: Vec<Asn> = g.asns().collect();
        asns.push(Asn(999_999)); // unknown to the graph
        for &asn in &asns {
            prop_assert_eq!((*cache.cone(month, &g, asn)).clone(), g.customer_cone(asn));
        }
        prop_assert_eq!(cache.computations(), asns.len());
        for &asn in &asns {
            prop_assert_eq!((*cache.cone(month, &g, asn)).clone(), g.customer_cone(asn));
        }
        prop_assert_eq!(cache.computations(), asns.len(), "repeats are memo hits");
    }

    #[test]
    fn cone_cache_handles_cycles_and_unknowns(g in tangled_strategy()) {
        // On arbitrary (possibly cyclic) transit digraphs the cached cone
        // still terminates, contains the root, stays within the node set,
        // and equals the fresh walk — and unknown ASes yield singletons on
        // both paths.
        let cache = ConeCache::new();
        let month = MonthStamp::new(2021, 6);
        for asn in g.asns() {
            let fresh = g.customer_cone(asn);
            let cached = cache.cone(month, &g, asn);
            prop_assert!(cached.contains(&asn), "cone includes self");
            prop_assert!(cached.iter().all(|a| g.contains(*a)));
            prop_assert_eq!((*cached).clone(), fresh);
        }
        let unknown = Asn(777_777);
        let fresh = g.customer_cone(unknown);
        prop_assert_eq!(
            (*cache.cone(month, &g, unknown)).clone(),
            fresh.clone()
        );
        prop_assert_eq!(fresh, std::collections::BTreeSet::from([unknown]));
    }
}
