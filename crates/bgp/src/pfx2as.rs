//! RouteViews prefix-to-AS ("pfx2as") snapshots.
//!
//! CAIDA's pfx2as files are tab-separated lines `network \t masklen \t
//! origins`, where `origins` is a single ASN, an underscore-joined
//! multi-origin set (`8048_6306`), or a comma-joined AS-set. §4 joins
//! these against LACNIC delegations to compute announced-space shares;
//! Appendix C tracks the per-prefix visibility of Telefónica de Venezuela.

use lacnet_types::{Asn, Error, Ipv4Net, PrefixTrie, Result};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// The origin(s) of a prefix: usually one AS, occasionally a MOAS set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OriginSet(Vec<Asn>);

impl OriginSet {
    /// A single-origin set.
    pub fn single(asn: Asn) -> Self {
        OriginSet(vec![asn])
    }

    /// A multi-origin set; deduplicated and sorted.
    pub fn multi(asns: impl IntoIterator<Item = Asn>) -> Result<Self> {
        let mut v: Vec<Asn> = asns.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            return Err(Error::invalid("origin set must be non-empty"));
        }
        Ok(OriginSet(v))
    }

    /// The origins, sorted ascending.
    pub fn asns(&self) -> &[Asn] {
        &self.0
    }

    /// Whether `asn` is among the origins.
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.binary_search(&asn).is_ok()
    }

    /// Whether this is a multi-origin (MOAS) announcement.
    pub fn is_moas(&self) -> bool {
        self.0.len() > 1
    }
}

impl std::fmt::Display for OriginSet {
    /// pfx2as origin column format: underscore-joined ASNs.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str("_")?;
            }
            write!(f, "{}", a.raw())?;
        }
        Ok(())
    }
}

impl FromStr for OriginSet {
    type Err = Error;

    /// Parses `8048`, `8048_6306` (MOAS), or `8048,6306` (AS-set).
    fn from_str(s: &str) -> Result<Self> {
        let parts: Vec<&str> = s.split(['_', ',']).collect();
        let mut asns = Vec::with_capacity(parts.len());
        for p in parts {
            let raw: u32 = p
                .trim()
                .parse()
                .map_err(|_| Error::parse("origin ASN", s))?;
            asns.push(Asn(raw));
        }
        OriginSet::multi(asns)
    }
}

/// One monthly prefix-to-AS snapshot.
#[derive(Debug, Clone, Default)]
pub struct PfxToAs {
    entries: BTreeMap<Ipv4Net, OriginSet>,
}

impl PfxToAs {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(prefix, origins)` pairs; later duplicates win.
    pub fn from_entries(entries: impl IntoIterator<Item = (Ipv4Net, OriginSet)>) -> Self {
        PfxToAs {
            entries: entries.into_iter().collect(),
        }
    }

    /// Record an announcement.
    pub fn insert(&mut self, prefix: Ipv4Net, origins: OriginSet) {
        self.entries.insert(prefix, origins);
    }

    /// Number of announced prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Exact-prefix lookup.
    pub fn origins_of(&self, prefix: Ipv4Net) -> Option<&OriginSet> {
        self.entries.get(&prefix)
    }

    /// Iterate over all `(prefix, origins)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Net, &OriginSet)> {
        self.entries.iter().map(|(&p, o)| (p, o))
    }

    /// All prefixes originated (solely or in a MOAS set) by `asn`.
    pub fn prefixes_of(&self, asn: Asn) -> Vec<Ipv4Net> {
        self.entries
            .iter()
            .filter(|(_, o)| o.contains(asn))
            .map(|(&p, _)| p)
            .collect()
    }

    /// Total announced address space of `asn` in addresses, counting each
    /// address once even when covered by several announced prefixes (a /16
    /// plus its two /17s is still one /16 of space). This is the Fig. 2
    /// "# addr. space" metric.
    pub fn address_space_of(&self, asn: Asn) -> u64 {
        let mut intervals: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|(_, o)| o.contains(asn))
            .map(|(&p, _)| {
                let start = p.network_u32() as u64;
                (start, start + p.size())
            })
            .collect();
        union_length(&mut intervals)
    }

    /// Total announced address space across all origins, each address
    /// counted once.
    pub fn total_address_space(&self) -> u64 {
        let mut intervals: Vec<(u64, u64)> = self
            .entries
            .keys()
            .map(|p| {
                let start = p.network_u32() as u64;
                (start, start + p.size())
            })
            .collect();
        union_length(&mut intervals)
    }

    /// Build a longest-prefix-match trie over the table for address-level
    /// origin attribution.
    pub fn build_trie(&self) -> PrefixTrie<OriginSet> {
        self.entries.iter().map(|(&p, o)| (p, o.clone())).collect()
    }

    /// The origin(s) of the most specific prefix covering `ip`, using a
    /// freshly built trie. Callers doing many lookups should build the
    /// trie once via [`PfxToAs::build_trie`].
    pub fn origin_of_ip(&self, ip: Ipv4Addr) -> Option<OriginSet> {
        self.build_trie().longest_match(ip).map(|(_, o)| o.clone())
    }

    /// Parse a pfx2as file: `network \t masklen \t origins` per line.
    pub fn parse(text: &str) -> Result<Self> {
        let mut table = PfxToAs::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut cols = line.split_whitespace();
            let (Some(net), Some(len), Some(origins)) = (cols.next(), cols.next(), cols.next())
            else {
                return Err(Error::parse(
                    "pfx2as line (network<TAB>len<TAB>origins)",
                    &format!("line {}: {line}", idx + 1),
                ));
            };
            let addr: Ipv4Addr = net
                .parse()
                .map_err(|_| Error::parse("pfx2as network address", line))?;
            let len: u8 = len
                .parse()
                .map_err(|_| Error::parse("pfx2as mask length", line))?;
            let prefix = Ipv4Net::new(addr, len)
                .map_err(|_| Error::parse("canonical pfx2as prefix", line))?;
            let origins: OriginSet = origins.parse()?;
            table.insert(prefix, origins);
        }
        Ok(table)
    }

    /// Serialise to pfx2as text (tab-separated, address order).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 24);
        for (p, o) in &self.entries {
            out.push_str(&format!("{}\t{}\t{}\n", p.network(), p.len(), o));
        }
        out
    }
}

/// Total length of the union of half-open intervals. Sorts in place.
fn union_length(intervals: &mut [(u64, u64)]) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in intervals.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::net::net;
    use proptest::prelude::*;

    #[test]
    fn origin_set_parsing() {
        let single: OriginSet = "8048".parse().unwrap();
        assert_eq!(single.asns(), &[Asn(8048)]);
        assert!(!single.is_moas());
        let moas: OriginSet = "8048_6306".parse().unwrap();
        assert_eq!(moas.asns(), &[Asn(6306), Asn(8048)]);
        assert!(moas.is_moas());
        let set: OriginSet = "8048,6306".parse().unwrap();
        assert!(set.is_moas());
        assert!("".parse::<OriginSet>().is_err());
        assert!("x_y".parse::<OriginSet>().is_err());
    }

    #[test]
    fn parse_and_query() {
        let text =
            "# comment\n186.24.0.0\t17\t8048\n200.35.64.0\t18\t6306\n190.0.0.0\t16\t8048_6306\n";
        let t = PfxToAs::parse(text).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.origins_of(net("186.24.0.0/17")).unwrap().asns(),
            &[Asn(8048)]
        );
        assert_eq!(
            t.prefixes_of(Asn(8048)),
            vec![net("186.24.0.0/17"), net("190.0.0.0/16")]
        );
        assert_eq!(t.prefixes_of(Asn(6306)).len(), 2);
        assert!(t.prefixes_of(Asn(701)).is_empty());
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(PfxToAs::parse("186.24.0.0\t17\n").is_err());
        assert!(
            PfxToAs::parse("186.24.0.1\t17\t8048\n").is_err(),
            "host bits set"
        );
        assert!(PfxToAs::parse("186.24.0.0\t40\t8048\n").is_err());
        assert!(PfxToAs::parse("notanip\t17\t8048\n").is_err());
    }

    #[test]
    fn address_space_deduplicates_covered_prefixes() {
        let t = PfxToAs::from_entries([
            (net("186.24.0.0/16"), OriginSet::single(Asn(8048))),
            (net("186.24.0.0/17"), OriginSet::single(Asn(8048))),
            (net("186.24.128.0/17"), OriginSet::single(Asn(8048))),
            (net("200.35.64.0/18"), OriginSet::single(Asn(8048))),
        ]);
        // /16 plus both /17s counts once; /18 is disjoint.
        assert_eq!(t.address_space_of(Asn(8048)), 65536 + 16384);
        assert_eq!(t.total_address_space(), 65536 + 16384);
        assert_eq!(t.address_space_of(Asn(701)), 0);
    }

    #[test]
    fn moas_space_counts_for_both_origins() {
        let t = PfxToAs::from_entries([(net("190.0.0.0/16"), "8048_6306".parse().unwrap())]);
        assert_eq!(t.address_space_of(Asn(8048)), 65536);
        assert_eq!(t.address_space_of(Asn(6306)), 65536);
        assert_eq!(t.total_address_space(), 65536);
    }

    #[test]
    fn ip_attribution_uses_longest_match() {
        let t = PfxToAs::from_entries([
            (net("186.24.0.0/16"), OriginSet::single(Asn(8048))),
            (net("186.24.128.0/17"), OriginSet::single(Asn(6306))),
        ]);
        let o = t.origin_of_ip(Ipv4Addr::new(186, 24, 200, 1)).unwrap();
        assert_eq!(o.asns(), &[Asn(6306)]);
        let o = t.origin_of_ip(Ipv4Addr::new(186, 24, 1, 1)).unwrap();
        assert_eq!(o.asns(), &[Asn(8048)]);
        assert!(t.origin_of_ip(Ipv4Addr::new(10, 0, 0, 1)).is_none());
    }

    #[test]
    fn text_roundtrip() {
        let t = PfxToAs::from_entries([
            (net("186.24.0.0/17"), OriginSet::single(Asn(8048))),
            (net("190.0.0.0/16"), "6306_8048".parse().unwrap()),
        ]);
        let text = t.to_text();
        let back = PfxToAs::parse(&text).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn union_length_edge_cases() {
        assert_eq!(union_length(&mut []), 0);
        assert_eq!(union_length(&mut [(0, 10)]), 10);
        assert_eq!(
            union_length(&mut [(0, 10), (10, 20)]),
            20,
            "touching intervals merge"
        );
        assert_eq!(union_length(&mut [(0, 10), (5, 7)]), 10, "nested");
        assert_eq!(union_length(&mut [(20, 30), (0, 5)]), 15, "unsorted input");
    }

    proptest! {
        #[test]
        fn address_space_bounded_by_sum_of_sizes(
            prefixes in proptest::collection::vec((any::<u32>(), 8u8..=28), 1..40)
        ) {
            let t = PfxToAs::from_entries(prefixes.iter().map(|&(a, l)| {
                (Ipv4Net::truncating(std::net::Ipv4Addr::from(a), l), OriginSet::single(Asn(1)))
            }));
            let naive: u64 = t.iter().map(|(p, _)| p.size()).sum();
            let space = t.address_space_of(Asn(1));
            prop_assert!(space <= naive);
            prop_assert!(space >= t.iter().map(|(p, _)| p.size()).max().unwrap());
        }

        #[test]
        fn roundtrip_random_tables(
            prefixes in proptest::collection::vec((any::<u32>(), 8u8..=28, 1u32..100000), 0..30)
        ) {
            let t = PfxToAs::from_entries(prefixes.iter().map(|&(a, l, o)| {
                (Ipv4Net::truncating(std::net::Ipv4Addr::from(a), l), OriginSet::single(Asn(o)))
            }));
            let back = PfxToAs::parse(&t.to_text()).unwrap();
            prop_assert_eq!(back.len(), t.len());
            for (p, o) in t.iter() {
                prop_assert_eq!(back.origins_of(p).unwrap(), o);
            }
        }
    }
}
