//! Longitudinal archive of monthly topology snapshots.

use crate::graph::AsGraph;
use crate::serial1;
use lacnet_types::{MonthStamp, Result};
use std::collections::BTreeMap;

/// One [`AsGraph`] per month — the in-memory form of CAIDA's serial-1
/// archive after the analysis loads the first-of-month snapshots.
#[derive(Debug, Clone, Default)]
pub struct TopologyArchive {
    snapshots: BTreeMap<MonthStamp, AsGraph>,
}

impl TopologyArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the snapshot for `month`.
    pub fn insert(&mut self, month: MonthStamp, graph: AsGraph) {
        self.snapshots.insert(month, graph);
    }

    /// Load one month from serial-1 text.
    pub fn insert_serial1(&mut self, month: MonthStamp, text: &str) -> Result<()> {
        let edges = serial1::parse(text)?;
        self.insert(month, AsGraph::from_edges(edges));
        Ok(())
    }

    /// The snapshot for exactly `month`.
    pub fn get(&self, month: MonthStamp) -> Option<&AsGraph> {
        self.snapshots.get(&month)
    }

    /// Number of snapshots held.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Earliest snapshot month.
    pub fn first_month(&self) -> Option<MonthStamp> {
        self.snapshots.keys().next().copied()
    }

    /// Latest snapshot month.
    pub fn last_month(&self) -> Option<MonthStamp> {
        self.snapshots.keys().next_back().copied()
    }

    /// Iterate chronologically over `(month, graph)`.
    pub fn iter(&self) -> impl Iterator<Item = (MonthStamp, &AsGraph)> {
        self.snapshots.iter().map(|(&m, g)| (m, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relationship::RelEdge;
    use lacnet_types::Asn;

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    #[test]
    fn insert_and_query() {
        let mut arch = TopologyArchive::new();
        assert!(arch.is_empty());
        arch.insert(
            m(2013, 1),
            AsGraph::from_edges([RelEdge::transit(Asn(701), Asn(8048))]),
        );
        arch.insert(
            m(2014, 1),
            AsGraph::from_edges([RelEdge::transit(Asn(23520), Asn(8048))]),
        );
        assert_eq!(arch.len(), 2);
        assert_eq!(arch.first_month(), Some(m(2013, 1)));
        assert_eq!(arch.last_month(), Some(m(2014, 1)));
        assert!(arch.get(m(2013, 1)).unwrap().contains(Asn(701)));
        assert!(arch.get(m(2013, 2)).is_none());
    }

    #[test]
    fn load_from_serial1() {
        let mut arch = TopologyArchive::new();
        arch.insert_serial1(m(1998, 1), "701|8048|-1\n").unwrap();
        assert_eq!(arch.get(m(1998, 1)).unwrap().upstream_count(Asn(8048)), 1);
        assert!(arch.insert_serial1(m(1998, 2), "bogus\n").is_err());
        assert_eq!(arch.len(), 1, "failed load must not insert");
    }

    #[test]
    fn iteration_is_chronological() {
        let mut arch = TopologyArchive::new();
        arch.insert(m(2020, 6), AsGraph::new());
        arch.insert(m(1998, 1), AsGraph::new());
        arch.insert(m(2005, 3), AsGraph::new());
        let months: Vec<_> = arch.iter().map(|(m, _)| m).collect();
        assert_eq!(months, vec![m(1998, 1), m(2005, 3), m(2020, 6)]);
    }
}
