//! Longitudinal PeeringDB analytics.
//!
//! The derivations behind Fig. 3 (facility growth), Fig. 15 (networks per
//! Venezuelan facility over time), and the IXP-presence matrices of
//! Figs. 10 and 21 (which ASNs peer at which exchanges; the population
//! weighting happens in `lacnet-core` where APNIC estimates are in scope).

use crate::model::PdbId;
use crate::snapshot::SnapshotArchive;
use lacnet_types::{Asn, CountryCode, MonthStamp, TimeSeries};
use std::collections::{BTreeMap, BTreeSet};

/// Monthly facility count for one country — a Fig. 3 line.
pub fn facility_count_series(archive: &SnapshotArchive, country: CountryCode) -> TimeSeries {
    archive
        .iter()
        .map(|(m, s)| (m, s.facilities_in(country).len() as f64))
        .collect()
}

/// Monthly total facility count across a set of countries — the Fig. 3
/// regional panel.
pub fn facility_total_series(archive: &SnapshotArchive, countries: &[CountryCode]) -> TimeSeries {
    let set: BTreeSet<CountryCode> = countries.iter().copied().collect();
    archive
        .iter()
        .map(|(m, s)| {
            let total = s.fac.iter().filter(|f| set.contains(&f.country)).count();
            (m, total as f64)
        })
        .collect()
}

/// The Fig. 15 matrix: per-facility network counts over time for one
/// country's facilities.
#[derive(Debug, Clone)]
pub struct FacilityPresence {
    /// Facility names, one row each (ordered by first appearance id).
    pub facilities: Vec<(PdbId, String)>,
    /// Months, one column each.
    pub months: Vec<MonthStamp>,
    /// `counts[row][col]` — number of networks at that facility that
    /// month; `None` when the facility was not yet registered.
    pub counts: Vec<Vec<Option<usize>>>,
}

impl FacilityPresence {
    /// Build the matrix for every facility ever registered in `country`.
    pub fn compute(archive: &SnapshotArchive, country: CountryCode) -> Self {
        let months: Vec<MonthStamp> = archive.iter().map(|(m, _)| m).collect();
        // Collect the union of facilities across all months.
        let mut facilities: BTreeMap<PdbId, String> = BTreeMap::new();
        for (_, snap) in archive.iter() {
            for f in snap.facilities_in(country) {
                facilities.entry(f.id).or_insert_with(|| f.name.clone());
            }
        }
        let fac_list: Vec<(PdbId, String)> = facilities.into_iter().collect();
        let mut counts = vec![vec![None; months.len()]; fac_list.len()];
        for (col, (_, snap)) in archive.iter().enumerate() {
            for (row, (fac_id, _)) in fac_list.iter().enumerate() {
                if snap.facility(*fac_id).is_some() {
                    counts[row][col] = Some(snap.networks_at_facility(*fac_id).len());
                }
            }
        }
        FacilityPresence {
            facilities: fac_list,
            months,
            counts,
        }
    }

    /// The latest network count for the named facility (substring match).
    pub fn latest_count(&self, name_fragment: &str) -> Option<usize> {
        let row = self
            .facilities
            .iter()
            .position(|(_, n)| n.contains(name_fragment))?;
        self.counts[row].iter().rev().flatten().next().copied()
    }
}

/// The roster behind Table 2: every `(facility name, ASN)` pair ever
/// observed in `country` across the archive.
pub fn facility_roster(
    archive: &SnapshotArchive,
    country: CountryCode,
) -> BTreeMap<String, BTreeSet<Asn>> {
    let mut roster: BTreeMap<String, BTreeSet<Asn>> = BTreeMap::new();
    for (_, snap) in archive.iter() {
        for f in snap.facilities_in(country) {
            let entry = roster.entry(f.name.clone()).or_default();
            entry.extend(snap.networks_at_facility(f.id));
        }
    }
    roster
}

/// For the latest snapshot: the ASN set present at the largest IXP (by
/// member count) in each of the given countries — the rows of Fig. 10.
pub fn largest_ixp_members(
    archive: &SnapshotArchive,
    countries: &[CountryCode],
) -> BTreeMap<CountryCode, (String, Vec<Asn>)> {
    let Some((_, snap)) = archive.latest() else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    for &cc in countries {
        let best = snap
            .ix
            .iter()
            .filter(|ix| ix.country == cc)
            .map(|ix| (ix, snap.networks_at_ixp(ix.id)))
            .max_by_key(|(_, members)| members.len());
        if let Some((ix, members)) = best {
            if !members.is_empty() {
                out.insert(cc, (ix.name.clone(), members));
            }
        }
    }
    out
}

/// For the latest snapshot: all IXPs in `country` with their member ASNs —
/// the columns of the Fig. 21 US-IXP matrix.
pub fn ixp_members_in(archive: &SnapshotArchive, country: CountryCode) -> Vec<(String, Vec<Asn>)> {
    let Some((_, snap)) = archive.latest() else {
        return Vec::new();
    };
    let mut out: Vec<(String, Vec<Asn>)> = snap
        .ix
        .iter()
        .filter(|ix| ix.country == country)
        .map(|ix| (ix.name.clone(), snap.networks_at_ixp(ix.id)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Facility, Ix, NetFac, NetIxLan, Network};
    use crate::snapshot::Snapshot;
    use lacnet_types::country;

    fn m(y: i32, mo: u8) -> MonthStamp {
        MonthStamp::new(y, mo)
    }

    /// Two-month archive: VE gains a facility in month 2; the existing
    /// facility gains a member.
    fn toy_archive() -> SnapshotArchive {
        let net = vec![
            Network {
                id: 1,
                asn: Asn(8053),
                name: "IFX".into(),
                info_type: "NSP".into(),
            },
            Network {
                id: 2,
                asn: Asn(265641),
                name: "CIX".into(),
                info_type: "Cable/DSL/ISP".into(),
            },
            Network {
                id: 3,
                asn: Asn(52320),
                name: "V.tal".into(),
                info_type: "NSP".into(),
            },
        ];
        let mut s1 = Snapshot::new();
        s1.net = net.clone();
        s1.fac = vec![Facility {
            id: 10,
            name: "Lumen La Urbina".into(),
            city: "Caracas".into(),
            country: country::VE,
        }];
        s1.ix = vec![Ix {
            id: 30,
            name: "IX.br (SP)".into(),
            city: "Sao Paulo".into(),
            country: country::BR,
        }];
        s1.netfac = vec![NetFac {
            net_id: 1,
            fac_id: 10,
        }];
        s1.netixlan = vec![NetIxLan {
            net_id: 3,
            ix_id: 30,
            speed: 100_000,
        }];

        let mut s2 = Snapshot::new();
        s2.net = net;
        s2.fac = vec![
            Facility {
                id: 10,
                name: "Cirion La Urbina".into(),
                city: "Caracas".into(),
                country: country::VE,
            },
            Facility {
                id: 11,
                name: "Daycohost - Caracas".into(),
                city: "Caracas".into(),
                country: country::VE,
            },
        ];
        s2.ix = vec![Ix {
            id: 30,
            name: "IX.br (SP)".into(),
            city: "Sao Paulo".into(),
            country: country::BR,
        }];
        s2.netfac = vec![
            NetFac {
                net_id: 1,
                fac_id: 10,
            },
            NetFac {
                net_id: 2,
                fac_id: 10,
            },
            NetFac {
                net_id: 1,
                fac_id: 11,
            },
        ];
        s2.netixlan = vec![
            NetIxLan {
                net_id: 3,
                ix_id: 30,
                speed: 100_000,
            },
            NetIxLan {
                net_id: 2,
                ix_id: 30,
                speed: 1_000,
            },
        ];

        let mut arch = SnapshotArchive::new();
        arch.insert(m(2021, 11), s1);
        arch.insert(m(2022, 2), s2);
        arch
    }

    #[test]
    fn facility_series() {
        let arch = toy_archive();
        let ve = facility_count_series(&arch, country::VE);
        assert_eq!(ve.get(m(2021, 11)), Some(1.0));
        assert_eq!(ve.get(m(2022, 2)), Some(2.0));
        let br = facility_count_series(&arch, country::BR);
        assert_eq!(br.get(m(2022, 2)), Some(0.0));
        let total = facility_total_series(&arch, &[country::VE, country::BR]);
        assert_eq!(total.get(m(2022, 2)), Some(2.0));
    }

    #[test]
    fn presence_matrix_tracks_counts_and_registration() {
        let arch = toy_archive();
        let fp = FacilityPresence::compute(&arch, country::VE);
        assert_eq!(fp.facilities.len(), 2);
        assert_eq!(fp.months.len(), 2);
        // Facility 10 has 1 then 2 members.
        assert_eq!(fp.counts[0], vec![Some(1), Some(2)]);
        // Facility 11 does not exist in month 1.
        assert_eq!(fp.counts[1], vec![None, Some(1)]);
        assert_eq!(fp.latest_count("La Urbina"), Some(2));
        assert_eq!(fp.latest_count("Daycohost"), Some(1));
        assert_eq!(fp.latest_count("GigaPOP"), None);
    }

    #[test]
    fn roster_accumulates_over_time() {
        let arch = toy_archive();
        let roster = facility_roster(&arch, country::VE);
        // Renamed facility appears under both names (they are distinct
        // rows in the table, as in the paper's Lumen→Cirion note).
        assert!(roster.contains_key("Lumen La Urbina"));
        assert!(roster.contains_key("Cirion La Urbina"));
        assert_eq!(
            roster["Cirion La Urbina"],
            BTreeSet::from([Asn(8053), Asn(265641)])
        );
    }

    #[test]
    fn ixp_queries() {
        let arch = toy_archive();
        let largest = largest_ixp_members(&arch, &[country::BR, country::VE]);
        assert_eq!(largest.len(), 1, "VE has no IXP");
        let (name, members) = &largest[&country::BR];
        assert_eq!(name, "IX.br (SP)");
        assert_eq!(members, &vec![Asn(52320), Asn(265641)]);
        let us = ixp_members_in(&arch, country::US);
        assert!(us.is_empty());
    }

    #[test]
    fn empty_archive_yields_empty_results() {
        let arch = SnapshotArchive::new();
        assert!(facility_count_series(&arch, country::VE).is_empty());
        assert!(largest_ixp_members(&arch, &[country::BR]).is_empty());
        assert!(ixp_members_in(&arch, country::US).is_empty());
        let fp = FacilityPresence::compute(&arch, country::VE);
        assert!(fp.facilities.is_empty());
    }
}
