//! # lacnet-peeringdb
//!
//! A PeeringDB data model mirroring the schema-v2 JSON dumps that CAIDA
//! archives daily (and that the study samples on the first of each month
//! from April 2018).
//!
//! Three of the paper's artifacts come straight from these snapshots:
//!
//! * Fig. 3 — the number of peering *facilities* per country over time
//!   (region 180 → 552, Venezuela stuck at 4);
//! * Fig. 15 / Table 2 — which networks are present at each Venezuelan
//!   facility (`netfac` join);
//! * Figs. 10 & 21 — which networks peer at which IXPs (`netixlan` join),
//!   later weighted by eyeball populations in `lacnet-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod model;
pub mod snapshot;

pub use model::{Facility, Ix, IxId, NetFac, NetIxLan, Network, PdbId};
pub use snapshot::{Snapshot, SnapshotArchive};
