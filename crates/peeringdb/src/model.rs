//! The PeeringDB object model (schema v2 subset).
//!
//! Only the tables and columns the study touches are modelled: `net`,
//! `fac`, `ix`, and the join tables `netfac` and `netixlan`. Field names
//! follow the real dump so serialised snapshots look like the archive's.

use lacnet_types::{Asn, CountryCode};

/// A PeeringDB row id.
pub type PdbId = u32;

/// An IXP row id (alias kept distinct for readability at call sites).
pub type IxId = u32;

/// A network (`net` table row).
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Row id.
    pub id: PdbId,
    /// The network's ASN.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// Self-reported type (`"NSP"`, `"Content"`, `"Cable/DSL/ISP"`, …).
    pub info_type: String,
}

/// A colocation/peering facility (`fac` table row).
#[derive(Debug, Clone, PartialEq)]
pub struct Facility {
    /// Row id.
    pub id: PdbId,
    /// Facility name, e.g. `"Cirion La Urbina"`.
    pub name: String,
    /// City.
    pub city: String,
    /// ISO country code.
    pub country: CountryCode,
}

/// An Internet exchange point (`ix` table row).
#[derive(Debug, Clone, PartialEq)]
pub struct Ix {
    /// Row id.
    pub id: IxId,
    /// IXP name, e.g. `"IX.br (SP)"`.
    pub name: String,
    /// City.
    pub city: String,
    /// ISO country code.
    pub country: CountryCode,
}

/// Presence of a network at a facility (`netfac` join row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFac {
    /// `net` row id.
    pub net_id: PdbId,
    /// `fac` row id.
    pub fac_id: PdbId,
}

/// A network's LAN port at an IXP (`netixlan` join row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetIxLan {
    /// `net` row id.
    pub net_id: PdbId,
    /// `ix` row id.
    pub ix_id: IxId,
    /// Port speed in Mbit/s.
    pub speed: u32,
}

lacnet_types::impl_json_struct!(Network {
    id,
    asn,
    name,
    info_type
});
lacnet_types::impl_json_struct!(Facility {
    id,
    name,
    city,
    country
});
lacnet_types::impl_json_struct!(Ix {
    id,
    name,
    city,
    country
});
lacnet_types::impl_json_struct!(NetFac { net_id, fac_id });
lacnet_types::impl_json_struct!(NetIxLan {
    net_id,
    ix_id,
    speed
});

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::{country, json};

    #[test]
    fn json_shapes_match_dump_style() {
        let f = Facility {
            id: 1,
            name: "Cirion La Urbina".into(),
            city: "Caracas".into(),
            country: country::VE,
        };
        let json = json::to_string(&f);
        assert!(json.contains("\"country\":\"VE\""), "{json}");
        let back: Facility = json::from_str(&json).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn network_roundtrip() {
        let n = Network {
            id: 7,
            asn: Asn(8048),
            name: "CANTV Servicios".into(),
            info_type: "NSP".into(),
        };
        let back: Network = json::from_str(&json::to_string(&n)).unwrap();
        assert_eq!(back, n);
    }
}
