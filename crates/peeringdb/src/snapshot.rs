//! Snapshots and the monthly snapshot archive.

use crate::model::{Facility, Ix, IxId, NetFac, NetIxLan, Network, PdbId};
use lacnet_types::json::{FromJson, Json, ToJson};
use lacnet_types::{Asn, CountryCode, Error, MonthStamp, Result};
use std::collections::BTreeMap;

/// One PeeringDB dump: every modelled table at a point in time.
///
/// Serialises to the dump layout — each table wrapped in a `{"data": [...]}`
/// envelope — so generated snapshots are drop-in lookalikes for the CAIDA
/// archive files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `net` table.
    pub net: Vec<Network>,
    /// `fac` table.
    pub fac: Vec<Facility>,
    /// `ix` table.
    pub ix: Vec<Ix>,
    /// `netfac` join table.
    pub netfac: Vec<NetFac>,
    /// `netixlan` join table.
    pub netixlan: Vec<NetIxLan>,
}

/// Wrap a table in the PeeringDB dump envelope: `{"data": [...]}`.
fn envelope<T: ToJson>(rows: &[T]) -> Json {
    Json::Obj(vec![("data".to_owned(), rows.to_json_value())])
}

/// Unwrap a `{"data": [...]}` envelope back into a table.
fn unwrap_envelope<T: FromJson>(v: &Json, table: &str) -> Result<Vec<T>> {
    match v.get(table) {
        Some(wrapped) => wrapped.field("data"),
        None => Err(Error::missing("PeeringDB dump table", table)),
    }
}

impl ToJson for Snapshot {
    fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("net".to_owned(), envelope(&self.net)),
            ("fac".to_owned(), envelope(&self.fac)),
            ("ix".to_owned(), envelope(&self.ix)),
            ("netfac".to_owned(), envelope(&self.netfac)),
            ("netixlan".to_owned(), envelope(&self.netixlan)),
        ])
    }
}

impl FromJson for Snapshot {
    fn from_json_value(v: &Json) -> Result<Self> {
        Ok(Snapshot {
            net: unwrap_envelope(v, "net")?,
            fac: unwrap_envelope(v, "fac")?,
            ix: unwrap_envelope(v, "ix")?,
            netfac: unwrap_envelope(v, "netfac")?,
            netixlan: unwrap_envelope(v, "netixlan")?,
        })
    }
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a dump from JSON text.
    pub fn from_json(text: &str) -> Result<Self> {
        lacnet_types::json::from_str(text)
    }

    /// Serialise to dump-shaped JSON.
    pub fn to_json(&self) -> String {
        lacnet_types::json::to_string(self)
    }

    /// The network row for `asn`, if registered.
    pub fn network_by_asn(&self, asn: Asn) -> Option<&Network> {
        self.net.iter().find(|n| n.asn == asn)
    }

    /// The network row by id.
    pub fn network(&self, id: PdbId) -> Option<&Network> {
        self.net.iter().find(|n| n.id == id)
    }

    /// The facility row by id.
    pub fn facility(&self, id: PdbId) -> Option<&Facility> {
        self.fac.iter().find(|f| f.id == id)
    }

    /// The IXP row by id.
    pub fn ixp(&self, id: IxId) -> Option<&Ix> {
        self.ix.iter().find(|i| i.id == id)
    }

    /// Facilities registered in `country`.
    pub fn facilities_in(&self, country: CountryCode) -> Vec<&Facility> {
        self.fac.iter().filter(|f| f.country == country).collect()
    }

    /// Number of facilities per country.
    pub fn facility_counts(&self) -> BTreeMap<CountryCode, usize> {
        let mut out = BTreeMap::new();
        for f in &self.fac {
            *out.entry(f.country).or_insert(0) += 1;
        }
        out
    }

    /// ASNs of networks present at `fac_id`.
    pub fn networks_at_facility(&self, fac_id: PdbId) -> Vec<Asn> {
        let mut asns: Vec<Asn> = self
            .netfac
            .iter()
            .filter(|nf| nf.fac_id == fac_id)
            .filter_map(|nf| self.network(nf.net_id).map(|n| n.asn))
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns
    }

    /// ASNs of networks peering at `ix_id`.
    pub fn networks_at_ixp(&self, ix_id: IxId) -> Vec<Asn> {
        let mut asns: Vec<Asn> = self
            .netixlan
            .iter()
            .filter(|nl| nl.ix_id == ix_id)
            .filter_map(|nl| self.network(nl.net_id).map(|n| n.asn))
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns
    }

    /// IXPs at which `asn` has a port.
    pub fn ixps_of(&self, asn: Asn) -> Vec<&Ix> {
        let Some(net) = self.network_by_asn(asn) else {
            return Vec::new();
        };
        let mut ids: Vec<IxId> = self
            .netixlan
            .iter()
            .filter(|nl| nl.net_id == net.id)
            .map(|nl| nl.ix_id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().filter_map(|id| self.ixp(id)).collect()
    }

    /// Basic referential-integrity check: every join row must point at
    /// existing `net`/`fac`/`ix` rows and row ids must be unique.
    pub fn validate(&self) -> Result<()> {
        let mut net_ids: Vec<PdbId> = self.net.iter().map(|n| n.id).collect();
        net_ids.sort_unstable();
        let n = net_ids.len();
        net_ids.dedup();
        if net_ids.len() != n {
            return Err(Error::invalid("duplicate net ids"));
        }
        let mut fac_ids: Vec<PdbId> = self.fac.iter().map(|f| f.id).collect();
        fac_ids.sort_unstable();
        let n = fac_ids.len();
        fac_ids.dedup();
        if fac_ids.len() != n {
            return Err(Error::invalid("duplicate fac ids"));
        }
        let mut ix_ids: Vec<IxId> = self.ix.iter().map(|i| i.id).collect();
        ix_ids.sort_unstable();
        let n = ix_ids.len();
        ix_ids.dedup();
        if ix_ids.len() != n {
            return Err(Error::invalid("duplicate ix ids"));
        }
        for nf in &self.netfac {
            if net_ids.binary_search(&nf.net_id).is_err() {
                return Err(Error::invalid("netfac references missing net"));
            }
            if fac_ids.binary_search(&nf.fac_id).is_err() {
                return Err(Error::invalid("netfac references missing fac"));
            }
        }
        for nl in &self.netixlan {
            if net_ids.binary_search(&nl.net_id).is_err() {
                return Err(Error::invalid("netixlan references missing net"));
            }
            if ix_ids.binary_search(&nl.ix_id).is_err() {
                return Err(Error::invalid("netixlan references missing ix"));
            }
        }
        Ok(())
    }
}

/// Monthly archive of snapshots — the first-of-month series the study
/// samples from the daily CAIDA archive.
#[derive(Debug, Clone, Default)]
pub struct SnapshotArchive {
    snapshots: BTreeMap<MonthStamp, Snapshot>,
}

impl SnapshotArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a snapshot.
    pub fn insert(&mut self, month: MonthStamp, snapshot: Snapshot) {
        self.snapshots.insert(month, snapshot);
    }

    /// Snapshot for exactly `month`.
    pub fn get(&self, month: MonthStamp) -> Option<&Snapshot> {
        self.snapshots.get(&month)
    }

    /// The latest snapshot, if any.
    pub fn latest(&self) -> Option<(MonthStamp, &Snapshot)> {
        self.snapshots.iter().next_back().map(|(&m, s)| (m, s))
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Iterate chronologically.
    pub fn iter(&self) -> impl Iterator<Item = (MonthStamp, &Snapshot)> {
        self.snapshots.iter().map(|(&m, s)| (m, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    pub(crate) fn toy_snapshot() -> Snapshot {
        Snapshot {
            net: vec![
                Network {
                    id: 1,
                    asn: Asn(8048),
                    name: "CANTV".into(),
                    info_type: "NSP".into(),
                },
                Network {
                    id: 2,
                    asn: Asn(21826),
                    name: "Telemic".into(),
                    info_type: "Cable/DSL/ISP".into(),
                },
                Network {
                    id: 3,
                    asn: Asn(26613),
                    name: "IX.br member".into(),
                    info_type: "Content".into(),
                },
            ],
            fac: vec![
                Facility {
                    id: 10,
                    name: "Cirion La Urbina".into(),
                    city: "Caracas".into(),
                    country: country::VE,
                },
                Facility {
                    id: 11,
                    name: "Equinix SP4".into(),
                    city: "Sao Paulo".into(),
                    country: country::BR,
                },
            ],
            ix: vec![Ix {
                id: 20,
                name: "IX.br (SP)".into(),
                city: "Sao Paulo".into(),
                country: country::BR,
            }],
            netfac: vec![
                NetFac {
                    net_id: 1,
                    fac_id: 10,
                },
                NetFac {
                    net_id: 2,
                    fac_id: 10,
                },
            ],
            netixlan: vec![NetIxLan {
                net_id: 3,
                ix_id: 20,
                speed: 10_000,
            }],
        }
    }

    #[test]
    fn json_roundtrip_with_envelope() {
        let s = toy_snapshot();
        let json = s.to_json();
        assert!(json.contains("\"net\":{\"data\":["), "{json}");
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, s);
        assert!(Snapshot::from_json("{").is_err());
    }

    #[test]
    fn joins() {
        let s = toy_snapshot();
        assert_eq!(s.networks_at_facility(10), vec![Asn(8048), Asn(21826)]);
        assert!(s.networks_at_facility(11).is_empty());
        assert_eq!(s.networks_at_ixp(20), vec![Asn(26613)]);
        assert_eq!(s.ixps_of(Asn(26613)).len(), 1);
        assert!(s.ixps_of(Asn(8048)).is_empty());
        assert!(s.ixps_of(Asn(9999)).is_empty());
    }

    #[test]
    fn country_queries() {
        let s = toy_snapshot();
        assert_eq!(s.facilities_in(country::VE).len(), 1);
        let counts = s.facility_counts();
        assert_eq!(counts[&country::VE], 1);
        assert_eq!(counts[&country::BR], 1);
    }

    #[test]
    fn validation_catches_dangling_joins() {
        let mut s = toy_snapshot();
        assert!(s.validate().is_ok());
        s.netfac.push(NetFac {
            net_id: 99,
            fac_id: 10,
        });
        assert!(s.validate().is_err());
        let mut s = toy_snapshot();
        s.netixlan.push(NetIxLan {
            net_id: 1,
            ix_id: 99,
            speed: 1000,
        });
        assert!(s.validate().is_err());
        let mut s = toy_snapshot();
        s.net.push(Network {
            id: 1,
            asn: Asn(1),
            name: "dup".into(),
            info_type: "NSP".into(),
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn archive_ordering() {
        let mut arch = SnapshotArchive::new();
        arch.insert(MonthStamp::new(2020, 5), toy_snapshot());
        arch.insert(MonthStamp::new(2018, 4), Snapshot::new());
        assert_eq!(arch.len(), 2);
        let months: Vec<_> = arch.iter().map(|(m, _)| m).collect();
        assert_eq!(months[0], MonthStamp::new(2018, 4));
        let (m, s) = arch.latest().unwrap();
        assert_eq!(m, MonthStamp::new(2020, 5));
        assert_eq!(s.net.len(), 3);
        assert!(arch.get(MonthStamp::new(2019, 1)).is_none());
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use lacnet_types::country;
    use proptest::prelude::*;

    proptest! {
        /// Any dump — including names that need JSON string escaping and
        /// non-ASCII city text — survives the envelope round trip table
        /// by table, row by row.
        #[test]
        fn snapshot_json_roundtrip_proptest(
            nets in proptest::collection::vec((1u32..10_000, 1u32..400_000, 0usize..4, any::<bool>()), 0..12),
            rows in proptest::collection::vec((1u32..10_000, 0usize..4, 0usize..3), 0..8),
            links in proptest::collection::vec((1u32..10_000, 1u32..10_000, 1u32..400_000), 0..10),
        ) {
            let types = ["NSP", "Content", "Cable/DSL/ISP", "Enterprise"];
            let cities = ["Caracas", "São Paulo", "Bogotá"];
            let countries = [country::VE, country::BR, country::CO, country::AR];
            let snapshot = Snapshot {
                net: nets
                    .iter()
                    .map(|&(id, asn, ty, escape)| Network {
                        id,
                        asn: Asn(asn),
                        name: if escape {
                            format!("net \"{id}\"\t\\slash")
                        } else {
                            format!("net-{id}")
                        },
                        info_type: types[ty].to_owned(),
                    })
                    .collect(),
                fac: rows
                    .iter()
                    .map(|&(id, c, city)| Facility {
                        id,
                        name: format!("fac-{id}"),
                        city: cities[city].to_owned(),
                        country: countries[c],
                    })
                    .collect(),
                ix: rows
                    .iter()
                    .map(|&(id, c, city)| Ix {
                        id,
                        name: format!("ix-{id}"),
                        city: cities[city].to_owned(),
                        country: countries[c],
                    })
                    .collect(),
                netfac: links
                    .iter()
                    .map(|&(a, b, _)| NetFac { net_id: a, fac_id: b })
                    .collect(),
                netixlan: links
                    .iter()
                    .map(|&(a, b, speed)| NetIxLan { net_id: a, ix_id: b, speed })
                    .collect(),
            };
            let back = Snapshot::from_json(&snapshot.to_json()).unwrap();
            prop_assert_eq!(back, snapshot);
        }
    }
}
