//! # lacnet-mlab
//!
//! An M-Lab NDT-shaped throughput substrate: test records, a crowdsourced
//! test generator, and the streaming month-country aggregation that turns
//! hundreds of millions of rows into the median download-speed series of
//! Fig. 11 (≈447M tests across 28 LACNIC countries in the real archive).
//!
//! The aggregator offers both an exact (sort-based) and a P² streaming
//! median per group; the `lacnet-bench` ablation compares them.
//!
//! Shards exist in two on-disk encodings: the native text rows and the
//! [`columnar`] `.ndtc` container, whose cold load is bounded by disk
//! bandwidth instead of per-row text parsing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod columnar;
pub mod multi;
pub mod ndt;
pub mod synth;

pub use aggregate::{GroupStats, MonthlyAggregator};
pub use columnar::{
    BlockView, ColumnBatch, ColumnReader, ColumnReaderRef, ColumnSelection, ColumnSet, ColumnSlice,
    DecodeScratch, ReadStats, ShardFormat,
};
pub use multi::{Group, Metric, MultiAggregator};
pub use ndt::NdtTest;
pub use synth::SpeedSampler;
