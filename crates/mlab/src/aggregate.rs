//! Month-country aggregation of NDT tests.
//!
//! The real dataset is ≈447M rows; the paper reduces it to one median per
//! `(country, month)`. Sorting every group is fine for a few million rows
//! but memory-hungry at archive scale, so the aggregator runs the P²
//! streaming estimator per group by default, with an exact mode kept for
//! verification and for the `lacnet-bench` ablation.

use crate::ndt::NdtTest;
use lacnet_types::stats::{self, P2Quantile};
use lacnet_types::{CountryCode, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// Aggregation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// P² streaming median: O(1) memory per group.
    Streaming,
    /// Exact median: buffers every observation per group.
    Exact,
}

/// Per-group accumulated state.
#[derive(Debug, Clone)]
pub enum GroupStats {
    /// Streaming accumulator.
    Streaming(P2Quantile),
    /// Exact buffer.
    Exact(Vec<f64>),
}

impl GroupStats {
    fn observe(&mut self, x: f64) {
        match self {
            GroupStats::Streaming(p2) => p2.observe(x),
            GroupStats::Exact(buf) => buf.push(x),
        }
    }

    /// Number of observations in the group.
    pub fn count(&self) -> usize {
        match self {
            GroupStats::Streaming(p2) => p2.count(),
            GroupStats::Exact(buf) => buf.len(),
        }
    }

    /// The group median (estimate in streaming mode).
    pub fn median(&self) -> Option<f64> {
        match self {
            GroupStats::Streaming(p2) => p2.value(),
            GroupStats::Exact(buf) => stats::median(&mut buf.clone()),
        }
    }
}

/// Streaming month-country aggregator over NDT download speeds.
#[derive(Debug, Clone)]
pub struct MonthlyAggregator {
    mode: Mode,
    groups: BTreeMap<(CountryCode, MonthStamp), GroupStats>,
}

impl MonthlyAggregator {
    /// The `.ndtc` columns [`observe_columns`] reads — what an archive
    /// load must decode for the resident aggregate, regardless of which
    /// endpoints are registered.
    ///
    /// [`observe_columns`]: MonthlyAggregator::observe_columns
    pub const REQUIRED_COLUMNS: crate::columnar::ColumnSet = crate::columnar::ColumnSet::AGGREGATE;

    /// Create an aggregator in the given mode.
    pub fn new(mode: Mode) -> Self {
        MonthlyAggregator {
            mode,
            groups: BTreeMap::new(),
        }
    }

    /// Feed one test.
    pub fn observe(&mut self, test: &NdtTest) {
        let key = (test.country, test.date.month_stamp());
        let entry = self.groups.entry(key).or_insert_with(|| match self.mode {
            Mode::Streaming => GroupStats::Streaming(P2Quantile::median()),
            Mode::Exact => GroupStats::Exact(Vec::new()),
        });
        entry.observe(test.download_mbps);
    }

    /// Feed many tests.
    pub fn observe_all<'a>(&mut self, tests: impl IntoIterator<Item = &'a NdtTest>) {
        for t in tests {
            self.observe(t);
        }
    }

    /// Reduce an archive shard straight off a reader via
    /// [`crate::ndt::stream_rows`], without materializing the file.
    /// Returns the number of rows observed.
    pub fn observe_reader<R: std::io::BufRead>(
        &mut self,
        reader: R,
    ) -> lacnet_types::Result<usize> {
        let mut n = 0;
        for row in crate::ndt::stream_rows(reader) {
            self.observe(&row?);
            n += 1;
        }
        Ok(n)
    }

    /// Reduce a decoded columnar shard, row order. Reads the country,
    /// date and download columns directly — no `NdtTest` is ever
    /// materialized — yet feeds each group's P² estimator the exact
    /// observation sequence [`observe_reader`] feeds it from the text
    /// rendering of the same shard, so the estimator state is
    /// byte-identical between the two paths (asserted by this module's
    /// tests and the archive round-trip suite).
    ///
    /// [`observe_reader`]: MonthlyAggregator::observe_reader
    pub fn observe_columns(&mut self, batch: &crate::columnar::ColumnBatch) -> usize {
        let mode = self.mode;
        for ((&cc, &date), &down) in batch
            .countries()
            .iter()
            .zip(batch.dates())
            .zip(batch.download())
        {
            let entry = self
                .groups
                .entry((cc, date.month_stamp()))
                .or_insert_with(|| match mode {
                    Mode::Streaming => GroupStats::Streaming(P2Quantile::median()),
                    Mode::Exact => GroupStats::Exact(Vec::new()),
                });
            entry.observe(down);
        }
        batch.len()
    }

    /// Number of `(country, month)` groups seen.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The accumulated state for one `(country, month)` group, if any —
    /// the in-memory backend of the `/ndt/{cc}/{month}` query endpoint.
    pub fn group(&self, country: CountryCode, month: MonthStamp) -> Option<&GroupStats> {
        self.groups.get(&(country, month))
    }

    /// Total number of tests observed.
    pub fn test_count(&self) -> usize {
        self.groups.values().map(GroupStats::count).sum()
    }

    /// Tests observed for one country (across months).
    pub fn test_count_for(&self, country: CountryCode) -> usize {
        self.groups
            .iter()
            .filter(|((cc, _), _)| *cc == country)
            .map(|(_, g)| g.count())
            .sum()
    }

    /// The median download series for `country` — one Fig. 11 line.
    pub fn median_series(&self, country: CountryCode) -> TimeSeries {
        self.groups
            .iter()
            .filter(|((cc, _), _)| *cc == country)
            .filter_map(|((_, m), g)| g.median().map(|v| (*m, v)))
            .collect()
    }

    /// Countries present in the aggregate.
    pub fn countries(&self) -> Vec<CountryCode> {
        let mut out: Vec<CountryCode> = self.groups.keys().map(|(cc, _)| *cc).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The cross-country mean of per-country medians, per month — the
    /// "mean LACNIC" curve of Fig. 11.
    pub fn regional_mean_series(&self) -> TimeSeries {
        let per_country: Vec<TimeSeries> = self
            .countries()
            .iter()
            .map(|&cc| self.median_series(cc))
            .collect();
        let refs: Vec<&TimeSeries> = per_country.iter().collect();
        lacnet_types::series::mean_of(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::{country, Asn, Date};

    fn test(cc: CountryCode, y: i32, m: u8, d: u8, down: f64) -> NdtTest {
        NdtTest {
            date: Date::ymd(y, m, d),
            country: cc,
            asn: Asn(8048),
            download_mbps: down,
            upload_mbps: down / 3.0,
            min_rtt_ms: 40.0,
            loss_rate: 0.01,
        }
    }

    #[test]
    fn exact_grouping_and_medians() {
        let mut agg = MonthlyAggregator::new(Mode::Exact);
        agg.observe_all(&[
            test(country::VE, 2019, 7, 1, 0.5),
            test(country::VE, 2019, 7, 10, 0.9),
            test(country::VE, 2019, 7, 20, 0.7),
            test(country::VE, 2019, 8, 1, 1.1),
            test(country::BR, 2019, 7, 1, 20.0),
        ]);
        assert_eq!(agg.group_count(), 3);
        assert_eq!(agg.test_count(), 5);
        assert_eq!(agg.test_count_for(country::VE), 4);
        let ve = agg.median_series(country::VE);
        assert_eq!(ve.get(MonthStamp::new(2019, 7)), Some(0.7));
        assert_eq!(ve.get(MonthStamp::new(2019, 8)), Some(1.1));
        assert_eq!(agg.countries(), vec![country::BR, country::VE]);
    }

    #[test]
    fn regional_mean_averages_country_medians() {
        let mut agg = MonthlyAggregator::new(Mode::Exact);
        agg.observe_all(&[
            test(country::VE, 2019, 7, 1, 1.0),
            test(country::BR, 2019, 7, 1, 21.0),
        ]);
        let mean = agg.regional_mean_series();
        assert_eq!(mean.get(MonthStamp::new(2019, 7)), Some(11.0));
    }

    #[test]
    fn streaming_matches_exact_within_tolerance() {
        use lacnet_types::rng::Rng;
        let mut rng = Rng::seeded(7);
        let mut streaming = MonthlyAggregator::new(Mode::Streaming);
        let mut exact = MonthlyAggregator::new(Mode::Exact);
        for i in 0..30_000 {
            let day = (i % 28) as u8 + 1;
            let t = test(country::VE, 2019, 7, day, rng.log_normal(0.0, 0.8));
            streaming.observe(&t);
            exact.observe(&t);
        }
        let s = streaming
            .median_series(country::VE)
            .get(MonthStamp::new(2019, 7))
            .unwrap();
        let e = exact
            .median_series(country::VE)
            .get(MonthStamp::new(2019, 7))
            .unwrap();
        assert!((s - e).abs() / e < 0.05, "streaming {s} vs exact {e}");
    }

    #[test]
    fn observe_reader_equals_in_memory_path() {
        let rows = [
            test(country::VE, 2019, 7, 1, 0.5),
            test(country::VE, 2019, 7, 10, 0.9),
            test(country::BR, 2019, 7, 1, 20.0),
        ];
        let mut text = String::from("# shard header\n");
        for r in &rows {
            text.push_str(&r.to_row());
            text.push('\n');
        }
        let mut streamed = MonthlyAggregator::new(Mode::Exact);
        let n = streamed.observe_reader(text.as_bytes()).unwrap();
        assert_eq!(n, rows.len());
        let mut direct = MonthlyAggregator::new(Mode::Exact);
        direct.observe_all(&rows);
        assert_eq!(streamed.group_count(), direct.group_count());
        assert_eq!(
            streamed
                .median_series(country::VE)
                .get(MonthStamp::new(2019, 7)),
            direct
                .median_series(country::VE)
                .get(MonthStamp::new(2019, 7)),
        );
        let mut broken = MonthlyAggregator::new(Mode::Exact);
        assert!(broken.observe_reader("bad\trow\n".as_bytes()).is_err());
    }

    #[test]
    fn observe_columns_state_is_byte_identical_to_observe_reader() {
        use lacnet_types::rng::Rng;
        let mut rng = Rng::seeded(11);
        let mut rows = Vec::new();
        for i in 0..5_000 {
            let cc = if i % 3 == 0 { country::BR } else { country::VE };
            let day = (i % 28) as u8 + 1;
            rows.push(test(
                cc,
                2019,
                1 + (i % 12) as u8,
                day,
                rng.log_normal(0.0, 0.9),
            ));
        }
        let mut text = String::new();
        for r in &rows {
            text.push_str(&r.to_row());
            text.push('\n');
        }
        let batch = crate::columnar::decode(&crate::columnar::encode_rows(&rows)).unwrap();

        let mut from_text = MonthlyAggregator::new(Mode::Streaming);
        from_text.observe_reader(text.as_bytes()).unwrap();
        let mut from_columns = MonthlyAggregator::new(Mode::Streaming);
        assert_eq!(from_columns.observe_columns(&batch), rows.len());

        // Debug formatting spells out every P² marker height, position
        // and increment with shortest-roundtrip floats (and tells -0.0
        // from 0.0), so string equality here is bit-level equality of
        // the full estimator state.
        assert_eq!(format!("{from_text:?}"), format!("{from_columns:?}"));
    }

    #[test]
    fn empty_aggregator() {
        let agg = MonthlyAggregator::new(Mode::Streaming);
        assert_eq!(agg.group_count(), 0);
        assert!(agg.median_series(country::VE).is_empty());
        assert!(agg.regional_mean_series().is_empty());
        assert!(agg.countries().is_empty());
    }
}
