//! Crowdsourced-test generation.
//!
//! The generator turns a target median download speed into a stream of
//! individual NDT tests: speeds are log-normal around the target median
//! (speed-test distributions are heavy-tailed), test counts per month are
//! Poisson (crowdsourced participation varies), and dates are uniform
//! within the month. `lacnet-crisis` supplies the per-country median
//! trajectory; this module turns trajectories into rows.

use crate::ndt::NdtTest;
use lacnet_types::rng::Rng;
use lacnet_types::{Asn, CountryCode, MonthStamp};

/// Samples NDT tests for one country-month.
#[derive(Debug, Clone)]
pub struct SpeedSampler {
    /// Sigma of the log-normal speed distribution (underlying normal).
    pub sigma: f64,
    /// Download/upload asymmetry factor (upload = download / factor).
    pub asymmetry: f64,
    /// Baseline minimum RTT for generated tests, ms.
    pub base_rtt_ms: f64,
}

impl Default for SpeedSampler {
    fn default() -> Self {
        SpeedSampler {
            sigma: 0.9,
            asymmetry: 3.5,
            base_rtt_ms: 30.0,
        }
    }
}

impl SpeedSampler {
    /// Generate `n ~ Poisson(expected_tests)` tests for one country-month
    /// whose population median download is `median_mbps`.
    pub fn generate_month(
        &self,
        country: CountryCode,
        asn: Asn,
        month: MonthStamp,
        median_mbps: f64,
        expected_tests: f64,
        rng: &mut Rng,
    ) -> Vec<NdtTest> {
        assert!(median_mbps > 0.0, "median must be positive");
        let n = rng.poisson(expected_tests);
        let mu = median_mbps.ln();
        let days = u64::from(month.last_day().day());
        (0..n)
            .map(|_| {
                let down = rng.log_normal(mu, self.sigma);
                let day = rng.below(days) as u8 + 1;
                // Slower links tend to show higher latency and loss.
                let rtt = self.base_rtt_ms * (1.0 + 1.0 / (1.0 + down)) * (0.8 + 0.4 * rng.f64());
                let loss = (0.002 + 0.02 / (1.0 + down)) * rng.f64();
                NdtTest {
                    date: month.first_day().plus_days(day as i64 - 1),
                    country,
                    asn,
                    download_mbps: down,
                    upload_mbps: down / self.asymmetry,
                    min_rtt_ms: rtt,
                    loss_rate: loss.min(1.0),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{Mode, MonthlyAggregator};
    use lacnet_types::country;
    use lacnet_types::stats;

    #[test]
    fn generated_median_tracks_target() {
        let sampler = SpeedSampler::default();
        let mut rng = Rng::seeded(5);
        let tests = sampler.generate_month(
            country::VE,
            Asn(8048),
            MonthStamp::new(2019, 7),
            0.8,
            20_000.0,
            &mut rng,
        );
        assert!(
            (19_000..21_000).contains(&tests.len()),
            "poisson count {}",
            tests.len()
        );
        let mut speeds: Vec<f64> = tests.iter().map(|t| t.download_mbps).collect();
        let med = stats::median(&mut speeds).unwrap();
        assert!((med - 0.8).abs() / 0.8 < 0.05, "median {med}");
    }

    #[test]
    fn all_rows_validate_and_fall_in_month() {
        let sampler = SpeedSampler::default();
        let mut rng = Rng::seeded(9);
        let month = MonthStamp::new(2024, 2);
        let tests = sampler.generate_month(country::BR, Asn(26599), month, 30.0, 500.0, &mut rng);
        for t in &tests {
            t.validate().unwrap();
            assert_eq!(t.date.month_stamp(), month);
            assert!(t.upload_mbps < t.download_mbps);
        }
    }

    #[test]
    fn slower_links_have_worse_rtt_on_average() {
        let sampler = SpeedSampler::default();
        let mut rng = Rng::seeded(11);
        let slow = sampler.generate_month(
            country::VE,
            Asn(8048),
            MonthStamp::new(2019, 7),
            0.6,
            3000.0,
            &mut rng,
        );
        let fast = sampler.generate_month(
            country::CL,
            Asn(27651),
            MonthStamp::new(2019, 7),
            25.0,
            3000.0,
            &mut rng,
        );
        let mean = |v: &[NdtTest]| v.iter().map(|t| t.min_rtt_ms).sum::<f64>() / v.len() as f64;
        assert!(mean(&slow) > mean(&fast));
    }

    #[test]
    fn pipeline_roundtrip_rows_to_median_series() {
        // Generate → serialise → parse → aggregate: the full path the
        // analysis takes over the archive.
        let sampler = SpeedSampler::default();
        let mut rng = Rng::seeded(13);
        let tests = sampler.generate_month(
            country::VE,
            Asn(8048),
            MonthStamp::new(2019, 7),
            0.8,
            2000.0,
            &mut rng,
        );
        let text: String = tests.iter().map(|t| t.to_row() + "\n").collect();
        let parsed = crate::ndt::parse_rows(&text).unwrap();
        assert_eq!(parsed.len(), tests.len());
        let mut agg = MonthlyAggregator::new(Mode::Streaming);
        agg.observe_all(&parsed);
        let med = agg
            .median_series(country::VE)
            .get(MonthStamp::new(2019, 7))
            .unwrap();
        assert!((med - 0.8).abs() / 0.8 < 0.10, "median {med}");
    }

    #[test]
    fn zero_expected_tests_yields_empty() {
        let sampler = SpeedSampler::default();
        let mut rng = Rng::seeded(1);
        let tests = sampler.generate_month(
            country::VE,
            Asn(8048),
            MonthStamp::new(2019, 7),
            1.0,
            0.0,
            &mut rng,
        );
        assert!(tests.is_empty());
    }
}
