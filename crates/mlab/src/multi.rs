//! Multi-metric, multi-dimension aggregation.
//!
//! [`crate::aggregate::MonthlyAggregator`] covers the paper's headline
//! reduction (download medians per country-month). The NDT archive also
//! carries upload, latency and loss, and §7.2's network-level analysis
//! needs per-ASN grouping (which Venezuelan networks avoid CANTV). This
//! aggregator keeps one P² estimator per `(group, month, metric)`.

use crate::ndt::NdtTest;
use lacnet_types::stats::P2Quantile;
use lacnet_types::{Asn, CountryCode, MonthStamp, TimeSeries};
use std::collections::BTreeMap;

/// The NDT columns the aggregator can reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// Downstream throughput, Mbit/s.
    Download,
    /// Upstream throughput, Mbit/s.
    Upload,
    /// Minimum RTT, ms.
    MinRtt,
    /// Loss rate in `[0, 1]`.
    Loss,
}

impl Metric {
    /// All four metrics.
    pub const ALL: [Metric; 4] = [
        Metric::Download,
        Metric::Upload,
        Metric::MinRtt,
        Metric::Loss,
    ];

    /// Extract the metric from a test.
    pub fn of(self, t: &NdtTest) -> f64 {
        match self {
            Metric::Download => t.download_mbps,
            Metric::Upload => t.upload_mbps,
            Metric::MinRtt => t.min_rtt_ms,
            Metric::Loss => t.loss_rate,
        }
    }
}

/// Grouping dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Group {
    /// One group per client country.
    Country(CountryCode),
    /// One group per `(country, client AS)`.
    CountryAsn(CountryCode, Asn),
}

/// Streaming multi-metric aggregator.
#[derive(Debug, Default)]
pub struct MultiAggregator {
    by_asn: bool,
    groups: BTreeMap<(Group, MonthStamp, Metric), P2Quantile>,
    counts: BTreeMap<(Group, MonthStamp), usize>,
}

impl MultiAggregator {
    /// Country-level aggregation.
    pub fn by_country() -> Self {
        MultiAggregator {
            by_asn: false,
            ..Default::default()
        }
    }

    /// `(country, ASN)`-level aggregation.
    pub fn by_asn() -> Self {
        MultiAggregator {
            by_asn: true,
            ..Default::default()
        }
    }

    fn group_of(&self, t: &NdtTest) -> Group {
        if self.by_asn {
            Group::CountryAsn(t.country, t.asn)
        } else {
            Group::Country(t.country)
        }
    }

    /// Feed one test.
    pub fn observe(&mut self, t: &NdtTest) {
        let g = self.group_of(t);
        let m = t.date.month_stamp();
        for metric in Metric::ALL {
            self.groups
                .entry((g, m, metric))
                .or_insert_with(P2Quantile::median)
                .observe(metric.of(t));
        }
        *self.counts.entry((g, m)).or_insert(0) += 1;
    }

    /// Feed many tests.
    pub fn observe_all<'a>(&mut self, tests: impl IntoIterator<Item = &'a NdtTest>) {
        for t in tests {
            self.observe(t);
        }
    }

    /// Median series for `(group, metric)`.
    pub fn median_series(&self, group: Group, metric: Metric) -> TimeSeries {
        self.groups
            .iter()
            .filter(|((g, _, k), _)| *g == group && *k == metric)
            .filter_map(|((_, m, _), p2)| p2.value().map(|v| (*m, v)))
            .collect()
    }

    /// Test count for `(group, month)`.
    pub fn count(&self, group: Group, month: MonthStamp) -> usize {
        self.counts.get(&(group, month)).copied().unwrap_or(0)
    }

    /// All groups observed.
    pub fn group_list(&self) -> Vec<Group> {
        let mut v: Vec<Group> = self.counts.keys().map(|(g, _)| *g).collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::{country, Date};

    fn test(cc: CountryCode, asn: u32, down: f64, rtt: f64) -> NdtTest {
        NdtTest {
            date: Date::ymd(2020, 6, 15),
            country: cc,
            asn: Asn(asn),
            download_mbps: down,
            upload_mbps: down / 4.0,
            min_rtt_ms: rtt,
            loss_rate: 0.01,
        }
    }

    #[test]
    fn country_grouping_covers_all_metrics() {
        let mut agg = MultiAggregator::by_country();
        agg.observe_all(&[
            test(country::VE, 8048, 0.8, 55.0),
            test(country::VE, 8048, 1.2, 45.0),
            test(country::VE, 21826, 1.0, 50.0),
        ]);
        let g = Group::Country(country::VE);
        let m = MonthStamp::new(2020, 6);
        assert_eq!(agg.count(g, m), 3);
        assert_eq!(agg.median_series(g, Metric::Download).get(m), Some(1.0));
        assert_eq!(agg.median_series(g, Metric::MinRtt).get(m), Some(50.0));
        assert_eq!(agg.median_series(g, Metric::Upload).get(m), Some(0.25));
        assert_eq!(agg.median_series(g, Metric::Loss).get(m), Some(0.01));
    }

    #[test]
    fn asn_grouping_separates_networks() {
        let mut agg = MultiAggregator::by_asn();
        // CANTV slow, Telemic faster — §7's intra-country contrast.
        agg.observe_all(&[
            test(country::VE, 8048, 0.6, 60.0),
            test(country::VE, 8048, 0.8, 58.0),
            test(country::VE, 8048, 0.7, 62.0),
            test(country::VE, 21826, 2.5, 35.0),
            test(country::VE, 21826, 3.0, 30.0),
            test(country::VE, 21826, 2.8, 33.0),
        ]);
        let m = MonthStamp::new(2020, 6);
        let cantv = Group::CountryAsn(country::VE, Asn(8048));
        let telemic = Group::CountryAsn(country::VE, Asn(21826));
        let d_cantv = agg.median_series(cantv, Metric::Download).get(m).unwrap();
        let d_telemic = agg.median_series(telemic, Metric::Download).get(m).unwrap();
        assert!(d_telemic > 3.0 * d_cantv, "{d_telemic} vs {d_cantv}");
        let r_cantv = agg.median_series(cantv, Metric::MinRtt).get(m).unwrap();
        let r_telemic = agg.median_series(telemic, Metric::MinRtt).get(m).unwrap();
        assert!(r_cantv > r_telemic);
        assert_eq!(agg.group_list().len(), 2);
    }

    #[test]
    fn empty_aggregator() {
        let agg = MultiAggregator::by_country();
        assert!(agg.group_list().is_empty());
        assert!(agg
            .median_series(Group::Country(country::VE), Metric::Download)
            .is_empty());
        assert_eq!(
            agg.count(Group::Country(country::VE), MonthStamp::new(2020, 6)),
            0
        );
    }
}
