//! NDT test records and their archive row format.
//!
//! The study consumes only the downstream throughput of each NDT test,
//! aggregated to month-country granularity (§3.3). Records carry the
//! other columns the real archive exposes (upload, RTT, loss) so the
//! pipeline exercises realistic row widths.

use lacnet_types::{Asn, CountryCode, Date, Error, Result};
use std::str::FromStr;

/// One NDT speed test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdtTest {
    /// Test date.
    pub date: Date,
    /// Client country.
    pub country: CountryCode,
    /// Client AS.
    pub asn: Asn,
    /// Downstream throughput, Mbit/s.
    pub download_mbps: f64,
    /// Upstream throughput, Mbit/s.
    pub upload_mbps: f64,
    /// Minimum RTT observed during the test, ms.
    pub min_rtt_ms: f64,
    /// Retransmission-based loss estimate in `[0, 1]`.
    pub loss_rate: f64,
}

impl NdtTest {
    /// Validate value ranges (non-negative speeds/RTT, loss in `[0,1]`).
    pub fn validate(&self) -> Result<()> {
        if self.download_mbps < 0.0 || self.upload_mbps < 0.0 {
            return Err(Error::invalid("negative throughput"));
        }
        if self.min_rtt_ms < 0.0 {
            return Err(Error::invalid("negative RTT"));
        }
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(Error::invalid("loss rate outside [0,1]"));
        }
        Ok(())
    }

    /// Serialise as one archive row:
    /// `date<TAB>country<TAB>asn<TAB>down<TAB>up<TAB>rtt<TAB>loss`.
    ///
    /// Floats use shortest-roundtrip formatting, so `parse(to_row(x)) ==
    /// x` exactly — archives rebuilt from disk feed the order-sensitive
    /// P² estimator the very same values the in-memory stream carried.
    pub fn to_row(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            self.date,
            self.country,
            self.asn.raw(),
            self.download_mbps,
            self.upload_mbps,
            self.min_rtt_ms,
            self.loss_rate,
        )
    }
}

impl FromStr for NdtTest {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        // Walk the split iterator directly — this parser runs once per
        // row of a multi-hundred-megabyte shard, so it must not allocate
        // a per-row `Vec<&str>`.
        let mut cols = s.split('\t');
        let mut col = || {
            cols.next()
                .ok_or_else(|| Error::parse("NDT row (7 tab-separated columns)", s))
        };
        let test = NdtTest {
            date: col()?.parse()?,
            country: col()?.parse()?,
            asn: Asn(col()?.parse().map_err(|_| Error::parse("NDT asn", s))?),
            download_mbps: col()?
                .parse()
                .map_err(|_| Error::parse("NDT download", s))?,
            upload_mbps: col()?.parse().map_err(|_| Error::parse("NDT upload", s))?,
            min_rtt_ms: col()?.parse().map_err(|_| Error::parse("NDT rtt", s))?,
            loss_rate: col()?.parse().map_err(|_| Error::parse("NDT loss", s))?,
        };
        if cols.next().is_some() {
            return Err(Error::parse("NDT row (7 tab-separated columns)", s));
        }
        test.validate()
            .map_err(|_| Error::parse("NDT row values in range", s))?;
        Ok(test)
    }
}

/// Parse a whole archive shard (one row per line; `#` comments allowed).
pub fn parse_rows(text: &str) -> Result<Vec<NdtTest>> {
    stream_rows(text.as_bytes()).collect()
}

/// Stream-parse an archive shard from any [`std::io::BufRead`], one row at
/// a time — real shards are hundreds of megabytes, so consumers (e.g.
/// [`crate::aggregate::MonthlyAggregator::observe_reader`]) reduce them
/// without materializing the file. Same grammar as [`parse_rows`]: blank
/// lines and `#` comments are skipped, rows are range-validated.
pub fn stream_rows<R: std::io::BufRead>(reader: R) -> RowStream<R> {
    RowStream {
        reader,
        buf: String::new(),
    }
}

/// Iterator over parsed rows of an archive shard; see [`stream_rows`].
#[derive(Debug)]
pub struct RowStream<R> {
    reader: R,
    buf: String,
}

impl<R: std::io::BufRead> Iterator for RowStream<R> {
    type Item = Result<NdtTest>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.reader.read_line(&mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {
                    let line = self.buf.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    return Some(line.parse());
                }
                Err(e) => return Some(Err(Error::parse("NDT shard read", &e.to_string()))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacnet_types::country;

    fn sample() -> NdtTest {
        NdtTest {
            date: Date::ymd(2019, 7, 14),
            country: country::VE,
            asn: Asn(8048),
            download_mbps: 0.87,
            upload_mbps: 0.31,
            min_rtt_ms: 58.2,
            loss_rate: 0.012,
        }
    }

    #[test]
    fn row_roundtrip_is_exact() {
        let t = sample();
        let row = t.to_row();
        let back: NdtTest = row.parse().unwrap();
        assert_eq!(back, t, "shortest-roundtrip floats survive exactly");
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// parse(to_row(x)) == x for arbitrary in-range rows — the
            /// invariant the archive-backed battery leans on.
            #[test]
            fn row_roundtrip_proptest(
                day in 1u8..=28,
                down in 0.0f64..500.0,
                up in 0.0f64..200.0,
                rtt in 0.0f64..900.0,
                loss in 0.0f64..1.0,
                asn in 1u32..400_000,
            ) {
                let t = NdtTest {
                    date: Date::ymd(2019, 7, day),
                    country: country::VE,
                    asn: Asn(asn),
                    download_mbps: down,
                    upload_mbps: up,
                    min_rtt_ms: rtt,
                    loss_rate: loss,
                };
                let back: NdtTest = t.to_row().parse().unwrap();
                prop_assert_eq!(back, t);
            }
        }
    }

    #[test]
    fn validation() {
        let mut t = sample();
        assert!(t.validate().is_ok());
        t.download_mbps = -1.0;
        assert!(t.validate().is_err());
        let mut t = sample();
        t.loss_rate = 1.2;
        assert!(t.validate().is_err());
        let mut t = sample();
        t.min_rtt_ms = -0.1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn stream_rows_matches_parse_rows() {
        let text = format!("# header\n{}\n\n{}\n", sample().to_row(), sample().to_row());
        let streamed: Vec<NdtTest> = stream_rows(text.as_bytes()).map(|r| r.unwrap()).collect();
        assert_eq!(streamed, parse_rows(&text).unwrap());
        let mut bad = stream_rows("not\ta\trow\n".as_bytes());
        assert!(bad.next().unwrap().is_err());
        assert!(bad.next().is_none());
    }

    #[test]
    fn parse_rows_skips_comments_rejects_garbage() {
        let text = format!("# header\n{}\n\n{}\n", sample().to_row(), sample().to_row());
        assert_eq!(parse_rows(&text).unwrap().len(), 2);
        assert!(parse_rows("not\ta\trow\n").is_err());
        let bad = "2019-07-14\tVE\t8048\t-5\t0.3\t58\t0.01\n";
        assert!(
            parse_rows(bad).is_err(),
            "range validation applies on parse"
        );
    }
}
